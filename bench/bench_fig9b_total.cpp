// Fig. 9(b) — "Comparison of Total Time Taken".
//
// Total time (decompose + fuse + reconstruct, 10 frames) per frame size for
// the three system configurations of the paper plus this library's adaptive
// configuration. Paper reference at 88x72: ARM+FPGA -48.1%, ARM+NEON -8%.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);

  print_header("Fig. 9(b) — total time vs frame size (" +
                   std::to_string(options.frames) + " frames, seconds)",
               "Fig. 9(b); §VII text: -48.1% ARM+FPGA / -8% ARM+NEON at 88x72");

  const sched::RunConfig config = bench_run_config(options);
  json::Value run = json_run_header("fig9b_total", options);
  json::Value sweep = json::Value::array();

  TextTable table({"frame size", "ARM Only (s)", "ARM+NEON (s)", "ARM+FPGA (s)",
                   "Adaptive (s)", "best static"});
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto arm = run_probe(EngineChoice::kArm, size, config);
    const auto neon = run_probe(EngineChoice::kNeon, size, config);
    const auto fpga = run_probe(EngineChoice::kFpga, size, config);
    const auto adaptive = run_probe(EngineChoice::kAdaptive, size, config);
    const char* best = fpga.total < neon.total ? "ARM+FPGA" : "ARM+NEON";
    table.add_row({size.label(), TextTable::num(arm.total.sec(), 3),
                   TextTable::num(neon.total.sec(), 3),
                   TextTable::num(fpga.total.sec(), 3),
                   TextTable::num(adaptive.total.sec(), 3), best});
    json::Value row = json::Value::object();
    row.set("frame_size", size.label());
    row.set("arm_total_s", arm.total.sec());
    row.set("neon_total_s", neon.total.sec());
    row.set("fpga_total_s", fpga.total.sec());
    row.set("adaptive_total_s", adaptive.total.sec());
    sweep.push(std::move(row));
  }
  run.set("sweep", std::move(sweep));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: ARM+FPGA outperforms ARM+NEON only beyond ~40x40\n"
              "(paper's break point); the adaptive system is never worse than the\n"
              "best static choice (paper's conclusion / future work).\n");
  return write_json_report(options, run);
}

// Fig. 9(b) — "Comparison of Total Time Taken".
//
// Total time (decompose + fuse + reconstruct, 10 frames) per frame size for
// the three system configurations of the paper plus this library's adaptive
// configuration. Paper reference at 88x72: ARM+FPGA -48.1%, ARM+NEON -8%.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);

  print_header("Fig. 9(b) — total time vs frame size (" +
                   std::to_string(options.frames) + " frames, seconds)",
               "Fig. 9(b); §VII text: -48.1% ARM+FPGA / -8% ARM+NEON at 88x72");

  TextTable table({"frame size", "ARM Only (s)", "ARM+NEON (s)", "ARM+FPGA (s)",
                   "Adaptive (s)", "best static"});
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto arm = run_probe(EngineChoice::kArm, size, options.frames);
    const auto neon = run_probe(EngineChoice::kNeon, size, options.frames);
    const auto fpga = run_probe(EngineChoice::kFpga, size, options.frames);
    const auto adaptive = run_probe(EngineChoice::kAdaptive, size, options.frames);
    const char* best = fpga.total < neon.total ? "ARM+FPGA" : "ARM+NEON";
    table.add_row({size.label(), TextTable::num(arm.total.sec(), 3),
                   TextTable::num(neon.total.sec(), 3),
                   TextTable::num(fpga.total.sec(), 3),
                   TextTable::num(adaptive.total.sec(), 3), best});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: ARM+FPGA outperforms ARM+NEON only beyond ~40x40\n"
              "(paper's break point); the adaptive system is never worse than the\n"
              "best static choice (paper's conclusion / future work).\n");
  return 0;
}

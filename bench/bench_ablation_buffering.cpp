// Ablation A2 — the Fig. 5 double-buffering pipeline.
//
// "To increase the performance of the system we divided the kernel memory
// into two areas or buffers. This double buffering mechanism is used to
// parallelize the transfer and processing of data from user space to kernel
// space."
//
// Runs the FPGA configuration with the ping-pong schedule enabled and
// disabled and reports the end-to-end difference per frame size.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  json::Value jrun = json_run_header("bench_ablation_buffering", options);

  print_header("Ablation A2 — double buffering (Fig. 5) on vs off",
               "§V / Fig. 5: overlap of user-space transfer and PL processing");

  TextTable table({"frame size", "single buf (s)", "double buf (s)", "saved", "PS stall single",
                   "PS stall double"});
  const sched::RunConfig base = bench_run_config(options);
  json::Value jsizes = json::Value::array();
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    sched::RunConfig single = base;
    single.driver_costs.double_buffering = false;
    sched::RunConfig dual = base;
    dual.driver_costs.double_buffering = true;

    // Concrete backends: the stall-time readout below needs accelerator().
    sched::FpgaBackend fpga_single(single);
    sched::FpgaBackend fpga_dual(dual);
    const auto rs = probe_backend(fpga_single, size, options.frames);
    const auto rd = probe_backend(fpga_dual, size, options.frames);
    const SimDuration stall_s = fpga_single.accelerator().stall_time();
    const SimDuration stall_d = fpga_dual.accelerator().stall_time();

    table.add_row({size.label(), TextTable::num(rs.total.sec(), 3),
                   TextTable::num(rd.total.sec(), 3),
                   TextTable::num(100.0 * (1.0 - rd.total.sec() / rs.total.sec()), 1) + "%",
                   stall_s.to_string(), stall_d.to_string()});
    jsizes.push(json::Value::object()
                    .set("size", size.label())
                    .set("single_buffer_s", rs.total.sec())
                    .set("double_buffer_s", rd.total.sec())
                    .set("stall_single_s", stall_s.sec())
                    .set("stall_double_s", stall_d.sec()));
  }
  jrun.set("sizes", std::move(jsizes));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("double buffering hides the engine's processing time behind the next\n"
              "line's input copy; the benefit grows with line length (PL busy time).\n");
  return write_json_report(options, jrun);
}

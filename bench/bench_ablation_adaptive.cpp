// Ablation A3 — the adaptive engine-selection system (paper future work).
//
// Sweeps the routing threshold of the adaptive backend and compares against
// the static configurations, including the per-level routing statistics that
// show *why* it wins: deep pyramid levels of large frames are small
// workloads, exactly the regime where the paper shows the FPGA losing.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  json::Value jrun = json_run_header("bench_ablation_adaptive", options);

  print_header("Ablation A3 — adaptive NEON/FPGA selection",
               "§VIII: \"an adaptive system that intelligently selects between the "
               "NEON engine and the FPGA\"");

  // Threshold sweep at the full frame size.
  std::printf("threshold sweep at 88x72 (%d frames):\n", options.frames);
  TextTable sweep({"threshold (samples)", "total (s)", "energy (mJ)", "lines FPGA",
                   "lines NEON"});
  const sched::RunConfig base = bench_run_config(options);
  json::Value jsweep = json::Value::array();
  for (int threshold : {0, 24, 36, 44, 64, 96, 1 << 20}) {
    sched::RunConfig run = base;
    run.adaptive_threshold_samples = threshold;
    sched::AdaptiveBackend backend(run);  // concrete: router stats below
    const auto r = probe_backend(backend, {88, 72}, options.frames);
    const std::string label =
        threshold >= (1 << 20) ? "inf (all NEON)" : std::to_string(threshold);
    sweep.add_row({label, TextTable::num(r.total.sec(), 3),
                   TextTable::num(r.energy_mj, 1),
                   std::to_string(backend.router().lines_on_fpga()),
                   std::to_string(backend.router().lines_on_simd())});
    jsweep.push(json::Value::object()
                    .set("threshold", threshold)
                    .set("total_s", r.total.sec())
                    .set("energy_mj", r.energy_mj)
                    .set("lines_fpga",
                         static_cast<double>(backend.router().lines_on_fpga()))
                    .set("lines_neon",
                         static_cast<double>(backend.router().lines_on_simd())));
  }
  jrun.set("threshold_sweep", std::move(jsweep));
  std::printf("%s\n", sweep.to_string().c_str());

  // Adaptive vs static across sizes.
  std::printf("adaptive (default threshold) vs static engines (%d frames):\n",
              options.frames);
  TextTable table({"frame size", "NEON (s)", "FPGA (s)", "Adaptive (s)",
                   "vs best static", "NEON (mJ)", "FPGA (mJ)", "Adaptive (mJ)"});
  json::Value jstatic = json::Value::array();
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto rn = run_probe(EngineChoice::kNeon, size, base);
    const auto rf = run_probe(EngineChoice::kFpga, size, base);
    const auto ra = run_probe(EngineChoice::kAdaptive, size, base);
    const double best = std::min(rn.total.sec(), rf.total.sec());
    table.add_row({size.label(), TextTable::num(rn.total.sec(), 3),
                   TextTable::num(rf.total.sec(), 3), TextTable::num(ra.total.sec(), 3),
                   TextTable::num(100.0 * (ra.total.sec() / best - 1.0), 1) + "%",
                   TextTable::num(rn.energy_mj, 1), TextTable::num(rf.energy_mj, 1),
                   TextTable::num(ra.energy_mj, 1)});
    jstatic.push(json::Value::object()
                     .set("size", size.label())
                     .set("neon_s", rn.total.sec())
                     .set("fpga_s", rf.total.sec())
                     .set("adaptive_s", ra.total.sec())
                     .set("neon_mj", rn.energy_mj)
                     .set("fpga_mj", rf.energy_mj)
                     .set("adaptive_mj", ra.energy_mj));
  }
  jrun.set("vs_static", std::move(jstatic));
  std::printf("%s\n", table.to_string().c_str());

  // Self-tuning: let the system calibrate its own threshold across the sweep
  // (the run-time intelligence the paper's future work asks for).
  const sched::ThresholdCalibration cal_time =
      calibrate_adaptive_threshold(sched::CrossoverMetric::kTotalTime, {}, 2);
  const sched::ThresholdCalibration cal_energy =
      calibrate_adaptive_threshold(sched::CrossoverMetric::kEnergy, {}, 2);
  std::printf("auto-calibrated thresholds over the paper sweep: %d samples for time,\n"
              "%d samples for energy (shipped default: 44).\n\n",
              cal_time.best_threshold, cal_energy.best_threshold);

  std::printf("the adaptive system tracks the winner on both sides of the paper's\n"
              "crossovers and beats the static FPGA configuration at 88x72 by keeping\n"
              "the small deep-level lines on NEON.\n");
  jrun.set("calibration", json::Value::object()
                              .set("best_threshold_time", cal_time.best_threshold)
                              .set("best_threshold_energy",
                                   cal_energy.best_threshold));
  return write_json_report(options, jrun);
}

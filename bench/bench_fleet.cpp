// Fleet bench — N concurrent camera streams on one modeled ZC702.
//
// The paper fuses one stream; a surveillance deployment runs several cameras
// against the same PS+PL budget. This bench drives sched::run_fleet across
// stream count x frame size x PL engine count and reports what a fleet
// operator cares about: per-stream p50/p99 latency, dropped frames, and
// energy per frame. Engine counts are bounded by the Table-I resource model
// (the paper's float32 datapath fits the xc7z020 once; the Q2.16 fixed-point
// datapath about seven times), so multi-engine cells model the fixed-point
// build. Streams arrive at camera rate with deterministic jitter; everything
// is modeled time, bit-identical at any --threads.
#include "bench/bench_util.h"
#include "src/hw/fixed_point.h"
#include "src/sched/fleet.h"

namespace {

using namespace vf;
using namespace vf::bench;

constexpr double kCameraFps = 30.0;
constexpr double kJitterFrac = 0.2;

std::vector<sched::StreamConfig> make_streams(int count,
                                              const sched::FrameSize& size,
                                              const sched::RunConfig& base) {
  std::vector<sched::StreamConfig> streams(static_cast<std::size_t>(count));
  for (sched::StreamConfig& s : streams) {
    s.backend = sched::BackendKind::kFpgaBatched;
    s.run = base;
    s.run.frame_size = size;
    s.arrival.fps = kCameraFps;
    s.arrival.jitter_frac = kJitterFrac;
    s.queue_depth = 4;
  }
  return streams;
}

sched::FleetConfig fleet_config(int engines) {
  sched::FleetConfig fleet;
  fleet.engines = engines;
  fleet.cores = 2;  // the ZC702's two Cortex-A9s
  fleet.pipeline_depth = 4;
  fleet.steal_engines = true;
  fleet.spill_wait_frac = 0.5;
  fleet.fixed_point_engines = engines > 1;  // the float datapath fits once
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = parse_bench_options(argc, argv);
  const sched::RunConfig base = bench_run_config(options);

  print_header("Fleet scheduling — concurrent camera streams on one ZC702",
               "multi-stream extension of the paper's single-pipeline system");

  // How often each engine datapath fits the part (Table-I model) — this is
  // the bound run_fleet enforces on the engine-count sweep below.
  const hw::DevicePart part;
  const int float_fit = hw::max_engine_instances(
      part, hw::estimate_engine_resources(hw::WaveletEngineConfig{}));
  const int fixed_fit = hw::max_engine_instances(
      part, hw::estimate_engine_resources_fixed(hw::WaveletEngineConfig{},
                                                hw::FixedPointFormat{}));
  std::printf("Table-I fit on %s: float32 engine x%d, Q2.16 fixed x%d\n\n",
              part.name.c_str(), float_fit, fixed_fit);

  json::Value jrun = json_run_header("bench_fleet", options);
  jrun.set("camera_fps", kCameraFps);
  jrun.set("engine_fit_float", float_fit);
  jrun.set("engine_fit_fixed", fixed_fit);

  // --- 1: stream-count sweep at 88x72, 2 fixed-point engines ----------------
  std::printf("[1] stream count sweep at 88x72 (%d frames/stream, %.0f fps "
              "cameras, 2 engines)\n\n",
              options.frames, kCameraFps);
  TextTable sweep({"streams", "makespan (s)", "dropped", "spilled", "p99 (ms)",
                   "energy (mJ)", "mJ/frame"});
  json::Value jsweep = json::Value::array();
  const int stream_counts[] = {1, 2, 4, 6};
  sched::FleetResult detail;  // per-stream table below shows the largest run
  for (const int count : stream_counts) {
    const sched::FleetResult r =
        sched::run_fleet(make_streams(count, {88, 72}, base), fleet_config(2));
    SimDuration p99;
    int spilled = 0;
    for (const sched::StreamStats& s : r.streams) {
      if (s.p99_latency > p99) p99 = s.p99_latency;
      spilled += s.spilled;
    }
    sweep.add_row({std::to_string(count), TextTable::num(r.makespan.sec(), 3),
                   std::to_string(r.dropped), std::to_string(spilled),
                   TextTable::num(p99.ms(), 1), TextTable::num(r.energy_mj, 1),
                   TextTable::num(r.energy_per_frame_mj(), 2)});
    jsweep.push(json::Value::object()
                    .set("streams", count)
                    .set("makespan_s", r.makespan.sec())
                    .set("dropped", r.dropped)
                    .set("spilled", spilled)
                    .set("p99_latency_s", p99.sec())
                    .set("energy_mj", r.energy_mj)
                    .set("energy_per_frame_mj", r.energy_per_frame_mj()));
    detail = r;
  }
  jrun.set("stream_sweep", std::move(jsweep));
  std::printf("%s\n", sweep.to_string().c_str());

  std::printf("per-stream detail at %d streams:\n\n",
              static_cast<int>(detail.streams.size()));
  TextTable per({"stream", "arrived", "dropped", "spilled", "p50 (ms)",
                 "p99 (ms)", "mJ/frame"});
  json::Value jper = json::Value::array();
  for (std::size_t i = 0; i < detail.streams.size(); ++i) {
    const sched::StreamStats& s = detail.streams[i];
    per.add_row({std::to_string(i), std::to_string(s.arrived),
                 std::to_string(s.dropped), std::to_string(s.spilled),
                 TextTable::num(s.p50_latency.ms(), 1),
                 TextTable::num(s.p99_latency.ms(), 1),
                 TextTable::num(s.energy_per_frame_mj(), 2)});
    jper.push(json::Value::object()
                  .set("stream", static_cast<int>(i))
                  .set("arrived", s.arrived)
                  .set("dropped", s.dropped)
                  .set("spilled", s.spilled)
                  .set("p50_latency_s", s.p50_latency.sec())
                  .set("p99_latency_s", s.p99_latency.sec())
                  .set("energy_per_frame_mj", s.energy_per_frame_mj()));
  }
  jrun.set("per_stream", std::move(jper));
  std::printf("%s\n", per.to_string().c_str());
  std::printf("streams beyond the PL's sustainable rate queue up, then drop at\n"
              "their bounded queues or spill to the NEON cost model; the p99\n"
              "column is the first to show the saturation.\n\n");

  // --- 2: frame size x engine count grid at 4 streams -----------------------
  std::printf("[2] frame size x engine count at 4 streams (p99 ms / dropped)\n\n");
  TextTable grid({"frame size", "1 engine", "2 engines", "4 engines"});
  json::Value jgrid = json::Value::array();
  const sched::FrameSize grid_sizes[] = {{32, 24}, {64, 48}, {88, 72}};
  for (const sched::FrameSize& size : grid_sizes) {
    std::vector<std::string> row = {size.label()};
    for (const int engines : {1, 2, 4}) {
      const sched::FleetResult r = sched::run_fleet(
          make_streams(4, size, base), fleet_config(engines));
      SimDuration p99;
      for (const sched::StreamStats& s : r.streams) {
        if (s.p99_latency > p99) p99 = s.p99_latency;
      }
      row.push_back(TextTable::num(p99.ms(), 1) + " / " +
                    std::to_string(r.dropped));
      jgrid.push(json::Value::object()
                     .set("frame_size", size.label())
                     .set("engines", engines)
                     .set("p99_latency_s", p99.sec())
                     .set("dropped", r.dropped)
                     .set("energy_mj", r.energy_mj));
    }
    grid.add_row(row);
  }
  jrun.set("grid", std::move(jgrid));
  std::printf("%s\n", grid.to_string().c_str());
  std::printf("small frames fit the PL budget even on one engine; at 88x72 the\n"
              "fleet needs the extra fixed-point engine instances (or the NEON\n"
              "spill) to keep four cameras under their frame budgets.\n\n");

  // --- 3: cross-frame streaming vs the stage-granular fleet ------------------
  // Same stream mix, engine slots routed through the streaming replay
  // (ISSUE 9): a slot switching streams keeps its ping-pong buffer state
  // instead of draining, and sg=8 descriptor chains amortize the driver
  // entry — so the PS cores stop being the bottleneck at saturation.
  constexpr int kStreamingChain = 8;
  std::printf("[3] cross-frame streaming at 88x72, 2 engines (sg chain %d)\n\n",
              kStreamingChain);
  TextTable stream_tbl({"streams", "schedule", "makespan (s)", "dropped",
                        "spilled", "p99 (ms)", "mJ/frame"});
  json::Value jstreaming = json::Value::array();
  for (const int count : stream_counts) {
    for (const bool cross_frame : {false, true}) {
      sched::RunConfig cfg = base;
      cfg.cross_frame = cross_frame;
      cfg.batching.sg_chain_len = cross_frame ? kStreamingChain : 1;
      sched::FleetConfig fleet = fleet_config(2);
      fleet.cross_frame = cross_frame;
      const sched::FleetResult r =
          sched::run_fleet(make_streams(count, {88, 72}, cfg), fleet);
      SimDuration p99;
      int spilled = 0;
      for (const sched::StreamStats& s : r.streams) {
        if (s.p99_latency > p99) p99 = s.p99_latency;
        spilled += s.spilled;
      }
      stream_tbl.add_row({std::to_string(count),
                          cross_frame ? "streaming" : "legacy",
                          TextTable::num(r.makespan.sec(), 3),
                          std::to_string(r.dropped), std::to_string(spilled),
                          TextTable::num(p99.ms(), 1),
                          TextTable::num(r.energy_per_frame_mj(), 2)});
      jstreaming.push(json::Value::object()
                          .set("streams", count)
                          .set("mode", cross_frame ? "streaming" : "legacy")
                          .set("makespan_s", r.makespan.sec())
                          .set("dropped", r.dropped)
                          .set("spilled", spilled)
                          .set("p99_latency_s", p99.sec())
                          .set("energy_mj", r.energy_mj)
                          .set("energy_per_frame_mj", r.energy_per_frame_mj()));
    }
  }
  jrun.set("streaming", std::move(jstreaming));
  std::printf("%s\n", stream_tbl.to_string().c_str());
  std::printf("the streaming rows model per-batch PS occupancy explicitly, so\n"
              "they are honest about driver pressure: the descriptor chain is\n"
              "what keeps p99 and drops at or below the stage-granular rows\n"
              "once several cameras share the two A9 cores.\n");
  return write_json_report(options, jrun);
}

// Event-queue pipeline bench: batched double buffering + frame pipelining.
//
// The paper's Fig. 5 overlaps buffer-A processing with buffer-B filling for
// one line; the seed model charged time additively per line, so the
// ~12k-cycle driver entry was paid per line and frame-level PS/PL overlap
// could not be expressed. This bench sweeps frame size x backend x
// frame-depth on the Timeline-based schedule and reports:
//
//   1. the FPGA *time break point* with transfer-granularity double
//      buffering (batched line submission into the 2048-word buffers) —
//      the serial model's break sits between 35x35 and 40x40, the batched
//      schedule moves it left of 35x35;
//   2. sustained fps and energy/frame with the 4-stage frame pipeline
//      (prep | forward | fusion | inverse) against the serial runner;
//   3. how the speedup builds with frame depth (pipeline fill amortization);
//   4. host wall-clock at --threads N against the 1-thread run of the same
//      workload — the modeled numbers above are bit-identical either way,
//      so this is the one table where the host machine (not the modeled
//      ZC702) is the subject.
//
// Flags (shared with every bench): --frames N, --pipeline, --threads N,
// --kernels K, --json PATH. The smoke run under ctest uses the defaults;
// --frames raises the sweep depth.
#include <chrono>
#include <cstring>

#include "bench/bench_util.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  json::Value jrun = json_run_header("bench_pipeline", options);

  print_header("Pipelined schedule — batched double buffering + frame overlap",
               "Fig. 5 schedule at transfer granularity; ROADMAP items 1-2");

  // --- 1: time break point, serial ledger vs batched event queue ------------
  std::printf("[1] FPGA time break point (%d frames, total seconds)\n\n",
              options.frames);
  TextTable breaks({"frame size", "NEON (s)", "FPGA serial (s)", "FPGA+batch (s)",
                    "batch vs serial", "best engine"});
  std::string first_fpga_win = "none";
  json::Value jbreaks = json::Value::array();
  const sched::RunConfig config = bench_run_config(options);
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto neon = run_probe(EngineChoice::kNeon, size, config);
    const auto serial = run_probe(EngineChoice::kFpga, size, config);
    const auto batched = run_probe(EngineChoice::kFpgaBatched, size, config);
    const bool fpga_wins = batched.total < neon.total;
    if (fpga_wins && first_fpga_win == "none") first_fpga_win = size.label();
    breaks.add_row({size.label(), TextTable::num(neon.total.sec(), 3),
                    TextTable::num(serial.total.sec(), 3),
                    TextTable::num(batched.total.sec(), 3),
                    TextTable::num(100.0 * (1.0 - batched.total / serial.total), 1) + "%",
                    fpga_wins ? "FPGA+batch" : "NEON"});
    jbreaks.push(json::Value::object()
                     .set("size", size.label())
                     .set("neon_s", neon.total.sec())
                     .set("fpga_serial_s", serial.total.sec())
                     .set("fpga_batched_s", batched.total.sec())
                     .set("best", fpga_wins ? "FPGA+batch" : "NEON"));
  }
  jrun.set("break_point", std::move(jbreaks));
  std::printf("%s\n", breaks.to_string().c_str());
  std::printf("batching lines into the 2048-word kernel buffers amortizes the\n"
              "~12k-cycle driver entry; the FPGA time break point moves from\n"
              "between 35x35 and 40x40 (serial ledger) to %s.\n\n",
              first_fpga_win.c_str());

  // --- 2: frame pipeline, sustained fps and energy/frame --------------------
  std::printf("[2] 4-stage frame pipeline at depth %d (sustained fps)\n\n",
              options.frames);
  TextTable fps({"frame size", "engine", "serial fps", "pipelined fps", "speedup",
                 "mJ/frame serial", "mJ/frame pipelined"});
  const EngineChoice engines[] = {EngineChoice::kNeon, EngineChoice::kFpga,
                                  EngineChoice::kFpgaBatched,
                                  EngineChoice::kAdaptive};
  double serial_fpga_fps_full = 0.0, piped_batch_fps_full = 0.0;
  json::Value jfps = json::Value::array();
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    for (EngineChoice choice : engines) {
      // One overlapped run per cell: run_pipelined also reports the additive
      // serial total, so the serial row needs no second fusion pass.
      sched::PipelineRunResult piped;
      double serial_mj_frame = 0.0;
      with_backend(choice, config, [&](sched::TransformBackend& b) {
        piped = sched::probe_pipelined(b, size, options.frames);
        serial_mj_frame = power::PowerModel().energy_mj(b.compute_mode(),
                                                        piped.serial_total) /
                          options.frames;
      });
      const double serial_fps = options.frames / piped.serial_total.sec();
      if (size.width == 88 && size.height == 72) {
        if (choice == EngineChoice::kFpga) serial_fpga_fps_full = serial_fps;
        if (choice == EngineChoice::kFpgaBatched) {
          piped_batch_fps_full = piped.sustained_fps;
        }
      }
      fps.add_row({size.label(), engine_label(choice),
                   TextTable::num(serial_fps, 1),
                   TextTable::num(piped.sustained_fps, 1),
                   TextTable::num(piped.speedup_vs_serial(), 2) + "x",
                   TextTable::num(serial_mj_frame, 2),
                   TextTable::num(piped.energy_per_frame_mj(), 2)});
      jfps.push(json::Value::object()
                    .set("size", size.label())
                    .set("engine", engine_label(choice))
                    .set("serial_fps", serial_fps)
                    .set("pipelined_fps", piped.sustained_fps)
                    .set("serial_mj_per_frame", serial_mj_frame)
                    .set("pipelined_mj_per_frame", piped.energy_per_frame_mj()));
    }
  }
  jrun.set("frame_pipeline", std::move(jfps));
  std::printf("%s\n", fps.to_string().c_str());
  std::printf("CPU-only engines cannot overlap (every stage needs the PS core);\n"
              "the FPGA engines overlap frame N's PL transform with frame N-1's\n"
              "fusion rule and frame N+1's prep on the PS.\n"
              "at 88x72 the pipelined FPGA+batch schedule sustains %.1f fps vs the\n"
              "serial runner's %.1f fps on the FPGA engine: %.1fx.\n\n",
              piped_batch_fps_full, serial_fpga_fps_full,
              serial_fpga_fps_full > 0.0 ? piped_batch_fps_full / serial_fpga_fps_full
                                         : 0.0);

  // --- 3: speedup vs frame depth at the full frame ---------------------------
  std::printf("[3] pipeline fill amortization, FPGA+batch at 88x72\n\n");
  TextTable depth({"frames in flight", "serial (s)", "pipelined (s)", "speedup",
                   "sustained fps"});
  json::Value jdepth = json::Value::array();
  for (int frames : {1, 2, 4, 8, options.frames}) {
    sched::BatchedFpgaBackend backend(config);
    const auto piped = sched::probe_pipelined(backend, {88, 72}, frames);
    depth.add_row({std::to_string(frames),
                   TextTable::num(piped.serial_total.sec(), 3),
                   TextTable::num(piped.makespan.sec(), 3),
                   TextTable::num(piped.speedup_vs_serial(), 2) + "x",
                   TextTable::num(piped.sustained_fps, 1)});
    jdepth.push(json::Value::object()
                    .set("frames", frames)
                    .set("serial_s", piped.serial_total.sec())
                    .set("pipelined_s", piped.makespan.sec())
                    .set("sustained_fps", piped.sustained_fps));
  }
  jrun.set("depth_sweep", std::move(jdepth));
  std::printf("%s\n", depth.to_string().c_str());
  std::printf("a single frame cannot pipeline (speedup 1.00x); the win saturates\n"
              "once the fill and drain slots amortize over the frame stream.\n\n");

  // --- 4: host wall-clock vs --threads ---------------------------------------
  // Same workload (FPGA+batch frame stream at 88x72) at 1 host thread and at
  // the configured width. The modeled columns must agree bit-for-bit — only
  // the wall-clock column is allowed to move.
  const int threads = host::default_threads();
  std::printf("[4] host wall-clock, FPGA+batch at 88x72, %d frames\n\n",
              options.frames);
  const std::vector<sched::FramePair> stream =
      sched::make_sweep_frames({88, 72}, options.frames);
  auto timed_run = [&stream, &config](int nthreads, sched::PipelineRunResult* out) {
    sched::RunConfig rc = config;
    rc.host.threads = nthreads;
    sched::BatchedFpgaBackend backend(rc);
    return wall_seconds([&] { *out = sched::run_pipelined(backend, stream); });
  };
  sched::PipelineRunResult serial_run, threaded_run;
  const double serial_wall = timed_run(1, &serial_run);
  const double threaded_wall = timed_run(threads, &threaded_run);
  const bool modeled_identical =
      serial_run.makespan == threaded_run.makespan &&
      serial_run.serial_total == threaded_run.serial_total &&
      serial_run.energy_mj == threaded_run.energy_mj;
  TextTable wall({"host threads", "wall (ms)", "speedup", "modeled identical"});
  wall.add_row({"1", TextTable::num(serial_wall * 1e3, 1), "1.00x", "-"});
  wall.add_row({std::to_string(threads), TextTable::num(threaded_wall * 1e3, 1),
                TextTable::num(serial_wall / threaded_wall, 2) + "x",
                modeled_identical ? "yes" : "NO"});
  std::printf("%s\n", wall.to_string().c_str());
  std::printf("host threads change how fast the numerics compute, never what the\n"
              "modeled ZC702 reports (accounting replays serially; see DESIGN.md).\n");
  if (!modeled_identical) {
    std::fprintf(stderr, "fatal: modeled output changed with --threads\n");
    return 1;
  }
  jrun.set("host_wall_clock",
           json::Value::object()
               .set("threads", threads)
               .set("wall_s_1_thread", serial_wall)
               .set("wall_s_n_threads", threaded_wall)
               .set("speedup", serial_wall / threaded_wall)
               .set("modeled_identical", modeled_identical));

  // --- 5: host memory layout sweep -------------------------------------------
  // Same FPGA+batch stream under HostLayout::kNaive (per-line dispatch,
  // stride-W column gathers, vector scratch) vs kTiled (arena scratch,
  // blocked transpose, multi-line kernels). Wall clock is the subject;
  // every modeled field and the fused bits must be identical — layout is a
  // host detail the modeled ZC702 cannot see.
  std::printf("\n[5] host memory layout, FPGA+batch at 88x72, %d frames\n\n",
              options.frames);
  auto timed_layout = [&](dwt::HostLayout layout, sched::PipelineRunResult* out) {
    dwt::set_host_layout(layout);
    sched::BatchedFpgaBackend backend(config);
    const double wall =
        wall_seconds([&] { *out = sched::run_pipelined(backend, stream); });
    dwt::set_host_layout(dwt::HostLayout::kTiled);
    return wall;
  };
  sched::PipelineRunResult naive_run, tiled_run;
  const double naive_wall = timed_layout(dwt::HostLayout::kNaive, &naive_run);
  const double tiled_wall = timed_layout(dwt::HostLayout::kTiled, &tiled_run);
  const bool layout_modeled_identical =
      naive_run.makespan == tiled_run.makespan &&
      naive_run.serial_total == tiled_run.serial_total &&
      naive_run.energy_mj == tiled_run.energy_mj;
  // Fused bits across layouts, checked on the host transform directly.
  auto fused_hash = [&](dwt::HostLayout layout) {
    dwt::set_host_layout(layout);
    dwt::SimdLineFilter filter(config.host);
    const image::ImageF fused = fusion::fuse_frames(stream[0].visible,
                                                    stream[0].thermal,
                                                    config.fuse, filter);
    dwt::set_host_layout(dwt::HostLayout::kTiled);
    unsigned long long h = 1469598103934665603ull;  // FNV-1a over the bits
    for (std::size_t i = 0; i < fused.size(); ++i) {
      unsigned int bits;
      std::memcpy(&bits, &fused.data()[i], sizeof(bits));
      for (int b = 0; b < 4; ++b) {
        h ^= (bits >> (8 * b)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return h;
  };
  const bool layout_fused_identical =
      fused_hash(dwt::HostLayout::kNaive) == fused_hash(dwt::HostLayout::kTiled);
  TextTable layout({"layout", "wall (ms)", "speedup", "modeled identical",
                    "fused identical"});
  layout.add_row({"naive", TextTable::num(naive_wall * 1e3, 1), "1.00x", "-", "-"});
  layout.add_row({"tiled", TextTable::num(tiled_wall * 1e3, 1),
                  TextTable::num(naive_wall / tiled_wall, 2) + "x",
                  layout_modeled_identical ? "yes" : "NO",
                  layout_fused_identical ? "yes" : "NO"});
  std::printf("%s\n", layout.to_string().c_str());
  std::printf("the tiled layout changes where scratch lives and how lines reach\n"
              "the kernels — never which samples a line sees or the kernel\n"
              "flavour per line, so both columns on the right must read yes.\n");
  if (!layout_modeled_identical || !layout_fused_identical) {
    std::fprintf(stderr, "fatal: output changed with host memory layout\n");
    return 1;
  }
  jrun.set("host_layout_sweep",
           json::Value::object()
               .set("wall_s_naive", naive_wall)
               .set("wall_s_tiled", tiled_wall)
               .set("speedup", naive_wall / tiled_wall)
               .set("modeled_identical", layout_modeled_identical)
               .set("fused_identical", layout_fused_identical));

  return write_json_report(options, jrun);
}

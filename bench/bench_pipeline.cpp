// Event-queue pipeline bench: batched double buffering + frame pipelining.
//
// The paper's Fig. 5 overlaps buffer-A processing with buffer-B filling for
// one line; the seed model charged time additively per line, so the
// ~12k-cycle driver entry was paid per line and frame-level PS/PL overlap
// could not be expressed. This bench sweeps frame size x backend x
// frame-depth on the Timeline-based schedule and reports:
//
//   1. the FPGA *time break point* with transfer-granularity double
//      buffering (batched line submission into the 2048-word buffers) —
//      the serial model's break sits between 35x35 and 40x40, the batched
//      schedule moves it left of 35x35;
//   2. sustained fps and energy/frame with the 4-stage frame pipeline
//      (prep | forward | fusion | inverse) against the serial runner;
//   3. how the speedup builds with frame depth (pipeline fill amortization);
//   4. host wall-clock at --threads N against the 1-thread run of the same
//      workload — the modeled numbers above are bit-identical either way,
//      so this is the one table where the host machine (not the modeled
//      ZC702) is the subject.
//
// Flags (shared with every bench): --frames N, --pipeline, --threads N,
// --kernels K, --json PATH. The smoke run under ctest uses the defaults;
// --frames raises the sweep depth.
#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "src/fusion/fused_plan.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  json::Value jrun = json_run_header("bench_pipeline", options);

  print_header("Pipelined schedule — batched double buffering + frame overlap",
               "Fig. 5 schedule at transfer granularity; ROADMAP items 1-2");

  // --- 1: time break point, serial ledger vs batched event queue ------------
  std::printf("[1] FPGA time break point (%d frames, total seconds)\n\n",
              options.frames);
  TextTable breaks({"frame size", "NEON (s)", "FPGA serial (s)", "FPGA+batch (s)",
                    "batch vs serial", "best engine"});
  std::string first_fpga_win = "none";
  json::Value jbreaks = json::Value::array();
  const sched::RunConfig config = bench_run_config(options);
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto neon = run_probe(EngineChoice::kNeon, size, config);
    const auto serial = run_probe(EngineChoice::kFpga, size, config);
    const auto batched = run_probe(EngineChoice::kFpgaBatched, size, config);
    const bool fpga_wins = batched.total < neon.total;
    if (fpga_wins && first_fpga_win == "none") first_fpga_win = size.label();
    breaks.add_row({size.label(), TextTable::num(neon.total.sec(), 3),
                    TextTable::num(serial.total.sec(), 3),
                    TextTable::num(batched.total.sec(), 3),
                    TextTable::num(100.0 * (1.0 - batched.total / serial.total), 1) + "%",
                    fpga_wins ? "FPGA+batch" : "NEON"});
    jbreaks.push(json::Value::object()
                     .set("size", size.label())
                     .set("neon_s", neon.total.sec())
                     .set("fpga_serial_s", serial.total.sec())
                     .set("fpga_batched_s", batched.total.sec())
                     .set("best", fpga_wins ? "FPGA+batch" : "NEON"));
  }
  jrun.set("break_point", std::move(jbreaks));
  std::printf("%s\n", breaks.to_string().c_str());
  std::printf("batching lines into the 2048-word kernel buffers amortizes the\n"
              "~12k-cycle driver entry; the FPGA time break point moves from\n"
              "between 35x35 and 40x40 (serial ledger) to %s.\n\n",
              first_fpga_win.c_str());

  // --- 2: frame pipeline, sustained fps and energy/frame --------------------
  std::printf("[2] 4-stage frame pipeline at depth %d (sustained fps)\n\n",
              options.frames);
  TextTable fps({"frame size", "engine", "serial fps", "pipelined fps", "speedup",
                 "mJ/frame serial", "mJ/frame pipelined"});
  const EngineChoice engines[] = {EngineChoice::kNeon, EngineChoice::kFpga,
                                  EngineChoice::kFpgaBatched,
                                  EngineChoice::kAdaptive};
  double serial_fpga_fps_full = 0.0, piped_batch_fps_full = 0.0;
  json::Value jfps = json::Value::array();
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    for (EngineChoice choice : engines) {
      // One overlapped run per cell: run_pipelined also reports the additive
      // serial total, so the serial row needs no second fusion pass.
      sched::PipelineRunResult piped;
      double serial_mj_frame = 0.0;
      with_backend(choice, config, [&](sched::TransformBackend& b) {
        piped = sched::probe_pipelined(b, size, options.frames);
        serial_mj_frame = power::PowerModel().energy_mj(b.compute_mode(),
                                                        piped.serial_total) /
                          options.frames;
      });
      const double serial_fps = options.frames / piped.serial_total.sec();
      if (size.width == 88 && size.height == 72) {
        if (choice == EngineChoice::kFpga) serial_fpga_fps_full = serial_fps;
        if (choice == EngineChoice::kFpgaBatched) {
          piped_batch_fps_full = piped.sustained_fps;
        }
      }
      fps.add_row({size.label(), engine_label(choice),
                   TextTable::num(serial_fps, 1),
                   TextTable::num(piped.sustained_fps, 1),
                   TextTable::num(piped.speedup_vs_serial(), 2) + "x",
                   TextTable::num(serial_mj_frame, 2),
                   TextTable::num(piped.energy_per_frame_mj(), 2)});
      jfps.push(json::Value::object()
                    .set("size", size.label())
                    .set("engine", engine_label(choice))
                    .set("serial_fps", serial_fps)
                    .set("pipelined_fps", piped.sustained_fps)
                    .set("serial_mj_per_frame", serial_mj_frame)
                    .set("pipelined_mj_per_frame", piped.energy_per_frame_mj()));
    }
  }
  jrun.set("frame_pipeline", std::move(jfps));
  std::printf("%s\n", fps.to_string().c_str());
  std::printf("CPU-only engines cannot overlap (every stage needs the PS core);\n"
              "the FPGA engines overlap frame N's PL transform with frame N-1's\n"
              "fusion rule and frame N+1's prep on the PS.\n"
              "at 88x72 the pipelined FPGA+batch schedule sustains %.1f fps vs the\n"
              "serial runner's %.1f fps on the FPGA engine: %.1fx.\n\n",
              piped_batch_fps_full, serial_fpga_fps_full,
              serial_fpga_fps_full > 0.0 ? piped_batch_fps_full / serial_fpga_fps_full
                                         : 0.0);

  // --- 3: speedup vs frame depth at the full frame ---------------------------
  std::printf("[3] pipeline fill amortization, FPGA+batch at 88x72\n\n");
  TextTable depth({"frames in flight", "serial (s)", "pipelined (s)", "speedup",
                   "sustained fps"});
  json::Value jdepth = json::Value::array();
  for (int frames : {1, 2, 4, 8, options.frames}) {
    sched::BatchedFpgaBackend backend(config);
    const auto piped = sched::probe_pipelined(backend, {88, 72}, frames);
    depth.add_row({std::to_string(frames),
                   TextTable::num(piped.serial_total.sec(), 3),
                   TextTable::num(piped.makespan.sec(), 3),
                   TextTable::num(piped.speedup_vs_serial(), 2) + "x",
                   TextTable::num(piped.sustained_fps, 1)});
    jdepth.push(json::Value::object()
                    .set("frames", frames)
                    .set("serial_s", piped.serial_total.sec())
                    .set("pipelined_s", piped.makespan.sec())
                    .set("sustained_fps", piped.sustained_fps));
  }
  jrun.set("depth_sweep", std::move(jdepth));
  std::printf("%s\n", depth.to_string().c_str());
  std::printf("a single frame cannot pipeline (speedup 1.00x); the win saturates\n"
              "once the fill and drain slots amortize over the frame stream.\n\n");

  // --- 4: host wall-clock vs --threads ---------------------------------------
  // Same workload (FPGA+batch frame stream at 88x72) at 1 host thread and at
  // the configured width. The modeled columns must agree bit-for-bit — only
  // the wall-clock column is allowed to move.
  const int threads = host::default_threads();
  std::printf("[4] host wall-clock, FPGA+batch at 88x72, %d frames\n\n",
              options.frames);
  const std::vector<sched::FramePair> stream =
      sched::make_sweep_frames({88, 72}, options.frames);
  auto timed_run = [&stream, &config](int nthreads, sched::PipelineRunResult* out) {
    sched::RunConfig rc = config;
    rc.host.threads = nthreads;
    sched::BatchedFpgaBackend backend(rc);
    return wall_seconds([&] { *out = sched::run_pipelined(backend, stream); });
  };
  sched::PipelineRunResult serial_run, threaded_run;
  const double serial_wall = timed_run(1, &serial_run);
  const double threaded_wall = timed_run(threads, &threaded_run);
  const bool modeled_identical =
      serial_run.makespan == threaded_run.makespan &&
      serial_run.serial_total == threaded_run.serial_total &&
      serial_run.energy_mj == threaded_run.energy_mj;
  TextTable wall({"host threads", "wall (ms)", "speedup", "modeled identical"});
  wall.add_row({"1", TextTable::num(serial_wall * 1e3, 1), "1.00x", "-"});
  wall.add_row({std::to_string(threads), TextTable::num(threaded_wall * 1e3, 1),
                TextTable::num(serial_wall / threaded_wall, 2) + "x",
                modeled_identical ? "yes" : "NO"});
  std::printf("%s\n", wall.to_string().c_str());
  std::printf("host threads change how fast the numerics compute, never what the\n"
              "modeled ZC702 reports (accounting replays serially; see DESIGN.md).\n");
  if (!modeled_identical) {
    std::fprintf(stderr, "fatal: modeled output changed with --threads\n");
    return 1;
  }
  jrun.set("host_wall_clock",
           json::Value::object()
               .set("threads", threads)
               .set("wall_s_1_thread", serial_wall)
               .set("wall_s_n_threads", threaded_wall)
               .set("speedup", serial_wall / threaded_wall)
               .set("modeled_identical", modeled_identical));

  // --- 5: host memory layout sweep -------------------------------------------
  // Same FPGA+batch stream under HostLayout::kNaive (per-line dispatch,
  // stride-W column gathers, vector scratch), kTiled (arena scratch, blocked
  // transpose, multi-line kernels), and kFused (the band-streaming execution
  // plan: both frames' transforms interleaved band-by-band, fused bands
  // streamed straight into inverse synthesis). Wall clock is the subject;
  // every modeled field and the fused bits must be identical — layout is a
  // host detail the modeled ZC702 cannot see.
  std::printf("\n[5] host memory layout, FPGA+batch at 88x72, %d frames\n\n",
              options.frames);
  auto timed_layout = [&](dwt::HostLayout layout, sched::PipelineRunResult* out) {
    dwt::set_host_layout(layout);
    sched::BatchedFpgaBackend backend(config);
    const double wall =
        wall_seconds([&] { *out = sched::run_pipelined(backend, stream); });
    dwt::set_host_layout(dwt::HostLayout::kFused);
    return wall;
  };
  // Fused bits across layouts, checked on the host transform directly.
  auto fused_hash = [&](dwt::HostLayout layout) {
    dwt::set_host_layout(layout);
    dwt::SimdLineFilter filter(config.host);
    const image::ImageF fused = fusion::fuse_frames(stream[0].visible,
                                                    stream[0].thermal,
                                                    config.fuse, filter);
    dwt::set_host_layout(dwt::HostLayout::kFused);
    unsigned long long h = 1469598103934665603ull;  // FNV-1a over the bits
    for (std::size_t i = 0; i < fused.size(); ++i) {
      unsigned int bits;
      std::memcpy(&bits, &fused.data()[i], sizeof(bits));
      for (int b = 0; b < 4; ++b) {
        h ^= (bits >> (8 * b)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return h;
  };
  // Host-transform-only wall clock: repeated fuse_frames with no modeled
  // backend, so the layout's effect is not diluted by the (layout-invariant)
  // event-queue bookkeeping that dominates run_pipelined's host time.
  auto host_only_us = [&](dwt::HostLayout hl) {
    dwt::set_host_layout(hl);
    dwt::SimdLineFilter filter(config.host);
    auto fuse_once = [&] {
      (void)fusion::fuse_frames(stream[0].visible, stream[0].thermal,
                                config.fuse, filter);
    };
    for (int i = 0; i < 10; ++i) fuse_once();  // warm the arenas
    const int iters = std::max(20, 10 * options.frames);
    const double wall = wall_seconds([&] {
      for (int i = 0; i < iters; ++i) fuse_once();
    });
    dwt::set_host_layout(dwt::HostLayout::kFused);
    return wall / iters * 1e6;
  };
  const dwt::HostLayout layouts[] = {dwt::HostLayout::kNaive,
                                     dwt::HostLayout::kTiled,
                                     dwt::HostLayout::kFused};
  sched::PipelineRunResult layout_run[3];
  double layout_wall[3];
  double layout_host_us[3];
  unsigned long long layout_hash[3];
  bool layout_modeled_identical = true, layout_fused_identical = true;
  for (int i = 0; i < 3; ++i) {
    layout_wall[i] = timed_layout(layouts[i], &layout_run[i]);
    layout_host_us[i] = host_only_us(layouts[i]);
    layout_hash[i] = fused_hash(layouts[i]);
    if (i > 0) {
      layout_modeled_identical =
          layout_modeled_identical &&
          layout_run[i].makespan == layout_run[0].makespan &&
          layout_run[i].serial_total == layout_run[0].serial_total &&
          layout_run[i].energy_mj == layout_run[0].energy_mj;
      layout_fused_identical =
          layout_fused_identical && layout_hash[i] == layout_hash[0];
    }
  }
  TextTable layout({"layout", "wall (ms)", "speedup", "host-only (us/pair)",
                    "host speedup", "modeled identical", "fused identical"});
  for (int i = 0; i < 3; ++i) {
    layout.add_row({dwt::host_layout_name(layouts[i]),
                    TextTable::num(layout_wall[i] * 1e3, 1),
                    TextTable::num(layout_wall[0] / layout_wall[i], 2) + "x",
                    TextTable::num(layout_host_us[i], 1),
                    TextTable::num(layout_host_us[0] / layout_host_us[i], 2) + "x",
                    i == 0 ? "-" : (layout_modeled_identical ? "yes" : "NO"),
                    i == 0 ? "-" : (layout_fused_identical ? "yes" : "NO")});
  }
  std::printf("%s\n", layout.to_string().c_str());
  std::printf("the layouts change where scratch lives and how lines reach the\n"
              "kernels — never which samples a line sees or the kernel flavour\n"
              "per line, so both columns on the right must read yes. the\n"
              "host-only column times fuse_frames without the (layout-\n"
              "invariant) event-queue bookkeeping of the pipelined column.\n");
  if (!layout_modeled_identical || !layout_fused_identical) {
    std::fprintf(stderr, "fatal: output changed with host memory layout\n");
    return 1;
  }
  jrun.set("host_layout_sweep",
           json::Value::object()
               .set("wall_s_naive", layout_wall[0])
               .set("wall_s_tiled", layout_wall[1])
               .set("wall_s_fused", layout_wall[2])
               .set("speedup", layout_wall[0] / layout_wall[1])
               .set("speedup_fused_vs_naive", layout_wall[0] / layout_wall[2])
               .set("speedup_fused_vs_tiled", layout_wall[1] / layout_wall[2])
               .set("host_us_naive", layout_host_us[0])
               .set("host_us_tiled", layout_host_us[1])
               .set("host_us_fused", layout_host_us[2])
               .set("host_speedup_fused_vs_tiled",
                    layout_host_us[1] / layout_host_us[2])
               .set("modeled_identical", layout_modeled_identical)
               .set("fused_identical", layout_fused_identical));

  // --- 5b: estimated DRAM traffic and arithmetic intensity -------------------
  // Derived from the pass structure (pass counts x band sizes, 4 bytes per
  // element move — see FusionPlan::estimate_traffic), not measured: the
  // point is the pass-count ratio the fused plan removes, and the implied
  // host bandwidth each layout would need at its measured wall-clock, which
  // can be sanity-checked against bench_membw's STREAM numbers.
  {
    const dwt::FusionPlan plan(72, 88, config.fuse.transform);
    const dwt::FusionPlan::Traffic traffic = plan.estimate_traffic();
    const double frames_run = static_cast<double>(options.frames);
    const double tiled_gbps =
        traffic.staged_bytes * frames_run / layout_wall[1] * 1e-9;
    const double fused_gbps =
        traffic.fused_bytes * frames_run / layout_wall[2] * 1e-9;
    TextTable tt({"layout", "est. MB/frame pair", "flops/byte",
                  "implied GB/s at measured wall"});
    tt.add_row({"tiled", TextTable::num(traffic.staged_bytes * 1e-6, 3),
                TextTable::num(traffic.flops / traffic.staged_bytes, 2),
                TextTable::num(tiled_gbps, 2)});
    tt.add_row({"fused", TextTable::num(traffic.fused_bytes * 1e-6, 3),
                TextTable::num(traffic.flops / traffic.fused_bytes, 2),
                TextTable::num(fused_gbps, 2)});
    std::printf("\n[5b] estimated transform traffic at 88x72\n\n%s\n",
                tt.to_string().c_str());
    std::printf("fused/staged bytes ratio: %.2fx fewer bytes per frame pair.\n"
                "cross-check: the implied GB/s must sit below the copy/triad\n"
                "bandwidth bench_membw reports, and the fused row's higher\n"
                "flops/byte is the point — fewer DRAM passes per MAC.\n",
                traffic.staged_bytes / traffic.fused_bytes);
    jrun.set("transform_traffic",
             json::Value::object()
                 .set("staged_bytes_per_frame_pair", traffic.staged_bytes)
                 .set("fused_bytes_per_frame_pair", traffic.fused_bytes)
                 .set("bytes_ratio_staged_over_fused",
                      traffic.staged_bytes / traffic.fused_bytes)
                 .set("flops_per_frame_pair", traffic.flops)
                 .set("arith_intensity_staged", traffic.flops / traffic.staged_bytes)
                 .set("arith_intensity_fused", traffic.flops / traffic.fused_bytes)
                 // "wall" in the key exempts these from the baseline drift
                 // check — they are derived from host wall-clock, unlike the
                 // modeled byte/flop counts above.
                 .set("wall_implied_gbps_tiled", tiled_gbps)
                 .set("wall_implied_gbps_fused", fused_gbps));
  }

  // --- 6: cross-frame streaming + scatter-gather driver ----------------------
  // The streaming replay keeps the engine's ping-pong buffers hot across
  // frame boundaries and amortizes the driver entry over a descriptor chain
  // (ISSUE 9). Two views: the pipelined break-point sweep extended below the
  // paper's smallest size (16x12, 24x18 are bench-local; paper_frame_sizes()
  // is locked), and the sustained-fps sweep over the chain length at 88x72.
  constexpr int kStreamingChain = 8;
  std::printf("\n[6] cross-frame streaming, pipelined totals (%d frames)\n\n",
              options.frames);
  auto piped_at = [&](const sched::RunConfig& rc) {
    sched::BatchedFpgaBackend backend(rc);
    return sched::probe_pipelined(backend, rc);
  };
  json::Value jstreaming = json::Value::object();
  jstreaming.set("sg_chain_len", kStreamingChain);
  json::Value jsweep = json::Value::array();
  TextTable stream_tbl({"frame size", "NEON piped (s)", "FPGA piped (s)",
                        "streaming (s)", "stream vs legacy", "best engine"});
  std::vector<sched::FrameSize> stream_sizes = {{16, 12}, {24, 18}};
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    stream_sizes.push_back(size);
  }
  std::string legacy_break = "none", streaming_break = "none";
  for (const sched::FrameSize& size : stream_sizes) {
    sched::RunConfig legacy_cfg = config;
    legacy_cfg.frame_size = size;
    legacy_cfg.cross_frame = false;
    legacy_cfg.batching.sg_chain_len = 1;
    sched::RunConfig stream_cfg = legacy_cfg;
    stream_cfg.cross_frame = true;
    stream_cfg.batching.sg_chain_len = kStreamingChain;

    sched::PipelineRunResult neon;
    with_backend(EngineChoice::kNeon, legacy_cfg, [&](sched::TransformBackend& b) {
      neon = sched::probe_pipelined(b, legacy_cfg);
    });
    const sched::PipelineRunResult legacy = piped_at(legacy_cfg);
    const sched::PipelineRunResult streaming = piped_at(stream_cfg);
    if (legacy.makespan < neon.makespan && legacy_break == "none") {
      legacy_break = size.label();
    }
    if (streaming.makespan < neon.makespan && streaming_break == "none") {
      streaming_break = size.label();
    }
    const bool stream_wins = streaming.makespan < neon.makespan;
    stream_tbl.add_row(
        {size.label(), TextTable::num(neon.makespan.sec(), 4),
         TextTable::num(legacy.makespan.sec(), 4),
         TextTable::num(streaming.makespan.sec(), 4),
         TextTable::num(100.0 * (1.0 - streaming.makespan / legacy.makespan), 1) +
             "%",
         stream_wins ? "FPGA+stream" : "NEON"});
    jsweep.push(json::Value::object()
                    .set("size", size.label())
                    .set("neon_piped_s", neon.makespan.sec())
                    .set("fpga_piped_s", legacy.makespan.sec())
                    .set("fpga_streaming_s", streaming.makespan.sec())
                    .set("streaming_fps", streaming.sustained_fps)
                    .set("streaming_mj_per_frame", streaming.energy_per_frame_mj())
                    .set("best", stream_wins ? "FPGA+stream" : "NEON"));
  }
  jstreaming.set("break_point_sweep", std::move(jsweep));
  jstreaming.set("break_point_legacy", legacy_break);
  jstreaming.set("break_point_streaming", streaming_break);
  std::printf("%s\n", stream_tbl.to_string().c_str());
  std::printf("pipelined break point (first size the FPGA wins): legacy %s,\n"
              "streaming %s. 16x12 and 24x18 extend the sweep below the\n"
              "paper's smallest size to show where the driver entry stops\n"
              "dominating once descriptor chains amortize it.\n\n",
              legacy_break.c_str(), streaming_break.c_str());

  std::printf("[6b] chain-length sweep, FPGA+batch at 88x72 (%d frames)\n\n",
              options.frames);
  TextTable sg_tbl({"schedule", "sustained fps", "makespan (s)", "mJ/frame"});
  json::Value jsg = json::Value::array();
  {
    sched::RunConfig legacy_cfg = config;
    legacy_cfg.frame_size = {88, 72};
    legacy_cfg.cross_frame = false;
    legacy_cfg.batching.sg_chain_len = 1;
    const sched::PipelineRunResult legacy = piped_at(legacy_cfg);
    sg_tbl.add_row({"legacy overlap", TextTable::num(legacy.sustained_fps, 1),
                    TextTable::num(legacy.makespan.sec(), 4),
                    TextTable::num(legacy.energy_per_frame_mj(), 2)});
    jsg.push(json::Value::object()
                 .set("mode", "legacy")
                 .set("sg_chain_len", 1)
                 .set("sustained_fps", legacy.sustained_fps)
                 .set("makespan_s", legacy.makespan.sec())
                 .set("mj_per_frame", legacy.energy_per_frame_mj()));
    for (int sg : {1, 2, 4, 8, 16}) {
      sched::RunConfig stream_cfg = legacy_cfg;
      stream_cfg.cross_frame = true;
      stream_cfg.batching.sg_chain_len = sg;
      const sched::PipelineRunResult streaming = piped_at(stream_cfg);
      sg_tbl.add_row({"streaming sg=" + std::to_string(sg),
                      TextTable::num(streaming.sustained_fps, 1),
                      TextTable::num(streaming.makespan.sec(), 4),
                      TextTable::num(streaming.energy_per_frame_mj(), 2)});
      jsg.push(json::Value::object()
                   .set("mode", "streaming")
                   .set("sg_chain_len", sg)
                   .set("sustained_fps", streaming.sustained_fps)
                   .set("makespan_s", streaming.makespan.sec())
                   .set("mj_per_frame", streaming.energy_per_frame_mj()));
    }
  }
  jstreaming.set("chain_sweep", std::move(jsg));
  jrun.set("streaming", std::move(jstreaming));
  std::printf("%s\n", sg_tbl.to_string().c_str());
  std::printf("sg=1 streaming pays every driver entry on the PS core explicitly\n"
              "(the legacy stage split hides the part that overlapped DMA), so\n"
              "the chain is what wins: one ioctl arms up to sg batches and the\n"
              "rest cost a descriptor append + fetch.\n");

  return write_json_report(options, jrun);
}

// Fig. 2 — "Profiling results of fusing two input images".
//
// Profiles the ARM-only fusion of one frame pair at 88x72 and prints the
// percentage of execution time per stage. The paper's conclusion must hold:
// the forward and inverse DT-CWT dominate, which is why they are the
// acceleration targets.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  note_frames_unused(options, "profiles a single frame pair");

  print_header("Fig. 2 — profile of the fusion process (ARM only, 88x72)",
               "Fig. 2: forward/inverse DT-CWT are the most compute-intensive tasks");

  const auto arm = sched::make_backend(EngineChoice::kArm, bench_run_config(options));
  sched::TimedFusionRunner runner(*arm);
  const auto pairs = sched::make_sweep_frames({88, 72}, 1);
  const sched::FrameRunResult r = runner.run_frame_pair(pairs[0].visible,
                                                        pairs[0].thermal);

  const double total_ms = r.times.total().ms();
  struct Row {
    const char* stage;
    double ms;
  };
  const Row rows[] = {
      {"Forward DT-CWT (2 frames)", r.times.forward.ms()},
      {"Inverse DT-CWT", r.times.inverse.ms()},
      {"Coefficient fusion rule", r.times.fusion.ms()},
      {"Frame prep / conversion", r.times.prep.ms()},
  };

  TextTable table({"stage", "time (ms)", "share"});
  for (const Row& row : rows) {
    table.add_row({row.stage, TextTable::num(row.ms, 2),
                   TextTable::num(100.0 * row.ms / total_ms, 1) + "%"});
  }
  table.add_row({"TOTAL", TextTable::num(total_ms, 2), "100.0%"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper: forward + inverse DT-CWT dominate the profile (~45%% + ~25%%);\n");
  std::printf("measured: forward %.1f%%, inverse %.1f%% — the transforms are the\n"
              "acceleration targets, as in the paper.\n",
              100.0 * r.times.forward.ms() / total_ms,
              100.0 * r.times.inverse.ms() / total_ms);
  return 0;
}

// Table I — "Implementation complexity of wavelet engine" on xc7z020clg484-1.
//
// Prints the resource-model estimate for the paper's 12-slot engine (the
// exact Table I row set) plus this library's default 14-slot configuration
// (needed to fit the q-shift filters; see ablation A4).
#include "bench/bench_util.h"
#include "src/hw/resources.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  note_frames_unused(options, "resource table, no timed probe");

  print_header("Table I — wavelet engine implementation complexity",
               "Table I: Registers 23412/22%, LUTs 17405/32%, Slices 7890/59%, BUFG 3/9%");

  const hw::DevicePart part;
  std::printf("part: %s\n\n", part.name.c_str());

  auto print_config = [&](const char* label, const hw::WaveletEngineConfig& config) {
    const hw::ResourceUsage u = estimate_engine_resources(config);
    TextTable table({"resource", "utilization", "available", "percentage"});
    table.add_row({"Registers", std::to_string(u.registers), std::to_string(part.registers),
                   std::to_string(u.pct_registers(part)) + "%"});
    table.add_row({"LUTs", std::to_string(u.luts), std::to_string(part.luts),
                   std::to_string(u.pct_luts(part)) + "%"});
    table.add_row({"Slices", std::to_string(u.slices), std::to_string(part.slices),
                   std::to_string(u.pct_slices(part)) + "%"});
    table.add_row({"BUFG", std::to_string(u.bufg), std::to_string(part.bufg),
                   std::to_string(u.pct_bufg(part)) + "%"});
    table.add_row({"BRAM36 (not in Table I)", std::to_string(u.bram36),
                   std::to_string(part.bram36), ""});
    std::printf("%s (slots=%d, %d-word line buffers):\n%s\n", label, config.slots,
                config.buffer_words, table.to_string().c_str());
  };

  print_config("paper configuration", hw::paper_engine_config());

  hw::WaveletEngineConfig default_config;  // 14 slots
  print_config("this library's default (fits 14-tap q-shift)", default_config);

  std::printf("the paper configuration reproduces Table I exactly (resource model\n"
              "calibrated against it; tests/test_resources.cpp locks the values).\n");
  return 0;
}

// Host memory-bandwidth microbenchmark (STREAM / RandomAccess style).
//
// Everything else in the bench suite reports *modeled* ZC702 time; the cost
// constants behind that model (the GP port's ~25 PS cycles/word, the ACP
// DMA's burst shape in src/hw/axi.h) were calibrated against the paper's
// figures, not against this machine. This bench is the sanity anchor: it
// measures what the build host actually sustains on the four STREAM kernels
// (copy/scale/add/triad) plus a RandomAccess-style gather, and prints the
// modeled GP/ACP bandwidth curves next to them. If the modeled AXI numbers
// ever drift into implausibility relative to real memory systems (orders of
// magnitude, not percent), this is where it shows (DESIGN.md §3 note).
//
// JSON contract: every host measurement lives under a "wall_*" key so the
// drift checker (tools/check_bench_baseline.py) skips it; the modeled AXI
// section and the deterministic checksum are locked like any other modeled
// output.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/hw/axi.h"
#include "src/hw/clock.h"

namespace {

using namespace vf;
using namespace vf::bench;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Best-of-`reps` wall time for one kernel pass (STREAM methodology: the
// best run reflects the memory system, the rest reflect noise).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t = wall_seconds(fn);
    if (r == 0 || t < best) best = t;
  }
  return best;
}

struct KernelResult {
  const char* name;
  double gib_s = 0.0;     // bytes touched / best wall time
  double wall_s = 0.0;    // best single-pass time
  double bytes = 0.0;     // bytes touched per pass
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = parse_bench_options(argc, argv);
  note_frames_unused(options, "memory kernels have no frame stream");

  print_header("Host memory bandwidth — STREAM kernels + random gather",
               "sanity anchor for the modeled AXI constants (src/hw/axi.h)");

  json::Value jrun = json_run_header("bench_membw", options);

  // --- 1: STREAM kernels at several working-set sizes -------------------------
  // 32 KiB sits in L1, 256 KiB in L2, 2 MiB around LLC, 16 MiB in DRAM on
  // typical hosts — the curve's knees are the point of the sweep.
  std::printf("[1] STREAM kernels, best-of-5, GiB/s by working set\n\n");
  const std::size_t kWorkingSets[] = {32u << 10, 256u << 10, 2u << 20, 16u << 20};
  constexpr int kReps = 5;
  constexpr float kScalar = 3.0f;
  TextTable tbl({"working set", "copy", "scale", "add", "triad", "gather"});
  json::Value jsets = json::Value::array();
  double checksum = 0.0;  // deterministic: locks the kernel arithmetic
  for (const std::size_t bytes : kWorkingSets) {
    // Three arrays of n floats sized so ONE array is `bytes` big, matching
    // how STREAM reports its working set per array.
    const std::size_t n = bytes / sizeof(float);
    std::vector<float> a(n), b(n), c(n);
    Rng rng(0xbead5ull + bytes);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.next_float(0.0f, 1.0f);
      b[i] = rng.next_float(0.0f, 1.0f);
      c[i] = 0.0f;
    }
    // RandomAccess-style index stream: uniform, fixed seed, built once so
    // the gather pass measures the gather, not the index generation.
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<std::uint32_t>(rng.next_u64() % n);
    }

    KernelResult results[] = {
        {"copy", 0.0, 0.0, 2.0 * static_cast<double>(bytes)},
        {"scale", 0.0, 0.0, 2.0 * static_cast<double>(bytes)},
        {"add", 0.0, 0.0, 3.0 * static_cast<double>(bytes)},
        {"triad", 0.0, 0.0, 3.0 * static_cast<double>(bytes)},
        {"gather", 0.0, 0.0,
         2.0 * static_cast<double>(bytes) +
             static_cast<double>(n * sizeof(std::uint32_t))},
    };
    results[0].wall_s = best_of(kReps, [&] {
      std::memcpy(c.data(), a.data(), n * sizeof(float));
    });
    results[1].wall_s = best_of(kReps, [&] {
      for (std::size_t i = 0; i < n; ++i) b[i] = kScalar * c[i];
    });
    results[2].wall_s = best_of(kReps, [&] {
      for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
    });
    results[3].wall_s = best_of(kReps, [&] {
      for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + kScalar * c[i];
    });
    results[4].wall_s = best_of(kReps, [&] {
      for (std::size_t i = 0; i < n; ++i) c[i] = a[idx[i]];
    });

    std::vector<std::string> row;
    if (bytes >= (1u << 20)) {
      row.push_back(std::to_string(bytes >> 20) + " MiB");
    } else {
      row.push_back(std::to_string(bytes >> 10) + " KiB");
    }
    json::Value jset = json::Value::object();
    jset.set("working_set_bytes", static_cast<double>(bytes));
    for (KernelResult& k : results) {
      k.gib_s = k.wall_s > 0.0 ? k.bytes / k.wall_s / (1024.0 * 1024.0 * 1024.0)
                               : 0.0;
      row.push_back(TextTable::num(k.gib_s, 2));
      jset.set(std::string("wall_s_") + k.name, k.wall_s);
      jset.set(std::string("wall_gib_s_") + k.name, k.gib_s);
    }
    tbl.add_row(row);
    jsets.push(std::move(jset));
    // The checksum folds in values every kernel wrote; bitwise-stable
    // because the passes above always run, whatever their wall time.
    checksum += static_cast<double>(a[n / 2]) + b[n / 3] + c[n / 5];
  }
  jrun.set("working_sets", std::move(jsets));
  jrun.set("checksum", checksum);
  std::printf("%s\n", tbl.to_string().c_str());
  std::printf("copy/scale move 2 arrays per element, add/triad 3; gather's\n"
              "random reads defeat the prefetcher, so its DRAM-sized row is\n"
              "the latency-bound floor. checksum %.6f locks the arithmetic.\n\n",
              checksum);

  // --- 2: modeled AXI bandwidth next to the host curve ------------------------
  // The same words-to-cycles models the driver charges (src/hw/axi.h),
  // expressed as MiB/s so they sit in the same units as section 1. These
  // rows are locked by the drift baseline: they change only when someone
  // recalibrates the AXI constants deliberately.
  std::printf("[2] modeled PS<->PL paths (axi.h constants, locked)\n\n");
  TextTable axi({"transfer", "GP port (MiB/s)", "ACP DMA (MiB/s)"});
  json::Value jaxi = json::Value::array();
  for (const int words : {16, 64, 256, 1024, 2048}) {
    const double bytes = static_cast<double>(words) * 4.0;
    const double gp_s =
        hw::ps_clock().cycles(hw::GpPortModel{}.cycles_for_words(words)).sec();
    const double acp_s =
        hw::pl_clock().cycles(hw::AcpDmaModel{}.cycles_for_words(words)).sec();
    const double gp_mib = bytes / gp_s / (1024.0 * 1024.0);
    const double acp_mib = bytes / acp_s / (1024.0 * 1024.0);
    axi.add_row({std::to_string(words) + " words", TextTable::num(gp_mib, 1),
                 TextTable::num(acp_mib, 1)});
    jaxi.push(json::Value::object()
                  .set("words", words)
                  .set("gp_mib_s", gp_mib)
                  .set("acp_mib_s", acp_mib));
  }
  jrun.set("modeled_axi", std::move(jaxi));
  std::printf("%s\n", axi.to_string().c_str());
  std::printf("the GP port tops out near %.0f MiB/s (25 PS cycles/word at 533\n"
              "MHz); the ACP DMA approaches 64-bit beats at the 100 MHz PL\n"
              "clock once bursts amortize setup. Both sit orders of magnitude\n"
              "under the host rows above — as a 2012 embedded part should —\n"
              "which is the plausibility check this bench exists for.\n",
              533e6 * 4.0 / 25.0 / (1024.0 * 1024.0));

  return write_json_report(options, jrun);
}

// Fig. 9(a) — "Performance Comparison of Forward DT-CWT".
//
// Forward transform time for 10 continuously fused frames at each of the
// paper's five frame sizes, on ARM / NEON / FPGA. Reference points from the
// paper at 88x72: FPGA -55.6%, NEON -10% vs ARM; FPGA 36.4% slower than NEON
// at 32x24; crossover between 35x35 and 40x40.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);

  print_header("Fig. 9(a) — forward DT-CWT time vs frame size (" +
                   std::to_string(options.frames) + " frames, seconds)",
               "Fig. 9(a); §VII text: -55.6% FPGA / -10% NEON at 88x72");

  const sched::RunConfig config = bench_run_config(options);
  json::Value run = json_run_header("fig9a_forward", options);
  json::Value sweep = json::Value::array();

  TextTable table({"frame size", "ARM fwd (s)", "NEON fwd (s)", "FPGA fwd (s)",
                   "FPGA vs ARM", "best"});
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto arm = run_probe(EngineChoice::kArm, size, config);
    const auto neon = run_probe(EngineChoice::kNeon, size, config);
    const auto fpga = run_probe(EngineChoice::kFpga, size, config);
    const double vs_arm = 100.0 * (1.0 - fpga.forward.sec() / arm.forward.sec());
    const char* best = fpga.forward < neon.forward ? "FPGA" : "NEON";
    table.add_row({size.label(), TextTable::num(arm.forward.sec(), 3),
                   TextTable::num(neon.forward.sec(), 3),
                   TextTable::num(fpga.forward.sec(), 3),
                   TextTable::num(vs_arm, 1) + "%", best});
    json::Value row = json::Value::object();
    row.set("frame_size", size.label());
    row.set("arm_forward_s", arm.forward.sec());
    row.set("neon_forward_s", neon.forward.sec());
    row.set("fpga_forward_s", fpga.forward.sec());
    sweep.push(std::move(row));
  }
  run.set("sweep", std::move(sweep));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: NEON wins below the break point, FPGA above it\n"
              "(paper: break between 35x35 and 40x40).\n");
  return write_json_report(options, run);
}

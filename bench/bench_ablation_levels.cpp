// Ablation A8 — decomposition depth.
//
// "In this test the decomposition level of the CT-DWT was varied..." (§VII).
// Sweeps the DT-CWT level count at the full 88x72 frame and reports per-
// engine transform time plus the adaptive router's split. Deeper levels add
// little work (each level is a quarter of the previous) but shrink line
// lengths — exactly the regime where the per-line driver overhead makes the
// FPGA lose, so the FPGA's edge narrows with depth while the adaptive
// backend keeps the deep levels on NEON.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  json::Value jrun = json_run_header("bench_ablation_levels", options);

  print_header("Ablation A8 — DT-CWT decomposition level sweep at 88x72",
               "§VII: \"the decomposition level of the CT-DWT was varied\"");

  TextTable table({"levels", "ARM (s)", "NEON (s)", "FPGA (s)", "Adaptive (s)",
                   "FPGA vs NEON", "adaptive lines FPGA/NEON"});
  const sched::RunConfig base = bench_run_config(options);
  json::Value jlevels = json::Value::array();
  for (int levels = 1; levels <= 4; ++levels) {
    sched::RunConfig run = base;
    run.fuse.transform.levels = levels;
    const fusion::FuseConfig& config = run.fuse;

    const auto arm = sched::make_backend(EngineChoice::kArm, run);
    const auto neon = sched::make_backend(EngineChoice::kNeon, run);
    const auto fpga = sched::make_backend(EngineChoice::kFpga, run);
    sched::AdaptiveBackend adaptive(run);  // concrete: router stats below
    const auto ra = probe_backend(*arm, {88, 72}, options.frames, config);
    const auto rn = probe_backend(*neon, {88, 72}, options.frames, config);
    const auto rf = probe_backend(*fpga, {88, 72}, options.frames, config);
    const auto rx = probe_backend(adaptive, {88, 72}, options.frames, config);

    table.add_row({std::to_string(levels), TextTable::num(ra.total.sec(), 3),
                   TextTable::num(rn.total.sec(), 3), TextTable::num(rf.total.sec(), 3),
                   TextTable::num(rx.total.sec(), 3),
                   TextTable::num(100.0 * (1.0 - rf.total.sec() / rn.total.sec()), 1) + "%",
                   std::to_string(adaptive.router().lines_on_fpga()) + "/" +
                       std::to_string(adaptive.router().lines_on_simd())});
    jlevels.push(json::Value::object()
                     .set("levels", levels)
                     .set("arm_s", ra.total.sec())
                     .set("neon_s", rn.total.sec())
                     .set("fpga_s", rf.total.sec())
                     .set("adaptive_s", rx.total.sec())
                     .set("lines_fpga",
                          static_cast<double>(adaptive.router().lines_on_fpga()))
                     .set("lines_neon",
                          static_cast<double>(adaptive.router().lines_on_simd())));
  }
  jrun.set("level_sweep", std::move(jlevels));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("each extra level adds ~25%% of the previous level's samples but a\n"
              "disproportionate number of short lines; the FPGA's advantage over\n"
              "NEON narrows with depth and the adaptive router responds by keeping\n"
              "every line shorter than its threshold on the SIMD engine.\n");
  return write_json_report(options, jrun);
}

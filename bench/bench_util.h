// Shared helpers for the benchmark harness.
//
// Each bench binary regenerates one table or figure of the paper: it runs
// the real pipeline on the modeled ZC702 across the paper's frame-size sweep
// and prints the same rows/series the paper reports (modeled seconds/mJ, not
// host wall-clock — see DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sched/adaptive.h"
#include "src/sched/calibrate.h"

namespace vf::bench {

inline constexpr int kPaperFrameCount = 10;  // "10 input frames were decomposed,
                                             // fused and reconstructed continuously"

enum class EngineChoice { kArm, kNeon, kFpga, kAdaptive };

inline const char* engine_label(EngineChoice e) {
  switch (e) {
    case EngineChoice::kArm:
      return "ARM";
    case EngineChoice::kNeon:
      return "NEON";
    case EngineChoice::kFpga:
      return "FPGA";
    case EngineChoice::kAdaptive:
      return "Adaptive";
  }
  return "?";
}

// Runs `fn` with a freshly constructed backend of the requested kind.
inline void with_backend(EngineChoice choice,
                         const std::function<void(sched::TransformBackend&)>& fn) {
  switch (choice) {
    case EngineChoice::kArm: {
      sched::ArmBackend b;
      fn(b);
      return;
    }
    case EngineChoice::kNeon: {
      sched::NeonBackend b;
      fn(b);
      return;
    }
    case EngineChoice::kFpga: {
      sched::FpgaBackend b;
      fn(b);
      return;
    }
    case EngineChoice::kAdaptive: {
      sched::AdaptiveBackend b;
      fn(b);
      return;
    }
  }
}

// 10-frame probe of one engine at one size (fresh backend per call).
inline sched::ProbeResult run_probe(EngineChoice choice, const sched::FrameSize& size,
                                    int frames = kPaperFrameCount) {
  sched::ProbeResult result;
  with_backend(choice, [&](sched::TransformBackend& backend) {
    result = sched::probe_backend(backend, size, frames);
  });
  return result;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace vf::bench

// Shared helpers for the benchmark harness.
//
// Each bench binary regenerates one table or figure of the paper: it runs
// the real pipeline on the modeled ZC702 across the paper's frame-size sweep
// and prints the same rows/series the paper reports (modeled seconds/mJ, not
// host wall-clock — see DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/sched/adaptive.h"
#include "src/sched/calibrate.h"
#include "src/sched/pipeline.h"
#include "src/simd/dispatch.h"

namespace vf::bench {

inline constexpr int kPaperFrameCount = 10;  // "10 input frames were decomposed,
                                             // fused and reconstructed continuously"

// CLI options shared by every bench binary so `bench_realtime` and
// `bench_pipeline` (and any future bench) parse identically:
//
//   --frames N     frames per probe run (default: the paper's 10)
//   --pipeline     enable the frame-level event-queue pipeline where the
//                  bench supports it (ignored otherwise)
//   --threads N    host pool width for the numeric work (default: all
//                  hardware threads; modeled time is bit-identical at any N)
//   --kernels K    kernel flavour: scalar | simd (default) | autovec
//   --json PATH    also write the bench's results as JSON
//   --cross-frame  cross-frame line streaming where the bench supports it
//                  (run_pipelined/run_fleet batched-FPGA paths; ignored
//                  otherwise — modeled outputs stay legacy without it)
//   --sg-chain N   scatter-gather descriptor chain length (default 1 = flat
//                  per-batch driver entries, the legacy schedule)
//   --layout L     host memory layout: fused (default) | tiled | naive
//                  (dwt::HostLayout; modeled time is bit-identical across
//                  layouts, only host wall-clock changes)
struct BenchOptions {
  int frames = kPaperFrameCount;
  bool pipeline = false;
  int threads = 0;  // 0 = hardware_concurrency
  std::string kernels;
  std::string json_path;
  bool cross_frame = false;
  int sg_chain_len = 1;
  std::string layout;
};

inline BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      options.frames = std::atoi(argv[++i]);
      if (options.frames < 1) {
        std::fprintf(stderr, "--frames wants a positive count, got '%s'\n", argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      options.pipeline = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
      if (options.threads < 1) {
        std::fprintf(stderr, "--threads wants a positive count, got '%s'\n", argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--kernels") == 0 && i + 1 < argc) {
      options.kernels = argv[++i];
      if (!simd::set_active_kernels(options.kernels.c_str())) {
        std::fprintf(stderr,
                     "unknown kernel flavour '%s' (supported: scalar, simd, "
                     "autovec)\n",
                     options.kernels.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cross-frame") == 0) {
      options.cross_frame = true;
    } else if (std::strcmp(argv[i], "--sg-chain") == 0 && i + 1 < argc) {
      options.sg_chain_len = std::atoi(argv[++i]);
      if (options.sg_chain_len < 1) {
        std::fprintf(stderr, "--sg-chain wants a positive length, got '%s'\n",
                     argv[i]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--layout") == 0 && i + 1 < argc) {
      options.layout = argv[++i];
      if (options.layout != "fused" && options.layout != "tiled" &&
          options.layout != "naive") {
        std::fprintf(stderr,
                     "unknown layout '%s' (supported: fused, tiled, naive)\n",
                     options.layout.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --frames N, --pipeline, "
                   "--threads N, --kernels scalar|simd|autovec, --json PATH, "
                   "--cross-frame, --sg-chain N, --layout fused|tiled|naive)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  // Benches default to the full machine; the library default stays serial so
  // embedders and unit tests opt in explicitly.
  host::set_default_threads(options.threads > 0 ? options.threads
                                                : host::hardware_threads());
  return options;
}

// Shared --json envelope: schema header + the run's harness configuration.
inline json::Value json_run_header(const char* bench, const BenchOptions& options) {
  json::Value run = json::Value::object();
  run.set("schema", "vf-bench-v1");
  run.set("bench", bench);
  json::Value host = json::Value::object();
  host.set("threads", host::default_threads());
  host.set("kernels", simd::active_kernels().name);
  host.set("layout", dwt::host_layout_name(dwt::host_layout()));
  host.set("simd_isa", simd::simd_isa_name());
  run.set("host", std::move(host));
  run.set("frames", options.frames);
  return run;
}

// For benches with no frame-stream probe (single-frame quality ablations,
// the resource table): makes --frames loudly inert instead of silently
// ignored.
inline void note_frames_unused(const BenchOptions& options, const char* reason) {
  if (options.frames != kPaperFrameCount) {
    std::fprintf(stderr, "note: --frames has no effect here (%s)\n", reason);
  }
}

// Shared --json writer: no-op without --json. Returns the bench's exit-code
// contribution (0 on success, 1 on a write failure) so main can `return` it.
inline int write_json_report(const BenchOptions& options, const json::Value& run) {
  if (options.json_path.empty()) return 0;
  if (!json::write_file(options.json_path, run)) {
    std::fprintf(stderr, "failed to write %s\n", options.json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", options.json_path.c_str());
  return 0;
}

// The bench spelling of the backend kind is the scheduler's own enum since
// the PR 7 API redesign; every bench builds backends via make_backend.
using EngineChoice = sched::BackendKind;

inline const char* engine_label(EngineChoice e) { return sched::backend_name(e); }

// The harness flags (--frames/--threads/--kernels) folded into the one
// RunConfig every backend is built from, so each sweep explicitly carries
// the host pool it numerics on.
inline sched::RunConfig bench_run_config(const BenchOptions& options) {
  sched::RunConfig config;
  config.frames = options.frames;
  config.host.threads = host::default_threads();
  config.kernels = options.kernels;
  config.host_layout = options.layout;
  config.cross_frame = options.cross_frame;
  config.batching.sg_chain_len = options.sg_chain_len;
  return config;
}

// Runs `fn` with a freshly factory-built backend of the requested kind.
inline void with_backend(EngineChoice choice, const sched::RunConfig& config,
                         const std::function<void(sched::TransformBackend&)>& fn) {
  const std::unique_ptr<sched::TransformBackend> backend =
      sched::make_backend(choice, config);
  fn(*backend);
}

// Probe of one engine at one size (fresh backend per call); frame count and
// fusion settings come from the config.
inline sched::ProbeResult run_probe(EngineChoice choice, const sched::FrameSize& size,
                                    const sched::RunConfig& config) {
  const std::unique_ptr<sched::TransformBackend> backend =
      sched::make_backend(choice, config);
  return sched::probe_backend(*backend, size, config.frames, config.fuse);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace vf::bench

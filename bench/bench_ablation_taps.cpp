// Ablation A4 — engine coefficient-register depth (12 vs 14 slots).
//
// The paper's HLS code holds 12 coefficients per register; the standard
// Kingsbury q-shift filters need 14. This bench quantifies the trade:
// fabric cost of the deeper engine vs which wavelet sets each depth can run,
// and the impact of the level-1 bank choice on fusion quality.
#include "bench/bench_util.h"
#include "src/fusion/fuse.h"
#include "src/hw/resources.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  note_frames_unused(options, "single-frame engine-fit ablation");
  json::Value jrun = json_run_header("bench_ablation_taps", options);

  print_header("Ablation A4 — engine register depth vs resources and filters",
               "§V Fig. 4 (12-deep shift register) + Table I");

  const hw::DevicePart part;
  TextTable res({"slots", "registers", "LUTs", "slices", "slice util",
                 "fits LeGall 5/3", "fits CDF 9/7", "fits q-shift 14"});
  json::Value jdepths = json::Value::array();
  for (int slots : {8, 10, 12, 14, 16}) {
    hw::WaveletEngineConfig config = hw::paper_engine_config();
    config.slots = slots;
    const hw::ResourceUsage u = estimate_engine_resources(config);
    auto fits = [&](dwt::Wavelet w) {
      return required_slots(dwt::make_filter_bank(w)) <= slots ? "yes" : "no";
    };
    res.add_row({std::to_string(slots), std::to_string(u.registers),
                 std::to_string(u.luts), std::to_string(u.slices),
                 std::to_string(u.pct_slices(part)) + "%",
                 fits(dwt::Wavelet::kLeGall53), fits(dwt::Wavelet::kCdf97),
                 fits(dwt::Wavelet::kQshift14A)});
    jdepths.push(json::Value::object()
                     .set("slots", slots)
                     .set("registers", u.registers)
                     .set("luts", u.luts)
                     .set("slices", u.slices)
                     .set("fits_legall53",
                          std::string(fits(dwt::Wavelet::kLeGall53)) == "yes")
                     .set("fits_cdf97",
                          std::string(fits(dwt::Wavelet::kCdf97)) == "yes")
                     .set("fits_qshift14",
                          std::string(fits(dwt::Wavelet::kQshift14A)) == "yes"));
  }
  jrun.set("register_depths", std::move(jdepths));
  std::printf("%s\n", res.to_string().c_str());

  // Quality impact of the level-1 bank choice (both fit 12 slots, but the
  // q-shift levels >= 2 need 14).
  std::printf("fusion quality by level-1 wavelet (88x72 scene, max-magnitude rule):\n");
  const auto pairs = sched::make_sweep_frames({88, 72}, 1);
  TextTable quality({"level-1 bank", "entropy", "MI", "Qabf"});
  json::Value jquality = json::Value::array();
  for (dwt::Wavelet w : {dwt::Wavelet::kLeGall53, dwt::Wavelet::kCdf97}) {
    fusion::FuseConfig config;
    config.transform.level1 = w;
    dwt::ScalarLineFilter backend;
    const fusion::FusionOutcome outcome =
        fuse_frames_with_quality(pairs[0].visible, pairs[0].thermal, config, backend);
    quality.add_row({wavelet_name(w), TextTable::num(outcome.quality.entropy_fused, 3),
                     TextTable::num(outcome.quality.mi, 3),
                     TextTable::num(outcome.quality.qabf, 3)});
    jquality.push(json::Value::object()
                      .set("level1_bank", wavelet_name(w))
                      .set("entropy", outcome.quality.entropy_fused)
                      .set("mi", outcome.quality.mi)
                      .set("qabf", outcome.quality.qabf));
  }
  jrun.set("level1_quality", std::move(jquality));
  std::printf("%s\n", quality.to_string().c_str());
  std::printf("a 14-slot engine costs ~%.0f%% more slices than the paper's 12-slot\n"
              "configuration but is required for the shift-invariant q-shift levels;\n"
              "the paper's 12-slot engine implies shorter (non-q-shift) filters.\n",
              100.0 * (static_cast<double>(estimate_engine_resources(
                           hw::WaveletEngineConfig{}).slices) /
                           estimate_engine_resources(hw::paper_engine_config()).slices -
                       1.0));
  return write_json_report(options, jrun);
}

// Real-time capability analysis.
//
// The paper's related work measures fusion systems against video rates
// (Sims & Irvine: "30 frame/s, real-time fuse"; Song et al.: "reasonable
// frame rate of 25 frame/s"). This bench reports the frame rate each
// configuration sustains at each frame size on the modeled ZC702, and which
// combinations clear the 25 fps / 30 fps bars.
#include "bench/bench_util.h"

int main() {
  using namespace vf;
  using namespace vf::bench;

  print_header("Real-time capability — sustained fusion frame rate (fps)",
               "related work's 25/30 fps bars (§II references [6][8])");

  TextTable table({"frame size", "ARM fps", "NEON fps", "FPGA fps", "Adaptive fps",
                   "25 fps capable", "30 fps capable"});
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    double fps[4] = {};
    const EngineChoice engines[] = {EngineChoice::kArm, EngineChoice::kNeon,
                                    EngineChoice::kFpga, EngineChoice::kAdaptive};
    for (int i = 0; i < 4; ++i) {
      const auto r = run_probe(engines[i], size);
      fps[i] = kPaperFrameCount / r.total.sec();
    }
    auto capable = [&](double bar) {
      std::string out;
      for (int i = 0; i < 4; ++i) {
        if (fps[i] >= bar) {
          if (!out.empty()) out += ",";
          out += engine_label(engines[i]);
        }
      }
      return out.empty() ? std::string("none") : out;
    };
    table.add_row({size.label(), TextTable::num(fps[0], 1), TextTable::num(fps[1], 1),
                   TextTable::num(fps[2], 1), TextTable::num(fps[3], 1), capable(25.0),
                   capable(30.0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the paper's own absolute times imply ~5 fps on the ARM at the full\n"
              "88x72 frame; acceleration nearly doubles that (9.6 fps) but true video\n"
              "rate at 88x72 would need roughly another 3x — visible here as the\n"
              "25/30 fps bars being cleared only at the small extraction sizes.\n");
  return 0;
}

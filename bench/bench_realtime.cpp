// Real-time capability analysis.
//
// The paper's related work measures fusion systems against video rates
// (Sims & Irvine: "30 frame/s, real-time fuse"; Song et al.: "reasonable
// frame rate of 25 frame/s"). This bench reports the frame rate each
// configuration sustains at each frame size on the modeled ZC702, and which
// combinations clear the 25 fps / 30 fps bars.
//
// Flags (shared with every bench): --frames N sets the probe depth;
// --pipeline reports the event-queue pipelined schedule (batched double
// buffering + frame overlap, see bench_pipeline) instead of the serial
// additive ledger.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);

  print_header(std::string("Real-time capability — sustained fusion frame rate") +
                   (options.pipeline ? " (pipelined schedule)" : " (fps)"),
               "related work's 25/30 fps bars (§II references [6][8])");

  const sched::RunConfig config = bench_run_config(options);
  json::Value run = json_run_header("realtime", options);
  run.set("pipeline", options.pipeline);
  json::Value sweep = json::Value::array();

  const EngineChoice engines[] = {EngineChoice::kArm, EngineChoice::kNeon,
                                  options.pipeline ? EngineChoice::kFpgaBatched
                                                   : EngineChoice::kFpga,
                                  EngineChoice::kAdaptive};
  TextTable table({"frame size", "ARM fps", "NEON fps",
                   options.pipeline ? "FPGA+batch fps" : "FPGA fps", "Adaptive fps",
                   "25 fps capable", "30 fps capable"});
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    double fps[4] = {};
    for (int i = 0; i < 4; ++i) {
      if (options.pipeline) {
        with_backend(engines[i], config, [&](sched::TransformBackend& backend) {
          fps[i] = sched::probe_pipelined(backend, size, config.frames)
                       .sustained_fps;
        });
      } else {
        const auto r = run_probe(engines[i], size, config);
        fps[i] = config.frames / r.total.sec();
      }
    }
    auto capable = [&](double bar) {
      std::string out;
      for (int i = 0; i < 4; ++i) {
        if (fps[i] >= bar) {
          if (!out.empty()) out += ",";
          out += engine_label(engines[i]);
        }
      }
      return out.empty() ? std::string("none") : out;
    };
    table.add_row({size.label(), TextTable::num(fps[0], 1), TextTable::num(fps[1], 1),
                   TextTable::num(fps[2], 1), TextTable::num(fps[3], 1), capable(25.0),
                   capable(30.0)});
    json::Value row = json::Value::object();
    row.set("frame_size", size.label());
    for (int i = 0; i < 4; ++i) {
      row.set(std::string(engine_label(engines[i])) + "_fps", fps[i]);
    }
    sweep.push(std::move(row));
  }
  run.set("sweep", std::move(sweep));
  std::printf("%s\n", table.to_string().c_str());
  if (options.pipeline) {
    std::printf("with batched line submission and the 4-stage frame pipeline the\n"
                "FPGA clears both video-rate bars at every size including 88x72 —\n"
                "the \"roughly another 3x\" the serial schedule was missing.\n");
  } else {
    std::printf("the paper's own absolute times imply ~5 fps on the ARM at the full\n"
                "88x72 frame; acceleration nearly doubles that (9.6 fps) but true video\n"
                "rate at 88x72 would need roughly another 3x — visible here as the\n"
                "25/30 fps bars being cleared only at the small extraction sizes.\n");
  }
  return write_json_report(options, run);
}

// Ablation A7 — float vs fixed-point engine datapath.
//
// The paper's HLS engine computes in float32, which costs 59% of the
// xc7z020's slices (Table I). This ablation quantifies the standard EDA
// alternative: a Qm.n fixed-point datapath with DSP48 multipliers. For each
// word width it reports the fused-output fidelity against the float path
// and the estimated fabric cost of the engine.
#include "bench/bench_util.h"
#include "src/hw/fixed_point.h"
#include "src/image/metrics.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  note_frames_unused(options, "single-frame quality ablation");
  json::Value jrun = json_run_header("bench_ablation_fixedpoint", options);

  print_header("Ablation A7 — fixed-point engine datapath vs the paper's float32",
               "Table I (float engine cost) + Fig. 4 data_t choice");

  const auto pairs = sched::make_sweep_frames({88, 72}, 1);
  dwt::ScalarLineFilter float_filter;
  const fusion::FuseConfig config;
  const image::ImageF reference =
      fuse_frames(pairs[0].visible, pairs[0].thermal, config, float_filter);

  const hw::WaveletEngineConfig engine_config = hw::paper_engine_config();
  const hw::DevicePart part;
  const hw::ResourceUsage float_usage = estimate_engine_resources(engine_config);

  TextTable table({"datapath", "fused PSNR vs float (dB)", "Qabf", "slices",
                   "slice util", "DSP48"});
  const double float_qabf =
      image::petrovic_qabf(pairs[0].visible, pairs[0].thermal, reference);
  table.add_row({"float32 (paper)", "inf", TextTable::num(float_qabf, 3),
                 std::to_string(float_usage.slices),
                 std::to_string(float_usage.pct_slices(part)) + "%", "0"});
  jrun.set("reference", json::Value::object()
                            .set("datapath", "float32")
                            .set("qabf", float_qabf)
                            .set("slices", float_usage.slices)
                            .set("dsp48", 0));
  json::Value jfmt = json::Value::array();

  const hw::FixedPointFormat formats[] = {
      {32, 24}, {24, 18}, {18, 15}, {16, 14}, {12, 10},
  };
  for (const hw::FixedPointFormat& fmt : formats) {
    hw::FixedPointLineFilter filter(fmt);
    const image::ImageF fused =
        fuse_frames(pairs[0].visible, pairs[0].thermal, config, filter);
    const double fidelity = image::psnr(reference, fused);
    const double qabf = image::petrovic_qabf(pairs[0].visible, pairs[0].thermal, fused);
    const hw::ResourceUsage u = estimate_engine_resources_fixed(engine_config, fmt);
    table.add_row({fmt.name() + " (" + std::to_string(fmt.total_bits) + "b)",
                   TextTable::num(fidelity, 1), TextTable::num(qabf, 3),
                   std::to_string(u.slices),
                   std::to_string(u.pct_slices(part)) + "%", std::to_string(u.dsp48)});
    jfmt.push(json::Value::object()
                  .set("datapath", fmt.name())
                  .set("total_bits", fmt.total_bits)
                  .set("psnr_vs_float_db", fidelity)
                  .set("qabf", qabf)
                  .set("slices", u.slices)
                  .set("dsp48", u.dsp48));
  }
  jrun.set("datapaths", std::move(jfmt));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("an 18-bit datapath is visually indistinguishable from float (>45 dB\n"
              "against the float output) at roughly a tenth of the slices, using the\n"
              "DSP48 column the float design leaves idle — the classic argument the\n"
              "paper's HLS-from-C float flow trades away for productivity.\n");
  return write_json_report(options, jrun);
}

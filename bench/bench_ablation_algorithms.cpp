// Ablation A6 — fusion algorithm bake-off: DT-CWT vs plain DWT vs Laplacian
// pyramid.
//
// The paper selects the DT-CWT because "wavelet transform achieves better
// signal to noise ratios and improved perception with no blocking artefacts"
// vs pyramid schemes, and because the DT-CWT "has been shown to produce
// significant fusion quality improvement" over the DWT. This bench makes
// both claims measurable on the synthetic surveillance scene: fusion quality
// metrics, stability under a one-pixel sensor shift, and transform work.
#include <cmath>

#include "bench/bench_util.h"
#include "src/fusion/dwt_fusion.h"
#include "src/fusion/laplacian.h"
#include "src/image/metrics.h"

namespace {

using vf::image::ImageF;

template <typename FuseFn>
double shift_instability(const ImageF& a, const ImageF& b, FuseFn fuse_fn) {
  const ImageF f0 = fuse_fn(a, b);
  const int n = a.cols();
  ImageF a1(a.rows(), n);
  ImageF b1(a.rows(), n);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < n; ++c) {
      a1(r, c) = a(r, (c + 1) % n);
      b1(r, c) = b(r, (c + 1) % n);
    }
  }
  const ImageF f1 = fuse_fn(a1, b1);
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < n; ++c) {
      const double d = static_cast<double>(f1(r, (c + n - 1) % n)) - f0(r, c);
      acc += d * d;
    }
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  note_frames_unused(options, "single-frame quality comparison");
  json::Value jrun = json_run_header("bench_ablation_algorithms", options);

  print_header("Ablation A6 — DT-CWT vs DWT vs Laplacian pyramid fusion",
               "§I/§III: algorithm choice rationale (references [2][3][4][12])");

  const auto pairs = sched::make_sweep_frames({88, 72}, 1);
  const ImageF& vis = pairs[0].visible;
  const ImageF& ir = pairs[0].thermal;

  dwt::ScalarLineFilter backend;
  auto fuse_dtcwt = [&](const ImageF& a, const ImageF& b) {
    return fuse_frames(a, b, fusion::FuseConfig{}, backend);
  };
  auto fuse_dwt = [&](const ImageF& a, const ImageF& b) {
    return fuse_frames_dwt(a, b, fusion::DwtFuseConfig{}, backend);
  };
  auto fuse_lap = [&](const ImageF& a, const ImageF& b) {
    return fusion::fuse_frames_laplacian(a, b, fusion::LaplacianFuseConfig{});
  };

  TextTable table({"algorithm", "entropy", "MI", "Qabf", "shift instability (RMS)",
                   "transform MACs/frame"});

  struct Algo {
    const char* name;
    std::function<ImageF(const ImageF&, const ImageF&)> fn;
  };
  const Algo algos[] = {
      {"DT-CWT (paper)", fuse_dtcwt},
      {"plain DWT", fuse_dwt},
      {"Laplacian pyramid", fuse_lap},
  };

  json::Value jalgos = json::Value::array();
  for (const Algo& algo : algos) {
    backend.reset_stats();
    const ImageF fused = algo.fn(vis, ir);
    const auto q = image::evaluate_fusion(vis, ir, fused);
    const auto macs = backend.stats().total_macs();
    const double instab = shift_instability(vis, ir, algo.fn);
    table.add_row({algo.name, TextTable::num(q.entropy_fused, 3),
                   TextTable::num(q.mi, 3), TextTable::num(q.qabf, 3),
                   TextTable::num(instab, 2),
                   macs > 0 ? std::to_string(macs / 3) : std::string("n/a (5-tap)")});
    jalgos.push(json::Value::object()
                    .set("algorithm", algo.name)
                    .set("entropy", q.entropy_fused)
                    .set("mi", q.mi)
                    .set("qabf", q.qabf)
                    .set("shift_instability_rms", instab)
                    .set("transform_macs_per_frame",
                         static_cast<double>(macs > 0 ? macs / 3 : 0)));
  }
  jrun.set("algorithms", std::move(jalgos));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: the DT-CWT matches or beats both baselines on gradient\n"
              "transfer (Qabf) and is several times more stable under sensor\n"
              "shift than the critically sampled DWT — the paper's §III argument.\n"
              "Its 4x redundancy costs ~4x the DWT's transform work, which is what\n"
              "the paper accelerates.\n");
  return write_json_report(options, jrun);
}

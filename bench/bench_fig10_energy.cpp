// Fig. 10 — "Comparison of Total Energy Used".
//
// Energy (mJ) to decompose, fuse and reconstruct 10 consecutive frames per
// frame size and configuration. Paper reference at 88x72: ARM+FPGA saves
// 46.3%, ARM+NEON 8%; ARM+FPGA draws +19.2 mW (+3.6%); the energy break
// point sits between 40x40 and 64x48.
#include <cmath>

#include "bench/bench_util.h"
#include "src/power/recorder.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);

  print_header("Fig. 10 — total energy vs frame size (" +
               std::to_string(options.frames) + " frames, mJ)",
               "Fig. 10; §VII text: -46.3% ARM+FPGA / -8% ARM+NEON at 88x72, "
               "break point between 40x40 and 64x48");

  const power::PowerModel pm;
  std::printf("modeled power: ARM/NEON %.1f mW, ARM+FPGA %.1f mW (+%.1f mW net)\n\n",
              pm.system_power_mw(power::ComputeMode::kArmOnly),
              pm.system_power_mw(power::ComputeMode::kArmFpga),
              pm.config().pl_engine_net_mw);

  const sched::RunConfig config = bench_run_config(options);
  json::Value run = json_run_header("fig10_energy", options);
  json::Value sweep = json::Value::array();

  TextTable table({"frame size", "ARM Only (mJ)", "ARM+NEON (mJ)", "ARM+FPGA (mJ)",
                   "Adaptive (mJ)", "best static"});
  // The sweep ends at 88x72; keep those probes for the summary below instead
  // of re-running them (probes are deterministic).
  sched::ProbeResult arm88, neon88, fpga88;
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto arm = run_probe(EngineChoice::kArm, size, config);
    const auto neon = run_probe(EngineChoice::kNeon, size, config);
    const auto fpga = run_probe(EngineChoice::kFpga, size, config);
    const auto adaptive = run_probe(EngineChoice::kAdaptive, size, config);
    const char* best = fpga.energy_mj < neon.energy_mj ? "ARM+FPGA" : "ARM+NEON";
    table.add_row({size.label(), TextTable::num(arm.energy_mj, 1),
                   TextTable::num(neon.energy_mj, 1), TextTable::num(fpga.energy_mj, 1),
                   TextTable::num(adaptive.energy_mj, 1), best});
    json::Value row = json::Value::object();
    row.set("frame_size", size.label());
    row.set("arm_energy_mj", arm.energy_mj);
    row.set("neon_energy_mj", neon.energy_mj);
    row.set("fpga_energy_mj", fpga.energy_mj);
    row.set("adaptive_energy_mj", adaptive.energy_mj);
    sweep.push(std::move(row));
    if (size.width == 88) {
      arm88 = arm;
      neon88 = neon;
      fpga88 = fpga;
    }
  }
  run.set("sweep", std::move(sweep));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("at 88x72: ARM+FPGA saves %.1f%% (paper 46.3%%), ARM+NEON saves %.1f%%\n"
              "(paper 8%%; see EXPERIMENTS.md on the paper's NEON deltas).\n",
              100.0 * (1.0 - fpga88.energy_mj / arm88.energy_mj),
              100.0 * (1.0 - neon88.energy_mj / arm88.energy_mj));
  std::printf("shape check: ARM+FPGA is the more energy-efficient engine only above\n"
              "the 40x40 -> 64x48 break point, as in the paper.\n\n");

  // Methodology check: the paper integrates energy from a sampled power
  // trace ("power values, measured by power-recording software running
  // simultaneously"). Replay the 88x72 ARM+FPGA run through the sampled
  // recorder and compare against the exact integral.
  power::PowerRecorder recorder(pm, SimDuration::milliseconds(1));
  recorder.run_segment(/*pl_engine_active=*/true, SimDuration::seconds(fpga88.total.sec()));
  std::printf("power-recorder methodology at 88x72 ARM+FPGA: sampled %.1f mJ vs exact\n"
              "%.1f mJ (%.3f%% sampling error at a 1 ms period) — the paper's sampled\n"
              "measurement approach is sound at these run lengths.\n",
              recorder.sampled_energy_mj(), recorder.exact_energy_mj(),
              100.0 * std::abs(recorder.sampled_energy_mj() - recorder.exact_energy_mj()) /
                  recorder.exact_energy_mj());
  json::Value methodology = json::Value::object();
  methodology.set("sampled_energy_mj", recorder.sampled_energy_mj());
  methodology.set("exact_energy_mj", recorder.exact_energy_mj());
  run.set("recorder_methodology", std::move(methodology));
  return write_json_report(options, run);
}

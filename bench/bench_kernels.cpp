// Ablation A5 — host wall-clock microbenchmarks of the compute kernels
// (google-benchmark). Everything else in bench/ reports *modeled* ZC702
// time; this binary shows the library's scalar and 4-lane SIMD kernels are
// real code with a real vectorization speedup on the build host.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/simd/kernels.h"

namespace {

std::vector<float> randv(int n, std::uint64_t seed) {
  vf::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.next_float(-1.0f, 1.0f);
  return v;
}

void BM_DualCorrDecimate2_Scalar(benchmark::State& state) {
  const int out_len = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * out_len + taps, 1);
  const auto lp = randv(taps, 2);
  const auto hp = randv(taps, 3);
  std::vector<float> lo(static_cast<std::size_t>(out_len));
  std::vector<float> hi(static_cast<std::size_t>(out_len));
  for (auto _ : state) {
    vf::simd::dual_corr_decimate2_scalar(x.data(), out_len, lp.data(), hp.data(), taps,
                                         lo.data(), hi.data());
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(state.iterations() * out_len);
}
BENCHMARK(BM_DualCorrDecimate2_Scalar)->Arg(44)->Arg(1024);

void BM_DualCorrDecimate2_Simd(benchmark::State& state) {
  const int out_len = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * out_len + taps, 1);
  const auto lp = randv(taps, 2);
  const auto hp = randv(taps, 3);
  std::vector<float> lo(static_cast<std::size_t>(out_len));
  std::vector<float> hi(static_cast<std::size_t>(out_len));
  for (auto _ : state) {
    vf::simd::dual_corr_decimate2_simd(x.data(), out_len, lp.data(), hp.data(), taps,
                                       lo.data(), hi.data());
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(state.iterations() * out_len);
}
BENCHMARK(BM_DualCorrDecimate2_Simd)->Arg(44)->Arg(1024);

void BM_DualCorrDecimate2_Autovec(benchmark::State& state) {
  const int out_len = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * out_len + taps, 1);
  const auto lp = randv(taps, 2);
  const auto hp = randv(taps, 3);
  std::vector<float> lo(static_cast<std::size_t>(out_len));
  std::vector<float> hi(static_cast<std::size_t>(out_len));
  for (auto _ : state) {
    vf::simd::dual_corr_decimate2_autovec(x.data(), out_len, lp.data(), hp.data(), taps,
                                          lo.data(), hi.data());
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(state.iterations() * out_len);
}
BENCHMARK(BM_DualCorrDecimate2_Autovec)->Arg(44)->Arg(1024);

void BM_SynthesisInterleaved_Scalar(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * pairs + taps, 4);
  const auto ca = randv(taps, 5);
  const auto cb = randv(taps, 6);
  std::vector<float> out(static_cast<std::size_t>(2 * pairs));
  for (auto _ : state) {
    vf::simd::dual_corr_decimate2_ileave_scalar(x.data(), pairs, ca.data(), cb.data(),
                                                taps, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SynthesisInterleaved_Scalar)->Arg(44)->Arg(1024);

void BM_SynthesisInterleaved_Simd(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * pairs + taps, 4);
  const auto ca = randv(taps, 5);
  const auto cb = randv(taps, 6);
  std::vector<float> out(static_cast<std::size_t>(2 * pairs));
  for (auto _ : state) {
    vf::simd::dual_corr_decimate2_ileave_simd(x.data(), pairs, ca.data(), cb.data(),
                                              taps, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SynthesisInterleaved_Simd)->Arg(44)->Arg(1024);

void BM_ComplexMagnitude_Scalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto re = randv(n, 7);
  const auto im = randv(n, 8);
  std::vector<float> mag(static_cast<std::size_t>(n));
  for (auto _ : state) {
    vf::simd::complex_magnitude_scalar(re.data(), im.data(), n, mag.data());
    benchmark::DoNotOptimize(mag.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ComplexMagnitude_Scalar)->Arg(1584);

void BM_ComplexMagnitude_Simd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto re = randv(n, 7);
  const auto im = randv(n, 8);
  std::vector<float> mag(static_cast<std::size_t>(n));
  for (auto _ : state) {
    vf::simd::complex_magnitude_simd(re.data(), im.data(), n, mag.data());
    benchmark::DoNotOptimize(mag.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ComplexMagnitude_Simd)->Arg(1584);

void BM_SelectByMagnitude_Simd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a_re = randv(n, 9);
  const auto a_im = randv(n, 10);
  const auto b_re = randv(n, 11);
  const auto b_im = randv(n, 12);
  std::vector<float> mag_a(static_cast<std::size_t>(n));
  std::vector<float> mag_b(static_cast<std::size_t>(n));
  vf::simd::complex_magnitude_scalar(a_re.data(), a_im.data(), n, mag_a.data());
  vf::simd::complex_magnitude_scalar(b_re.data(), b_im.data(), n, mag_b.data());
  std::vector<float> out_re(static_cast<std::size_t>(n));
  std::vector<float> out_im(static_cast<std::size_t>(n));
  for (auto _ : state) {
    vf::simd::select_by_magnitude_simd(a_re.data(), a_im.data(), b_re.data(),
                                       b_im.data(), mag_a.data(), mag_b.data(), n,
                                       out_re.data(), out_im.data());
    benchmark::DoNotOptimize(out_re.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelectByMagnitude_Simd)->Arg(1584);

}  // namespace

BENCHMARK_MAIN();

// Ablation A5 — host wall-clock microbenchmarks of the compute kernels
// (google-benchmark). Everything else in bench/ reports *modeled* ZC702
// time; this binary shows the kernel library is real code with a real
// vectorization speedup on the build host, across all five kernel families
// (analyze, synthesize, magnitude, select, average) and all three flavours
// (scalar, simd intrinsics, autovec).
//
// Extra flag (stripped before google-benchmark sees the command line):
//   --json PATH   write the collected per-benchmark timings as JSON
//                 (vf-bench-v1 schema, like bench_pipeline --json)
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/simd/dispatch.h"

namespace {

std::vector<float> randv(int n, std::uint64_t seed) {
  vf::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.next_float(-1.0f, 1.0f);
  return v;
}

// One bench per kernel family, parameterized over the dispatch set so every
// flavour of every family is measured with identical inputs. q-shift width
// (14 taps) everywhere: it is the widest bank and the one that dominates
// DT-CWT runtime. Line lengths: 44 = an 88x72 level-1 line, 1024 = a long
// line to expose the asymptotic throughput; 1584 = the 88x72 level-1 subband.

void BM_Analyze(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int out_len = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * out_len + taps, 1);
  const auto lp = randv(taps, 2);
  const auto hp = randv(taps, 3);
  std::vector<float> lo(static_cast<std::size_t>(out_len));
  std::vector<float> hi(static_cast<std::size_t>(out_len));
  for (auto _ : state) {
    k.analyze(x.data(), out_len, lp.data(), hp.data(), taps, lo.data(), hi.data());
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(state.iterations() * out_len);
}

void BM_Synthesize(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int pairs = static_cast<int>(state.range(0));
  const int taps = 14;
  const auto x = randv(2 * pairs + taps, 4);
  const auto ca = randv(taps, 5);
  const auto cb = randv(taps, 6);
  std::vector<float> out(static_cast<std::size_t>(2 * pairs));
  for (auto _ : state) {
    k.synthesize(x.data(), pairs, ca.data(), cb.data(), taps, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}

void BM_Magnitude(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int n = static_cast<int>(state.range(0));
  const auto re = randv(n, 7);
  const auto im = randv(n, 8);
  std::vector<float> mag(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k.magnitude(re.data(), im.data(), n, mag.data());
    benchmark::DoNotOptimize(mag.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Select(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int n = static_cast<int>(state.range(0));
  const auto a_re = randv(n, 9);
  const auto a_im = randv(n, 10);
  const auto b_re = randv(n, 11);
  const auto b_im = randv(n, 12);
  std::vector<float> mag_a(static_cast<std::size_t>(n));
  std::vector<float> mag_b(static_cast<std::size_t>(n));
  vf::simd::complex_magnitude_scalar(a_re.data(), a_im.data(), n, mag_a.data());
  vf::simd::complex_magnitude_scalar(b_re.data(), b_im.data(), n, mag_b.data());
  std::vector<float> out_re(static_cast<std::size_t>(n));
  std::vector<float> out_im(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k.select(a_re.data(), a_im.data(), b_re.data(), b_im.data(), mag_a.data(),
             mag_b.data(), n, out_re.data(), out_im.data());
    benchmark::DoNotOptimize(out_re.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Multi-line variants: a kMaxLinesPerCall block of independent lines per
// dispatch, the shape the tiled DT-CWT host path feeds them. Contrast with
// the single-line rows to see the per-call amortization.

void BM_AnalyzeMl(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int out_len = static_cast<int>(state.range(0));
  const int nlines = vf::simd::kMaxLinesPerCall;
  const int taps = 14;
  const int x_stride = 2 * out_len + taps;
  const auto x = randv(nlines * x_stride, 15);
  const auto lp = randv(taps, 2);
  const auto hp = randv(taps, 3);
  std::vector<float> lo(static_cast<std::size_t>(nlines) * out_len);
  std::vector<float> hi(static_cast<std::size_t>(nlines) * out_len);
  for (auto _ : state) {
    k.analyze_ml(x.data(), x_stride, nlines, out_len, lp.data(), hp.data(), taps,
                 lo.data(), hi.data(), out_len);
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(state.iterations() * nlines * out_len);
}

void BM_SynthesizeMl(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int pairs = static_cast<int>(state.range(0));
  const int nlines = vf::simd::kMaxLinesPerCall;
  const int taps = 14;
  const int x_stride = 2 * pairs + taps;
  const auto x = randv(nlines * x_stride, 16);
  const auto ca = randv(taps, 5);
  const auto cb = randv(taps, 6);
  std::vector<float> out(static_cast<std::size_t>(nlines) * 2 * pairs);
  for (auto _ : state) {
    k.synthesize_ml(x.data(), x_stride, nlines, pairs, ca.data(), cb.data(), taps,
                    out.data(), 2 * pairs);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * nlines * pairs);
}

void BM_MagnitudeMl(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int len = static_cast<int>(state.range(0));
  const int nlines = vf::simd::kMaxLinesPerCall;
  const auto re = randv(nlines * len, 17);
  const auto im = randv(nlines * len, 18);
  std::vector<float> mag(static_cast<std::size_t>(nlines) * len);
  for (auto _ : state) {
    k.magnitude_ml(re.data(), im.data(), nlines, len, len, mag.data(), len);
    benchmark::DoNotOptimize(mag.data());
  }
  state.SetItemsProcessed(state.iterations() * nlines * len);
}

void BM_SelectMl(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int len = static_cast<int>(state.range(0));
  const int nlines = vf::simd::kMaxLinesPerCall;
  const int n = nlines * len;
  const auto a_re = randv(n, 19);
  const auto a_im = randv(n, 20);
  const auto b_re = randv(n, 21);
  const auto b_im = randv(n, 22);
  std::vector<float> mag_a(static_cast<std::size_t>(n));
  std::vector<float> mag_b(static_cast<std::size_t>(n));
  vf::simd::complex_magnitude_scalar(a_re.data(), a_im.data(), n, mag_a.data());
  vf::simd::complex_magnitude_scalar(b_re.data(), b_im.data(), n, mag_b.data());
  std::vector<float> out_re(static_cast<std::size_t>(n));
  std::vector<float> out_im(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k.select_ml(a_re.data(), a_im.data(), b_re.data(), b_im.data(), mag_a.data(),
                mag_b.data(), nlines, len, len, out_re.data(), out_im.data(), len);
    benchmark::DoNotOptimize(out_re.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Average(benchmark::State& state, const vf::simd::KernelSet& k) {
  const int n = static_cast<int>(state.range(0));
  const auto a = randv(n, 13);
  const auto b = randv(n, 14);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    k.average(a.data(), b.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void register_benches() {
  const vf::simd::KernelSet* sets[] = {&vf::simd::scalar_kernels(),
                                       &vf::simd::simd_kernels(),
                                       &vf::simd::autovec_kernels()};
  for (const vf::simd::KernelSet* k : sets) {
    benchmark::RegisterBenchmark((std::string("BM_Analyze/") + k->name).c_str(),
                                 BM_Analyze, *k)
        ->Arg(44)
        ->Arg(1024);
    benchmark::RegisterBenchmark((std::string("BM_Synthesize/") + k->name).c_str(),
                                 BM_Synthesize, *k)
        ->Arg(44)
        ->Arg(1024);
    benchmark::RegisterBenchmark((std::string("BM_Magnitude/") + k->name).c_str(),
                                 BM_Magnitude, *k)
        ->Arg(1584);
    benchmark::RegisterBenchmark((std::string("BM_Select/") + k->name).c_str(),
                                 BM_Select, *k)
        ->Arg(1584);
    benchmark::RegisterBenchmark((std::string("BM_Average/") + k->name).c_str(),
                                 BM_Average, *k)
        ->Arg(1584);
    benchmark::RegisterBenchmark((std::string("BM_AnalyzeMl/") + k->name).c_str(),
                                 BM_AnalyzeMl, *k)
        ->Arg(44)
        ->Arg(1024);
    benchmark::RegisterBenchmark(
        (std::string("BM_SynthesizeMl/") + k->name).c_str(), BM_SynthesizeMl, *k)
        ->Arg(44)
        ->Arg(1024);
    benchmark::RegisterBenchmark(
        (std::string("BM_MagnitudeMl/") + k->name).c_str(), BM_MagnitudeMl, *k)
        ->Arg(198);  // 1584 total over 8 lines
    benchmark::RegisterBenchmark((std::string("BM_SelectMl/") + k->name).c_str(),
                                 BM_SelectMl, *k)
        ->Arg(198);
  }
}

// Console output as usual, plus a copy of every run for --json.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    long long iterations;
    double ns_per_op;
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<long long>(run.iterations);
      row.ns_per_op = run.iterations > 0
                          ? run.real_accumulated_time / run.iterations * 1e9
                          : 0.0;
      const auto it = run.counters.find("items_per_second");
      row.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;

  register_benches();
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    vf::json::Value run = vf::json::Value::object();
    run.set("schema", "vf-bench-v1");
    run.set("bench", "bench_kernels");
    run.set("simd_isa", vf::simd::simd_isa_name());
    vf::json::Value rows = vf::json::Value::array();
    for (const CollectingReporter::Row& row : reporter.rows()) {
      rows.push(vf::json::Value::object()
                    .set("name", row.name)
                    .set("iterations", row.iterations)
                    .set("ns_per_op", row.ns_per_op)
                    .set("items_per_second", row.items_per_second));
    }
    run.set("results", std::move(rows));
    if (!vf::json::write_file(json_path, run)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Ablation A1 — why the paper built a custom DMA engine on the ACP.
//
// "The general purpose 32-bit ports do not obtain the require performance and
// every transfer requires around 25 clock cycles with the CPU moving the data
// itself. For this reason we created a custom DMA engine using the synthesis
// support of memcpy by VIVADO_HLS."
//
// Compares modeled transfer time of typical wavelet lines over (a) the
// CPU-driven GP port and (b) the HLS memcpy DMA on the ACP.
#include "bench/bench_util.h"
#include "src/hw/axi.h"
#include "src/hw/clock.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);
  json::Value jrun = json_run_header("bench_ablation_transfer", options);

  print_header("Ablation A1 — GP-port CPU transfers vs ACP DMA bursts",
               "§V: GP ports need ~25 CPU cycles per 32-bit word");

  const hw::GpPortModel gp;
  const hw::AcpDmaModel acp;
  const hw::ClockDomain ps = hw::ps_clock();
  const hw::ClockDomain pl = hw::pl_clock();

  TextTable table({"payload", "words", "GP port (us)", "ACP DMA (us)", "speedup"});
  struct Case {
    const char* label;
    int words;
  };
  const Case cases[] = {
      {"level-3 line (22 px)", 2 * 11 + 14},
      {"level-2 line (44 px)", 2 * 22 + 14},
      {"level-1 line (88 px)", 2 * 44 + 14},
      {"max line (2048 px)", 2 * 1024 + 14},
      {"whole 88x72 frame", 88 * 72},
  };
  json::Value jlines = json::Value::array();
  for (const Case& c : cases) {
    const double gp_us = ps.cycles(gp.cycles_for_words(c.words)).us();
    const double acp_us = pl.cycles(acp.cycles_for_words(c.words)).us();
    table.add_row({c.label, std::to_string(c.words), TextTable::num(gp_us, 2),
                   TextTable::num(acp_us, 2), TextTable::num(gp_us / acp_us, 1) + "x"});
    jlines.push(json::Value::object()
                    .set("payload", c.label)
                    .set("words", c.words)
                    .set("gp_us", gp_us)
                    .set("acp_us", acp_us));
  }
  jrun.set("line_transfers", std::move(jlines));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the ACP DMA moves line payloads an order of magnitude faster even\n"
              "though the PL runs at 100 MHz vs the PS's 533 MHz — and it frees the\n"
              "CPU during the transfer, which the GP path cannot.\n\n");

  // End-to-end: run the full FPGA configuration with each transfer design
  // and each completion mechanism (10 frames per point).
  std::printf("end-to-end FPGA fusion time per design (10 frames, seconds):\n");
  TextTable e2e({"frame size", "ACP+poll (paper)", "ACP+interrupt", "GP-port+poll",
                 "GP penalty"});
  const sched::RunConfig base = bench_run_config(options);
  json::Value je2e = json::Value::array();
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const sched::RunConfig paper_run = base;  // ACP + polling

    sched::RunConfig irq_run = base;
    irq_run.driver_costs.completion = driver::CompletionMode::kInterrupt;

    sched::RunConfig gp_run = base;
    gp_run.driver_costs.transfer = driver::TransferMode::kGpPort;
    gp_run.engine.dma_enabled = false;  // no DMA block in the GP design

    const auto acp_poll = sched::make_backend(EngineChoice::kFpga, paper_run);
    const auto acp_irq = sched::make_backend(EngineChoice::kFpga, irq_run);
    const auto gp_poll = sched::make_backend(EngineChoice::kFpga, gp_run);
    const auto r_paper = probe_backend(*acp_poll, size, options.frames);
    const auto r_irq = probe_backend(*acp_irq, size, options.frames);
    const auto r_gp = probe_backend(*gp_poll, size, options.frames);
    e2e.add_row({size.label(), TextTable::num(r_paper.total.sec(), 3),
                 TextTable::num(r_irq.total.sec(), 3),
                 TextTable::num(r_gp.total.sec(), 3),
                 TextTable::num(100.0 * (r_gp.total.sec() / r_paper.total.sec() - 1.0), 1) +
                     "%"});
    je2e.push(json::Value::object()
                  .set("size", size.label())
                  .set("acp_poll_s", r_paper.total.sec())
                  .set("acp_interrupt_s", r_irq.total.sec())
                  .set("gp_poll_s", r_gp.total.sec()));
  }
  jrun.set("end_to_end", std::move(je2e));
  std::printf("%s\n", e2e.to_string().c_str());
  std::printf("with lines this short, a blocking syscall + IRQ latency per line costs\n"
              "more than a few status-register polls — fine-grained offload favors\n"
              "polling, which is what the paper's driver does. The GP-port design\n"
              "loses across the board; that is why the paper built the DMA engine.\n");
  return write_json_report(options, jrun);
}

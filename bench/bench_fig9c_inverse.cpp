// Fig. 9(c) — "Performance Comparison of Inverse DT-CWT".
//
// Inverse transform time for 10 continuously fused frames per frame size.
// Paper reference at 88x72: FPGA -60.6%, NEON -16% vs ARM; FPGA worse than
// NEON at 35x35 and 32x24.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::bench;

  const BenchOptions options = parse_bench_options(argc, argv);

  print_header("Fig. 9(c) — inverse DT-CWT time vs frame size (" +
                   std::to_string(options.frames) + " frames, seconds)",
               "Fig. 9(c); §VII text: -60.6% FPGA / -16% NEON at 88x72");

  const sched::RunConfig config = bench_run_config(options);
  json::Value run = json_run_header("fig9c_inverse", options);
  json::Value sweep = json::Value::array();

  TextTable table({"frame size", "ARM inv (s)", "NEON inv (s)", "FPGA inv (s)",
                   "FPGA vs ARM", "best"});
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    const auto arm = run_probe(EngineChoice::kArm, size, config);
    const auto neon = run_probe(EngineChoice::kNeon, size, config);
    const auto fpga = run_probe(EngineChoice::kFpga, size, config);
    const double vs_arm = 100.0 * (1.0 - fpga.inverse.sec() / arm.inverse.sec());
    const char* best = fpga.inverse < neon.inverse ? "FPGA" : "NEON";
    table.add_row({size.label(), TextTable::num(arm.inverse.sec(), 3),
                   TextTable::num(neon.inverse.sec(), 3),
                   TextTable::num(fpga.inverse.sec(), 3),
                   TextTable::num(vs_arm, 1) + "%", best});
    json::Value row = json::Value::object();
    row.set("frame_size", size.label());
    row.set("arm_inverse_s", arm.inverse.sec());
    row.set("neon_inverse_s", neon.inverse.sec());
    row.set("fpga_inverse_s", fpga.inverse.sec());
    sweep.push(std::move(row));
  }
  run.set("sweep", std::move(sweep));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: FPGA loses at 32x24 and 35x35, ties near 40x40, and\n"
              "wins clearly at 64x48 and 88x72 (paper: outperforms past 40x40).\n");
  return write_json_report(options, run);
}

#!/usr/bin/env python3
"""Compare a bench --json run against a section of BENCH_baseline.json.

The modeled ZC702 numbers are deterministic and host-independent, so any
drift between a fresh run and the checked-in baseline is a real behaviour
change that must be reviewed (and the baseline regenerated deliberately).

Usage:
  tools/check_bench_baseline.py BASELINE.json SECTION FRESH.json

Compares the baseline's `SECTION` object against the fresh run. Numeric
leaves must agree to 1e-9 relative tolerance; strings and booleans exactly.
Host-dependent fields (host config, wall-clock timings) are skipped by path
substring. Exit code 1 on any drift, with a per-path report.
"""
import json
import math
import sys

# Paths containing any of these substrings are host- or harness-dependent,
# not modeled output.
SKIP = ("host", "wall", "threads", "kernels", "simd_isa")

REL_TOL = 1e-9


def leaves(value, path=""):
    if isinstance(value, dict):
        for key, child in value.items():
            yield from leaves(child, f"{path}.{key}" if path else key)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from leaves(child, f"{path}[{i}]")
    else:
        yield path, value


def skipped(path):
    return any(token in path for token in SKIP)


def main(argv):
    if len(argv) != 4:
        sys.stderr.write(__doc__)
        return 2
    baseline_path, section, fresh_path = argv[1], argv[2], argv[3]
    with open(baseline_path) as f:
        baseline = json.load(f)
    if section not in baseline:
        sys.stderr.write(f"section '{section}' not in {baseline_path}\n")
        return 2
    with open(fresh_path) as f:
        fresh = json.load(f)

    base_leaves = {p: v for p, v in leaves(baseline[section]) if not skipped(p)}
    fresh_leaves = {p: v for p, v in leaves(fresh) if not skipped(p)}

    drifts = []
    for path, expect in sorted(base_leaves.items()):
        if path not in fresh_leaves:
            drifts.append(f"missing in fresh run: {path} (baseline {expect!r})")
            continue
        got = fresh_leaves[path]
        if isinstance(expect, bool) or isinstance(got, bool):
            ok = expect == got
        elif isinstance(expect, (int, float)) and isinstance(got, (int, float)):
            ok = math.isclose(expect, got, rel_tol=REL_TOL, abs_tol=0.0)
        else:
            ok = expect == got
        if not ok:
            drifts.append(f"{path}: baseline {expect!r} != fresh {got!r}")
    for path in sorted(set(fresh_leaves) - set(base_leaves)):
        drifts.append(f"new field not in baseline: {path}")

    if drifts:
        sys.stderr.write(
            f"modeled output drifted from {baseline_path}:{section} "
            f"({len(drifts)} difference(s)):\n"
        )
        for d in drifts:
            sys.stderr.write(f"  {d}\n")
        sys.stderr.write(
            "if the change is intentional, regenerate the baseline section "
            "(see the note inside BENCH_baseline.json).\n"
        )
        return 1
    print(
        f"{fresh_path} matches {baseline_path}:{section} "
        f"({len(base_leaves)} modeled fields)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Compare a bench --json run against a section of BENCH_baseline.json.

The modeled ZC702 numbers are deterministic and host-independent, so any
drift between a fresh run and the checked-in baseline is a real behaviour
change that must be reviewed (and the baseline regenerated deliberately).

Usage:
  tools/check_bench_baseline.py BASELINE.json SECTION FRESH.json
  tools/check_bench_baseline.py --update BASELINE.json SECTION FRESH.json

Compares the baseline's `SECTION` object against the fresh run. Numeric
leaves must agree to 1e-9 relative tolerance; strings and booleans exactly.
Host-dependent fields (host config, wall-clock timings, google-benchmark
iteration counts/rates) are skipped by path substring. Exit code 1 on any
drift, with a per-path report.

With --update, the fresh run replaces the baseline's SECTION in place (the
deliberate-regeneration step the drift report points to). The check still
runs first and its report is printed, so an update shows exactly which
modeled fields it is rewriting — a clean update after a host-only change
reports zero drift.
"""
import json
import math
import sys

# Paths containing any of these substrings are host- or harness-dependent,
# not modeled output. "host"/"wall"/"threads" cover the host config blocks
# and wall-clock sections (host_wall_clock, host_layout_sweep, and the
# wall_implied_gbps_* fields of transform_traffic — its byte/flop counts are
# modeled and checked); "iterations"/"ns_per_op"/"items_per_second" are
# google-benchmark wall-clock measurements in the bench_kernels section (its
# modeled content is the set of benchmark names, which IS checked — a kernel
# dropping out of the dispatch sweep fails the check).
SKIP = (
    "host",
    "wall",
    "threads",
    "simd_isa",
    "iterations",
    "ns_per_op",
    "items_per_second",
)

REL_TOL = 1e-9


def leaves(value, path=""):
    if isinstance(value, dict):
        for key, child in value.items():
            yield from leaves(child, f"{path}.{key}" if path else key)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from leaves(child, f"{path}[{i}]")
    else:
        yield path, value


def skipped(path):
    return any(token in path for token in SKIP)


def compare(section_value, fresh):
    base_leaves = {p: v for p, v in leaves(section_value) if not skipped(p)}
    fresh_leaves = {p: v for p, v in leaves(fresh) if not skipped(p)}

    drifts = []
    for path, expect in sorted(base_leaves.items()):
        if path not in fresh_leaves:
            drifts.append(f"missing in fresh run: {path} (baseline {expect!r})")
            continue
        got = fresh_leaves[path]
        if isinstance(expect, bool) or isinstance(got, bool):
            ok = expect == got
        elif isinstance(expect, (int, float)) and isinstance(got, (int, float)):
            ok = math.isclose(expect, got, rel_tol=REL_TOL, abs_tol=0.0)
        else:
            ok = expect == got
        if not ok:
            drifts.append(f"{path}: baseline {expect!r} != fresh {got!r}")
    for path in sorted(set(fresh_leaves) - set(base_leaves)):
        drifts.append(f"new field not in baseline: {path}")
    return drifts, len(base_leaves)


def main(argv):
    argv = argv[1:]
    update = False
    if argv and argv[0] == "--update":
        update = True
        argv = argv[1:]
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    baseline_path, section, fresh_path = argv
    with open(baseline_path) as f:
        baseline = json.load(f)
    if section not in baseline and not update:
        sys.stderr.write(f"section '{section}' not in {baseline_path}\n")
        return 2
    with open(fresh_path) as f:
        fresh = json.load(f)

    drifts, checked = compare(baseline.get(section, {}), fresh)

    if update:
        baseline[section] = fresh
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=1)
            f.write("\n")
        print(f"updated {baseline_path}:{section} from {fresh_path}")
        if drifts:
            print(f"  {len(drifts)} modeled field(s) changed:")
            for d in drifts:
                print(f"    {d}")
        else:
            print(f"  no modeled drift ({checked} fields; host/wall fields refreshed)")
        return 0

    if drifts:
        sys.stderr.write(
            f"modeled output drifted from {baseline_path}:{section} "
            f"({len(drifts)} difference(s)):\n"
        )
        for d in drifts:
            sys.stderr.write(f"  {d}\n")
        sys.stderr.write(
            "if the change is intentional, regenerate the section with "
            f"tools/check_bench_baseline.py --update {baseline_path} {section} "
            "FRESH.json\n"
        )
        return 1
    print(
        f"{fresh_path} matches {baseline_path}:{section} "
        f"({checked} modeled fields)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

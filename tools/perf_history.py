#!/usr/bin/env python3
"""Gate host wall-clock performance against a rolling cross-build history.

The modeled ZC702 numbers are locked bit-for-bit by check_bench_baseline.py;
this tool covers the other half of the bench output — real host wall-clock
measurements (fps-vs-threads curves, the membw STREAM sweep) that legitimately
differ between machines but should not silently fall off a cliff on the same
CI runner pool.

Usage:
  tools/perf_history.py --history HISTORY.json [options] FRESH.json ...

Walks every fresh --json report for numeric leaves whose key contains
"wall_s" (wall-clock seconds, lower is better), prefixes each path with the
report's basename, and compares the current value against the median of that
metric over the last --window history entries. A metric regresses when

  current > --max-ratio * median(previous)

and it has at least --min-entries prior samples and the median is above
--min-seconds (sub-floor timings are dominated by scheduler noise, not by
the code under test). After the check, the current run is appended to the
history and the file is pruned to --keep entries, so the caller persists one
small JSON file (actions/cache in CI) instead of N artifacts.

Exit codes: 0 ok / history warming up, 1 regression, 2 usage error.
"""
import argparse
import json
import os
import statistics
import sys


def wall_leaves(value, path=""):
    if isinstance(value, dict):
        for key, child in value.items():
            yield from wall_leaves(child, f"{path}.{key}" if path else key)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from wall_leaves(child, f"{path}[{i}]")
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        # The leaf key, not the whole path: "host_wall_clock.threads[2].fps"
        # is a rate, "...wall_s" is the timing we gate on.
        if "wall_s" in path.rsplit(".", 1)[-1]:
            yield path, float(value)


def collect_metrics(paths):
    metrics = {}
    for fresh_path in paths:
        with open(fresh_path) as f:
            report = json.load(f)
        prefix = os.path.splitext(os.path.basename(fresh_path))[0]
        for path, value in wall_leaves(report):
            metrics[f"{prefix}:{path}"] = value
    return metrics


def check(metrics, entries, args):
    regressions, gated, warming = [], 0, 0
    for name, current in sorted(metrics.items()):
        previous = [
            e["metrics"][name]
            for e in entries[-args.window:]
            if name in e.get("metrics", {})
        ]
        if len(previous) < args.min_entries:
            warming += 1
            continue
        median = statistics.median(previous)
        if median < args.min_seconds:
            continue
        gated += 1
        if current > args.max_ratio * median:
            regressions.append(
                f"{name}: {current:.4f}s vs median {median:.4f}s of last "
                f"{len(previous)} runs ({current / median:.2f}x > "
                f"{args.max_ratio:.2f}x)"
            )
    return regressions, gated, warming


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--history", required=True, help="rolling history JSON file")
    parser.add_argument("--label", default="", help="tag for this run (sha, run id)")
    parser.add_argument("--max-ratio", type=float, default=1.5)
    parser.add_argument("--min-seconds", type=float, default=0.005)
    parser.add_argument("--min-entries", type=int, default=3)
    parser.add_argument("--window", type=int, default=10)
    parser.add_argument("--keep", type=int, default=30)
    parser.add_argument("fresh", nargs="+", help="bench --json reports")
    args = parser.parse_args(argv[1:])

    metrics = collect_metrics(args.fresh)
    if not metrics:
        sys.stderr.write("no wall_s leaves found in the given reports\n")
        return 2

    entries = []
    if os.path.exists(args.history):
        with open(args.history) as f:
            entries = json.load(f).get("entries", [])

    regressions, gated, warming = check(metrics, entries, args)

    entries.append({"label": args.label, "metrics": metrics})
    with open(args.history, "w") as f:
        json.dump({"entries": entries[-args.keep:]}, f, indent=1)
        f.write("\n")

    print(
        f"{len(metrics)} wall-clock metric(s) from {len(args.fresh)} report(s); "
        f"{gated} gated against {min(len(entries) - 1, args.window)} prior "
        f"run(s), {warming} still warming up; history at {args.history} "
        f"({len(entries[-args.keep:])} entries)"
    )
    if regressions:
        sys.stderr.write(f"{len(regressions)} wall-clock regression(s):\n")
        for r in regressions:
            sys.stderr.write(f"  {r}\n")
        sys.stderr.write(
            "re-run to rule out a noisy runner; a persistent ratio above the "
            "gate is a host-path regression to investigate before merging.\n"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

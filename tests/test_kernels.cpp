// SIMD-vs-scalar equivalence for all four kernel families.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/simd/kernels.h"

namespace {

using namespace vf;

std::vector<float> randv(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.next_float(-1.0f, 1.0f);
  return v;
}

class KernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalence, DualCorrDecimate2) {
  const int out_len = GetParam();
  for (int taps : {5, 9, 14, 16}) {
    const auto x = randv(2 * out_len + taps, 1);
    const auto lp = randv(taps, 2);
    const auto hp = randv(taps, 3);
    std::vector<float> lo_s(out_len), hi_s(out_len), lo_v(out_len), hi_v(out_len);
    std::vector<float> lo_a(out_len), hi_a(out_len);
    simd::dual_corr_decimate2_scalar(x.data(), out_len, lp.data(), hp.data(), taps,
                                     lo_s.data(), hi_s.data());
    simd::dual_corr_decimate2_simd(x.data(), out_len, lp.data(), hp.data(), taps,
                                   lo_v.data(), hi_v.data());
    simd::dual_corr_decimate2_autovec(x.data(), out_len, lp.data(), hp.data(), taps,
                                      lo_a.data(), hi_a.data());
    for (int i = 0; i < out_len; ++i) {
      EXPECT_FLOAT_EQ(lo_s[i], lo_v[i]) << "taps=" << taps << " i=" << i;
      EXPECT_FLOAT_EQ(hi_s[i], hi_v[i]) << "taps=" << taps << " i=" << i;
      EXPECT_NEAR(lo_s[i], lo_a[i], 1e-4f) << "taps=" << taps << " i=" << i;
      EXPECT_NEAR(hi_s[i], hi_a[i], 1e-4f) << "taps=" << taps << " i=" << i;
    }
  }
}

TEST_P(KernelEquivalence, DualCorrDecimate2Ileave) {
  const int pairs = GetParam();
  for (int taps : {7, 16, 28}) {
    const auto x = randv(2 * pairs + taps, 4);
    const auto ca = randv(taps, 5);
    const auto cb = randv(taps, 6);
    std::vector<float> out_s(2 * pairs), out_v(2 * pairs), out_a(2 * pairs);
    simd::dual_corr_decimate2_ileave_scalar(x.data(), pairs, ca.data(), cb.data(),
                                            taps, out_s.data());
    simd::dual_corr_decimate2_ileave_simd(x.data(), pairs, ca.data(), cb.data(), taps,
                                          out_v.data());
    simd::dual_corr_decimate2_ileave_autovec(x.data(), pairs, ca.data(), cb.data(),
                                             taps, out_a.data());
    for (int i = 0; i < 2 * pairs; ++i) {
      EXPECT_FLOAT_EQ(out_s[i], out_v[i]) << "taps=" << taps << " i=" << i;
      EXPECT_NEAR(out_s[i], out_a[i], 1e-4f) << "taps=" << taps << " i=" << i;
    }
  }
}

TEST_P(KernelEquivalence, ComplexMagnitude) {
  const int n = GetParam();
  const auto re = randv(n, 7);
  const auto im = randv(n, 8);
  std::vector<float> mag_s(n), mag_v(n);
  simd::complex_magnitude_scalar(re.data(), im.data(), n, mag_s.data());
  simd::complex_magnitude_simd(re.data(), im.data(), n, mag_v.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(mag_s[i], mag_v[i]) << i;
    EXPECT_GE(mag_s[i], 0.0f);
  }
}

TEST_P(KernelEquivalence, SelectByMagnitude) {
  const int n = GetParam();
  const auto a_re = randv(n, 9), a_im = randv(n, 10);
  const auto b_re = randv(n, 11), b_im = randv(n, 12);
  std::vector<float> mag_a(n), mag_b(n);
  simd::complex_magnitude_scalar(a_re.data(), a_im.data(), n, mag_a.data());
  simd::complex_magnitude_scalar(b_re.data(), b_im.data(), n, mag_b.data());
  std::vector<float> re_s(n), im_s(n), re_v(n), im_v(n);
  simd::select_by_magnitude_scalar(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                                   mag_a.data(), mag_b.data(), n, re_s.data(),
                                   im_s.data());
  simd::select_by_magnitude_simd(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                                 mag_a.data(), mag_b.data(), n, re_v.data(),
                                 im_v.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(re_s[i], re_v[i]) << i;
    EXPECT_FLOAT_EQ(im_s[i], im_v[i]) << i;
    // Selection must come from one of the inputs.
    EXPECT_TRUE(re_s[i] == a_re[i] || re_s[i] == b_re[i]) << i;
  }
}

// Odd lengths exercise the SIMD tail path; 44 and 1024 are the bench sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, KernelEquivalence,
                         ::testing::Values(1, 3, 7, 44, 101, 1024));

}  // namespace

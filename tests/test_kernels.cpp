// Flavour-parity contract for all five kernel families (analyze, synthesize,
// magnitude, select, average):
//
//   *_simd     bit-identical to *_scalar (0 ulp, signed zeros included) —
//              the dispatch default relies on this;
//   *_autovec  within 1 ulp of *_scalar (the compiler may contract mul+add
//              into FMA, which changes rounding at most 1 ulp here).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/simd/dispatch.h"

namespace {

using namespace vf;

std::vector<float> randv(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.next_float(-1.0f, 1.0f);
  return v;
}

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

// Monotone map of float ordering onto integers (+0.0 and -0.0 coincide).
long long float_ordered(float f) {
  const std::uint32_t u = float_bits(f);
  return (u & 0x80000000u) ? -static_cast<long long>(u & 0x7fffffffu)
                           : static_cast<long long>(u);
}

long long ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) == std::isnan(b) ? 0 : 1u << 30;
  const long long d = float_ordered(a) - float_ordered(b);
  return d < 0 ? -d : d;
}

void expect_bit_identical(const std::vector<float>& ref, const std::vector<float>& got,
                          const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(float_bits(ref[i]), float_bits(got[i]))
        << what << " i=" << i << " ref=" << ref[i] << " got=" << got[i];
  }
}

void expect_within_1_ulp(const std::vector<float>& ref, const std::vector<float>& got,
                         const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_LE(ulp_distance(ref[i], got[i]), 1)
        << what << " i=" << i << " ref=" << ref[i] << " got=" << got[i];
  }
}

class KernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalence, DualCorrDecimate2) {
  const int out_len = GetParam();
  for (int taps : {5, 9, 14, 16}) {
    const auto x = randv(2 * out_len + taps, 1);
    const auto lp = randv(taps, 2);
    const auto hp = randv(taps, 3);
    std::vector<float> lo_s(out_len), hi_s(out_len), lo_v(out_len), hi_v(out_len);
    std::vector<float> lo_a(out_len), hi_a(out_len);
    simd::dual_corr_decimate2_scalar(x.data(), out_len, lp.data(), hp.data(), taps,
                                     lo_s.data(), hi_s.data());
    simd::dual_corr_decimate2_simd(x.data(), out_len, lp.data(), hp.data(), taps,
                                   lo_v.data(), hi_v.data());
    simd::dual_corr_decimate2_autovec(x.data(), out_len, lp.data(), hp.data(), taps,
                                      lo_a.data(), hi_a.data());
    expect_bit_identical(lo_s, lo_v, "analyze lo simd");
    expect_bit_identical(hi_s, hi_v, "analyze hi simd");
    expect_within_1_ulp(lo_s, lo_a, "analyze lo autovec");
    expect_within_1_ulp(hi_s, hi_a, "analyze hi autovec");
  }
}

TEST_P(KernelEquivalence, DualCorrDecimate2Ileave) {
  const int pairs = GetParam();
  for (int taps : {7, 16, 28}) {
    const auto x = randv(2 * pairs + taps, 4);
    const auto ca = randv(taps, 5);
    const auto cb = randv(taps, 6);
    std::vector<float> out_s(2 * pairs), out_v(2 * pairs), out_a(2 * pairs);
    simd::dual_corr_decimate2_ileave_scalar(x.data(), pairs, ca.data(), cb.data(),
                                            taps, out_s.data());
    simd::dual_corr_decimate2_ileave_simd(x.data(), pairs, ca.data(), cb.data(), taps,
                                          out_v.data());
    simd::dual_corr_decimate2_ileave_autovec(x.data(), pairs, ca.data(), cb.data(),
                                             taps, out_a.data());
    expect_bit_identical(out_s, out_v, "synthesize simd");
    expect_within_1_ulp(out_s, out_a, "synthesize autovec");
  }
}

TEST_P(KernelEquivalence, ComplexMagnitude) {
  const int n = GetParam();
  const auto re = randv(n, 7);
  const auto im = randv(n, 8);
  std::vector<float> mag_s(n), mag_v(n), mag_a(n);
  simd::complex_magnitude_scalar(re.data(), im.data(), n, mag_s.data());
  simd::complex_magnitude_simd(re.data(), im.data(), n, mag_v.data());
  simd::complex_magnitude_autovec(re.data(), im.data(), n, mag_a.data());
  expect_bit_identical(mag_s, mag_v, "magnitude simd");
  expect_within_1_ulp(mag_s, mag_a, "magnitude autovec");
  for (int i = 0; i < n; ++i) EXPECT_GE(mag_s[i], 0.0f);
}

TEST_P(KernelEquivalence, SelectByMagnitude) {
  const int n = GetParam();
  const auto a_re = randv(n, 9), a_im = randv(n, 10);
  const auto b_re = randv(n, 11), b_im = randv(n, 12);
  std::vector<float> mag_a(n), mag_b(n);
  simd::complex_magnitude_scalar(a_re.data(), a_im.data(), n, mag_a.data());
  simd::complex_magnitude_scalar(b_re.data(), b_im.data(), n, mag_b.data());
  std::vector<float> re_s(n), im_s(n), re_v(n), im_v(n), re_a(n), im_a(n);
  simd::select_by_magnitude_scalar(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                                   mag_a.data(), mag_b.data(), n, re_s.data(),
                                   im_s.data());
  simd::select_by_magnitude_simd(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                                 mag_a.data(), mag_b.data(), n, re_v.data(),
                                 im_v.data());
  simd::select_by_magnitude_autovec(a_re.data(), a_im.data(), b_re.data(),
                                    b_im.data(), mag_a.data(), mag_b.data(), n,
                                    re_a.data(), im_a.data());
  expect_bit_identical(re_s, re_v, "select re simd");
  expect_bit_identical(im_s, im_v, "select im simd");
  // Selection copies an input verbatim, so even autovec must be bit-exact.
  expect_bit_identical(re_s, re_a, "select re autovec");
  expect_bit_identical(im_s, im_a, "select im autovec");
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(re_s[i] == a_re[i] || re_s[i] == b_re[i]) << i;
  }
}

TEST_P(KernelEquivalence, Average) {
  const int n = GetParam();
  const auto a = randv(n, 13);
  const auto b = randv(n, 14);
  std::vector<float> out_s(n), out_v(n), out_a(n);
  simd::average_scalar(a.data(), b.data(), n, out_s.data());
  simd::average_simd(a.data(), b.data(), n, out_v.data());
  simd::average_autovec(a.data(), b.data(), n, out_a.data());
  expect_bit_identical(out_s, out_v, "average simd");
  // 0.5f * (a + b) has no mul+add to contract: exact in every flavour.
  expect_bit_identical(out_s, out_a, "average autovec");
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(out_s[i], 0.5f * (a[i] + b[i])) << i;
  }
}

// --- multi-line kernels ------------------------------------------------------
//
// The _ml contract (kernels.h): each line of a multi-line call produces the
// same bits as one single-line call of the same flavour on that line. That
// pins the per-line arithmetic order, so the flavour guarantees above carry
// over unchanged: _ml_simd is 0 ulp from _ml_scalar, _ml_autovec within 1 ulp
// (select stays bit-exact — it only copies inputs).

class MultiLineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MultiLineEquivalence, AnalyzeMl) {
  const int out_len = GetParam();
  for (int nlines : {1, 3, simd::kMaxLinesPerCall}) {
    for (int taps : {5, 14}) {
      const int x_stride = 2 * out_len + taps + 3;  // over-stride: gaps allowed
      const auto x = randv(nlines * x_stride, 21);
      const auto lp = randv(taps, 22);
      const auto hp = randv(taps, 23);
      const int out_stride = out_len + 2;
      const int out_total = nlines * out_stride;
      std::vector<float> lo_ref(out_total, 0.0f), hi_ref(out_total, 0.0f);
      for (int l = 0; l < nlines; ++l) {
        simd::dual_corr_decimate2_scalar(x.data() + l * x_stride, out_len,
                                         lp.data(), hp.data(), taps,
                                         lo_ref.data() + l * out_stride,
                                         hi_ref.data() + l * out_stride);
      }
      std::vector<float> lo_s(out_total, 0.0f), hi_s(out_total, 0.0f);
      std::vector<float> lo_v(out_total, 0.0f), hi_v(out_total, 0.0f);
      std::vector<float> lo_a(out_total, 0.0f), hi_a(out_total, 0.0f);
      simd::dual_corr_decimate2_ml_scalar(x.data(), x_stride, nlines, out_len,
                                          lp.data(), hp.data(), taps, lo_s.data(),
                                          hi_s.data(), out_stride);
      simd::dual_corr_decimate2_ml_simd(x.data(), x_stride, nlines, out_len,
                                        lp.data(), hp.data(), taps, lo_v.data(),
                                        hi_v.data(), out_stride);
      simd::dual_corr_decimate2_ml_autovec(x.data(), x_stride, nlines, out_len,
                                           lp.data(), hp.data(), taps, lo_a.data(),
                                           hi_a.data(), out_stride);
      expect_bit_identical(lo_ref, lo_s, "analyze_ml lo scalar vs per-line");
      expect_bit_identical(hi_ref, hi_s, "analyze_ml hi scalar vs per-line");
      expect_bit_identical(lo_ref, lo_v, "analyze_ml lo simd");
      expect_bit_identical(hi_ref, hi_v, "analyze_ml hi simd");
      expect_within_1_ulp(lo_ref, lo_a, "analyze_ml lo autovec");
      expect_within_1_ulp(hi_ref, hi_a, "analyze_ml hi autovec");
    }
  }
}

TEST_P(MultiLineEquivalence, SynthesizeMl) {
  const int pairs = GetParam();
  for (int nlines : {1, 3, simd::kMaxLinesPerCall}) {
    const int taps = 16;
    const int x_stride = 2 * pairs + taps + 1;
    const auto x = randv(nlines * x_stride, 24);
    const auto ca = randv(taps, 25);
    const auto cb = randv(taps, 26);
    const int out_stride = 2 * pairs + 4;
    const int out_total = nlines * out_stride;
    std::vector<float> ref(out_total, 0.0f);
    for (int l = 0; l < nlines; ++l) {
      simd::dual_corr_decimate2_ileave_scalar(x.data() + l * x_stride, pairs,
                                              ca.data(), cb.data(), taps,
                                              ref.data() + l * out_stride);
    }
    std::vector<float> out_s(out_total, 0.0f), out_v(out_total, 0.0f),
        out_a(out_total, 0.0f);
    simd::dual_corr_decimate2_ileave_ml_scalar(x.data(), x_stride, nlines, pairs,
                                               ca.data(), cb.data(), taps,
                                               out_s.data(), out_stride);
    simd::dual_corr_decimate2_ileave_ml_simd(x.data(), x_stride, nlines, pairs,
                                             ca.data(), cb.data(), taps,
                                             out_v.data(), out_stride);
    simd::dual_corr_decimate2_ileave_ml_autovec(x.data(), x_stride, nlines, pairs,
                                                ca.data(), cb.data(), taps,
                                                out_a.data(), out_stride);
    expect_bit_identical(ref, out_s, "synthesize_ml scalar vs per-line");
    expect_bit_identical(ref, out_v, "synthesize_ml simd");
    expect_within_1_ulp(ref, out_a, "synthesize_ml autovec");
  }
}

TEST_P(MultiLineEquivalence, MagnitudeMl) {
  const int len = GetParam();
  for (int nlines : {1, 3, simd::kMaxLinesPerCall}) {
    const int in_stride = len + 5;
    const auto re = randv(nlines * in_stride, 27);
    const auto im = randv(nlines * in_stride, 28);
    const int out_stride = len + 1;
    const int out_total = nlines * out_stride;
    std::vector<float> ref(out_total, 0.0f);
    for (int l = 0; l < nlines; ++l) {
      simd::complex_magnitude_scalar(re.data() + l * in_stride,
                                     im.data() + l * in_stride, len,
                                     ref.data() + l * out_stride);
    }
    std::vector<float> mag_s(out_total, 0.0f), mag_v(out_total, 0.0f),
        mag_a(out_total, 0.0f);
    simd::complex_magnitude_ml_scalar(re.data(), im.data(), nlines, len, in_stride,
                                      mag_s.data(), out_stride);
    simd::complex_magnitude_ml_simd(re.data(), im.data(), nlines, len, in_stride,
                                    mag_v.data(), out_stride);
    simd::complex_magnitude_ml_autovec(re.data(), im.data(), nlines, len, in_stride,
                                       mag_a.data(), out_stride);
    expect_bit_identical(ref, mag_s, "magnitude_ml scalar vs per-line");
    expect_bit_identical(ref, mag_v, "magnitude_ml simd");
    expect_within_1_ulp(ref, mag_a, "magnitude_ml autovec");
  }
}

TEST_P(MultiLineEquivalence, SelectMl) {
  const int len = GetParam();
  for (int nlines : {1, 3, simd::kMaxLinesPerCall}) {
    const int in_stride = len + 2;
    const int total = nlines * in_stride;
    const auto a_re = randv(total, 29), a_im = randv(total, 30);
    const auto b_re = randv(total, 31), b_im = randv(total, 32);
    std::vector<float> mag_a(total, 0.0f), mag_b(total, 0.0f);
    simd::complex_magnitude_scalar(a_re.data(), a_im.data(), total, mag_a.data());
    simd::complex_magnitude_scalar(b_re.data(), b_im.data(), total, mag_b.data());
    const int out_stride = len + 3;
    const int out_total = nlines * out_stride;
    std::vector<float> re_ref(out_total, 0.0f), im_ref(out_total, 0.0f);
    for (int l = 0; l < nlines; ++l) {
      simd::select_by_magnitude_scalar(
          a_re.data() + l * in_stride, a_im.data() + l * in_stride,
          b_re.data() + l * in_stride, b_im.data() + l * in_stride,
          mag_a.data() + l * in_stride, mag_b.data() + l * in_stride, len,
          re_ref.data() + l * out_stride, im_ref.data() + l * out_stride);
    }
    for (const auto* flavour : {"scalar", "simd", "autovec"}) {
      std::vector<float> re(out_total, 0.0f), im(out_total, 0.0f);
      auto fn = std::string(flavour) == "scalar" ? simd::select_by_magnitude_ml_scalar
                : std::string(flavour) == "simd" ? simd::select_by_magnitude_ml_simd
                                                 : simd::select_by_magnitude_ml_autovec;
      fn(a_re.data(), a_im.data(), b_re.data(), b_im.data(), mag_a.data(),
         mag_b.data(), nlines, len, in_stride, re.data(), im.data(), out_stride);
      // Selection copies inputs verbatim: bit-exact in every flavour.
      expect_bit_identical(re_ref, re, (std::string("select_ml re ") + flavour).c_str());
      expect_bit_identical(im_ref, im, (std::string("select_ml im ") + flavour).c_str());
    }
  }
}

TEST_P(MultiLineEquivalence, SelectHalf) {
  const int n = GetParam();
  const auto a = randv(n, 33), b = randv(n, 34);
  const auto mag_a = randv(n, 35), mag_b = randv(n, 36);
  std::vector<float> out_s(n), out_v(n), out_a(n);
  simd::select_half_scalar(a.data(), b.data(), mag_a.data(), mag_b.data(), n,
                           out_s.data());
  simd::select_half_simd(a.data(), b.data(), mag_a.data(), mag_b.data(), n,
                         out_v.data());
  simd::select_half_autovec(a.data(), b.data(), mag_a.data(), mag_b.data(), n,
                            out_a.data());
  // Selection copies an input verbatim: bit-exact in every flavour, and each
  // element must agree with the two-plane select on the same comparison.
  expect_bit_identical(out_s, out_v, "select_half simd");
  expect_bit_identical(out_s, out_a, "select_half autovec");
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(float_bits(out_s[i]),
              float_bits(mag_a[i] >= mag_b[i] ? a[i] : b[i]))
        << i;
  }
}

// --- fused cross-stage kernels -----------------------------------------------
//
// Same delegation contract as the plain _ml forms: per line, the fused
// analyze+magnitude and select+synthesize walks must produce the exact bits
// of the single-line scalar composition (simd 0 ulp, autovec within 1 ulp on
// the filtering parts, bit-exact on the selection parts).

TEST_P(MultiLineEquivalence, AnalyzeMagMl) {
  const int out_len = GetParam();
  for (int nlines : {1, 3, simd::kMaxLinesPerCall}) {
    const int taps = 14;
    const int x_stride = 2 * out_len + taps + 2;
    const auto x_re = randv(nlines * x_stride, 40);
    const auto x_im = randv(nlines * x_stride, 41);
    const auto lp_re = randv(taps, 42), hp_re = randv(taps, 43);
    const auto lp_im = randv(taps, 44), hp_im = randv(taps, 45);
    const int out_stride = out_len + 1;
    const int out_total = nlines * out_stride;
    std::vector<float> lo_re_ref(out_total, 0.0f), hi_re_ref(out_total, 0.0f);
    std::vector<float> lo_im_ref(out_total, 0.0f), hi_im_ref(out_total, 0.0f);
    std::vector<float> mag_lo_ref(out_total, 0.0f), mag_hi_ref(out_total, 0.0f);
    for (int l = 0; l < nlines; ++l) {
      simd::dual_corr_decimate2_scalar(x_re.data() + l * x_stride, out_len,
                                       lp_re.data(), hp_re.data(), taps,
                                       lo_re_ref.data() + l * out_stride,
                                       hi_re_ref.data() + l * out_stride);
      simd::dual_corr_decimate2_scalar(x_im.data() + l * x_stride, out_len,
                                       lp_im.data(), hp_im.data(), taps,
                                       lo_im_ref.data() + l * out_stride,
                                       hi_im_ref.data() + l * out_stride);
      simd::complex_magnitude_scalar(lo_re_ref.data() + l * out_stride,
                                     lo_im_ref.data() + l * out_stride, out_len,
                                     mag_lo_ref.data() + l * out_stride);
      simd::complex_magnitude_scalar(hi_re_ref.data() + l * out_stride,
                                     hi_im_ref.data() + l * out_stride, out_len,
                                     mag_hi_ref.data() + l * out_stride);
    }
    struct Flavour {
      const char* name;
      decltype(&simd::analyze_mag_ml_scalar) fn;
      bool exact;
    };
    const Flavour flavours[] = {
        {"scalar", simd::analyze_mag_ml_scalar, true},
        {"simd", simd::analyze_mag_ml_simd, true},
        {"autovec", simd::analyze_mag_ml_autovec, false},
    };
    for (const Flavour& fl : flavours) {
      std::vector<float> lo_re(out_total, 0.0f), hi_re(out_total, 0.0f);
      std::vector<float> lo_im(out_total, 0.0f), hi_im(out_total, 0.0f);
      std::vector<float> mag_lo(out_total, 0.0f), mag_hi(out_total, 0.0f);
      fl.fn(x_re.data(), x_im.data(), x_stride, nlines, out_len, lp_re.data(),
            hp_re.data(), lp_im.data(), hp_im.data(), taps, lo_re.data(),
            hi_re.data(), lo_im.data(), hi_im.data(), mag_lo.data(),
            mag_hi.data(), out_stride);
      auto check = [&](const std::vector<float>& ref, const std::vector<float>& got,
                       const char* what) {
        const std::string label = std::string("analyze_mag_ml ") + what + " " + fl.name;
        if (fl.exact) {
          expect_bit_identical(ref, got, label.c_str());
        } else {
          expect_within_1_ulp(ref, got, label.c_str());
        }
      };
      check(lo_re_ref, lo_re, "lo_re");
      check(hi_re_ref, hi_re, "hi_re");
      check(lo_im_ref, lo_im, "lo_im");
      check(hi_im_ref, hi_im, "hi_im");
      check(mag_lo_ref, mag_lo, "mag_lo");
      check(mag_hi_ref, mag_hi, "mag_hi");
      // Null magnitude outputs: the band outputs must be unaffected.
      std::vector<float> lo_re2(out_total, 0.0f), hi_re2(out_total, 0.0f);
      std::vector<float> lo_im2(out_total, 0.0f), hi_im2(out_total, 0.0f);
      fl.fn(x_re.data(), x_im.data(), x_stride, nlines, out_len, lp_re.data(),
            hp_re.data(), lp_im.data(), hp_im.data(), taps, lo_re2.data(),
            hi_re2.data(), lo_im2.data(), hi_im2.data(), nullptr, nullptr,
            out_stride);
      expect_bit_identical(lo_re, lo_re2, "analyze_mag_ml lo_re null-mag");
      expect_bit_identical(hi_im, hi_im2, "analyze_mag_ml hi_im null-mag");
    }
  }
}

// Scalar reference for one select+synthesize line: composed from the
// single-line scalar primitives plus the documented synthesis extension
// (ext[k] = interleaved lo/hi stream at (k - synth_offset) mod 2*pairs).
void ref_select_synth_line(const float* lo_a, const float* lo_b,
                           const float* mlo_a, const float* mlo_b,
                           const float* hi_a, const float* hi_b,
                           const float* mhi_a, const float* mhi_b, int pairs,
                           const float* ca, const float* cb, int taps,
                           int synth_offset, float* out) {
  std::vector<float> sel_lo(static_cast<std::size_t>(pairs));
  std::vector<float> sel_hi(static_cast<std::size_t>(pairs));
  if (lo_b != nullptr) {
    simd::select_half_scalar(lo_a, lo_b, mlo_a, mlo_b, pairs, sel_lo.data());
  } else {
    std::copy(lo_a, lo_a + pairs, sel_lo.begin());
  }
  if (hi_b != nullptr) {
    simd::select_half_scalar(hi_a, hi_b, mhi_a, mhi_b, pairs, sel_hi.data());
  } else {
    std::copy(hi_a, hi_a + pairs, sel_hi.begin());
  }
  const int n = 2 * pairs;
  std::vector<float> ext(static_cast<std::size_t>(n + taps));
  int src = ((-synth_offset) % n + n) % n;
  for (int k = 0; k < n + taps; ++k) {
    ext[static_cast<std::size_t>(k)] =
        (src & 1) ? sel_hi[static_cast<std::size_t>(src >> 1)]
                  : sel_lo[static_cast<std::size_t>(src >> 1)];
    if (++src == n) src = 0;
  }
  simd::dual_corr_decimate2_ileave_scalar(ext.data(), pairs, ca, cb, taps, out);
}

TEST_P(MultiLineEquivalence, SelectSynthMl) {
  const int pairs = GetParam();
  for (int nlines : {1, 3, simd::kMaxLinesPerCall}) {
    for (const bool fuse_select : {true, false}) {
      const int taps = 16;
      const int synth_offset = 7;
      const int in_stride = pairs + 2;
      const int total = nlines * in_stride;
      const auto lo_a = randv(total, 50), hi_a = randv(total, 51);
      const auto lo_b = randv(total, 52), hi_b = randv(total, 53);
      const auto mlo_a = randv(total, 54), mlo_b = randv(total, 55);
      const auto mhi_a = randv(total, 56), mhi_b = randv(total, 57);
      const auto ca = randv(taps, 58), cb = randv(taps, 59);
      const int out_stride = 2 * pairs + 3;
      const int out_total = nlines * out_stride;
      std::vector<float> ref(out_total, 0.0f);
      for (int l = 0; l < nlines; ++l) {
        const int o = l * in_stride;
        ref_select_synth_line(
            lo_a.data() + o, fuse_select ? lo_b.data() + o : nullptr,
            mlo_a.data() + o, mlo_b.data() + o, hi_a.data() + o,
            fuse_select ? hi_b.data() + o : nullptr, mhi_a.data() + o,
            mhi_b.data() + o, pairs, ca.data(), cb.data(), taps, synth_offset,
            ref.data() + l * out_stride);
      }
      struct Flavour {
        const char* name;
        decltype(&simd::select_synth_ml_scalar) fn;
        bool exact;
      };
      const Flavour flavours[] = {
          {"scalar", simd::select_synth_ml_scalar, true},
          {"simd", simd::select_synth_ml_simd, true},
          {"autovec", simd::select_synth_ml_autovec, false},
      };
      for (const Flavour& fl : flavours) {
        std::vector<float> out(out_total, 0.0f);
        fl.fn(lo_a.data(), fuse_select ? lo_b.data() : nullptr, mlo_a.data(),
              mlo_b.data(), hi_a.data(), fuse_select ? hi_b.data() : nullptr,
              mhi_a.data(), mhi_b.data(), in_stride, nlines, pairs, ca.data(),
              cb.data(), taps, synth_offset, out.data(), out_stride);
        const std::string label = std::string("select_synth_ml ") + fl.name +
                                  (fuse_select ? " fused" : " verbatim");
        if (fl.exact) {
          expect_bit_identical(ref, out, label.c_str());
        } else {
          expect_within_1_ulp(ref, out, label.c_str());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MultiLineEquivalence,
                         ::testing::Values(1, 7, 44, 198));

// --- blocked transpose -------------------------------------------------------
//
// transpose_f32 copies bits, so every shape — including ones that are all
// tail (1xN, Nx1) or straddle the 8x8 tile edge — must match the naive
// element-by-element transpose exactly.
TEST(TransposeF32, MatchesNaiveAtAwkwardShapes) {
  struct Shape { int rows, cols; };
  for (Shape s : {Shape{1, 1}, Shape{1, 17}, Shape{17, 1}, Shape{7, 9},
                  Shape{8, 8}, Shape{9, 7}, Shape{16, 16}, Shape{33, 25},
                  Shape{25, 33}, Shape{88, 72}}) {
    const int src_stride = s.cols + 3;  // strides larger than the row length
    const int dst_stride = s.rows + 2;
    const auto src = randv(s.rows * src_stride, 100 + s.rows);
    std::vector<float> dst(static_cast<std::size_t>(s.cols) * dst_stride, -7.0f);
    simd::transpose_f32(src.data(), s.rows, s.cols, src_stride, dst.data(),
                        dst_stride);
    for (int r = 0; r < s.rows; ++r) {
      for (int c = 0; c < s.cols; ++c) {
        ASSERT_EQ(float_bits(src[r * src_stride + c]),
                  float_bits(dst[c * dst_stride + r]))
            << s.rows << "x" << s.cols << " r=" << r << " c=" << c;
      }
    }
    // Padding between destination rows must be untouched.
    for (int c = 0; c < s.cols; ++c) {
      for (int p = s.rows; p < dst_stride; ++p) {
        ASSERT_EQ(dst[c * dst_stride + p], -7.0f);
      }
    }
  }
}

// Round trip: transposing twice restores the source bit-for-bit.
TEST(TransposeF32, RoundTrip) {
  const int rows = 29, cols = 43;
  const auto src = randv(rows * cols, 55);
  std::vector<float> t(static_cast<std::size_t>(cols) * rows);
  std::vector<float> back(static_cast<std::size_t>(rows) * cols);
  simd::transpose_f32(src.data(), rows, cols, cols, t.data(), rows);
  simd::transpose_f32(t.data(), cols, rows, rows, back.data(), cols);
  expect_bit_identical(src, back, "transpose round trip");
}

// Signed zeros: the old arithmetic blend (a*t + b*(1-t)) lost -0.0; exact
// selection must preserve it bit-for-bit in every flavour.
TEST(SelectByMagnitudeEdge, PreservesSignedZeros) {
  const int n = 8;
  std::vector<float> a_re(n, -0.0f), a_im(n, 0.0f);
  std::vector<float> b_re(n, 1.0f), b_im(n, -1.0f);
  std::vector<float> mag_a(n, 2.0f), mag_b(n, 1.0f);  // always take a
  std::vector<float> re(n), im(n);
  simd::select_by_magnitude_simd(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                                 mag_a.data(), mag_b.data(), n, re.data(), im.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(float_bits(re[i]), float_bits(-0.0f)) << i;
    EXPECT_EQ(float_bits(im[i]), float_bits(0.0f)) << i;
  }
}

// The dispatch table must expose exactly the three flavours, default to the
// bit-identical "simd" set, and reject unknown names without changing state.
TEST(KernelDispatch, NamedSetsAndDefault) {
  EXPECT_STREQ(simd::active_kernels().name, "simd");
  EXPECT_STREQ(simd::scalar_kernels().name, "scalar");
  EXPECT_STREQ(simd::autovec_kernels().name, "autovec");
  EXPECT_FALSE(simd::set_active_kernels("avx999"));
  EXPECT_STREQ(simd::active_kernels().name, "simd");
  EXPECT_TRUE(simd::set_active_kernels("autovec"));
  EXPECT_STREQ(simd::active_kernels().name, "autovec");
  EXPECT_TRUE(simd::set_active_kernels("simd"));
  EXPECT_STREQ(simd::active_kernels().name, "simd");
}

// Odd lengths exercise the SIMD tail path; 44 and 1024 are the bench sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, KernelEquivalence,
                         ::testing::Values(1, 3, 7, 44, 101, 1024));

}  // namespace

// Clock, AXI transfer, and driver/accelerator model checks.
#include <gtest/gtest.h>

#include "src/hw/axi.h"
#include "src/hw/clock.h"
#include "src/hw/driver.h"

namespace {

using namespace vf;

TEST(Clock, Zc702Domains) {
  EXPECT_DOUBLE_EQ(hw::ps_clock().hz(), 533e6);
  EXPECT_DOUBLE_EQ(hw::pl_clock().hz(), 100e6);
  EXPECT_NEAR(hw::ps_clock().cycles(533).us(), 1.0, 1e-9);
  EXPECT_NEAR(hw::pl_clock().cycles(100).us(), 1.0, 1e-9);
}

TEST(Axi, GpPortCostsTwentyFiveCyclesPerWord) {
  const hw::GpPortModel gp;
  EXPECT_DOUBLE_EQ(gp.cycles_for_words(1), 25.0);
  EXPECT_DOUBLE_EQ(gp.cycles_for_words(100), 2500.0);
}

TEST(Axi, AcpDmaBeatsGpPortForLinePayloads) {
  const hw::GpPortModel gp;
  const hw::AcpDmaModel acp;
  const hw::ClockDomain ps = hw::ps_clock();
  const hw::ClockDomain pl = hw::pl_clock();
  // Despite the 5.3x slower clock, the DMA wins on every wavelet-line-sized
  // payload the pipeline ships.
  for (int words : {36, 102, 190, 2062, 6336}) {
    const double gp_us = ps.cycles(gp.cycles_for_words(words)).us();
    const double acp_us = pl.cycles(acp.cycles_for_words(words)).us();
    EXPECT_LT(acp_us, gp_us) << words;
  }
  // And the advantage grows with payload size.
  const double r_small = ps.cycles(gp.cycles_for_words(36)).us() /
                         pl.cycles(acp.cycles_for_words(36)).us();
  const double r_large = ps.cycles(gp.cycles_for_words(6336)).us() /
                         pl.cycles(acp.cycles_for_words(6336)).us();
  EXPECT_GT(r_large, r_small);
  EXPECT_GT(r_large, 8.0);
}

TEST(Driver, DoubleBufferingHidesComputeBehindTransfers) {
  const hw::WaveletEngineConfig engine;
  driver::DriverCosts single;
  single.double_buffering = false;
  driver::DriverCosts dual;
  dual.double_buffering = true;
  driver::WaveletAccelerator a_single(engine, single);
  driver::WaveletAccelerator a_dual(engine, dual);
  const SimDuration t_single = a_single.line_time(102, 88, 2 * 44 + 14);
  const SimDuration t_dual = a_dual.line_time(102, 88, 2 * 44 + 14);
  EXPECT_LT(t_dual.sec(), t_single.sec());
  EXPECT_LT(a_dual.stall_time().sec(), a_single.stall_time().sec());
}

TEST(Driver, InterruptCompletionCostsMoreThanPollingForShortLines) {
  const hw::WaveletEngineConfig engine;
  driver::DriverCosts poll;
  driver::DriverCosts irq;
  irq.completion = driver::CompletionMode::kInterrupt;
  driver::WaveletAccelerator a_poll(engine, poll);
  driver::WaveletAccelerator a_irq(engine, irq);
  EXPECT_LT(a_poll.line_time(50, 36, 50).sec(), a_irq.line_time(50, 36, 50).sec());
}

TEST(Driver, GpPortTransferSlowsTheLineDown) {
  const hw::WaveletEngineConfig engine;
  driver::DriverCosts acp;
  driver::DriverCosts gp;
  gp.transfer = driver::TransferMode::kGpPort;
  driver::WaveletAccelerator a_acp(engine, acp);
  driver::WaveletAccelerator a_gp(engine, gp);
  EXPECT_LT(a_acp.line_time(190, 176, 190).sec(), a_gp.line_time(190, 176, 190).sec());
}

TEST(Driver, LineCostDecompositionSumsToLineTime) {
  const hw::WaveletEngineConfig engine;
  const driver::DriverCosts costs;
  const driver::LineCost cost = driver::line_cost(engine, costs, 102, 88, 190.0);
  EXPECT_GT(cost.driver.sec(), 0.0);
  EXPECT_GT(cost.input.sec(), 0.0);
  EXPECT_GT(cost.compute.sec(), 0.0);
  EXPECT_GT(cost.output.sec(), 0.0);

  driver::WaveletAccelerator accel(engine, costs);
  const SimDuration total = accel.line_time(102, 88, 190.0);
  const SimDuration stall = cost.compute > cost.input
                                ? cost.compute - cost.input
                                : SimDuration::zero();
  EXPECT_DOUBLE_EQ(total.sec(),
                   (cost.driver + cost.input + stall + cost.output).sec());
  // The PS/PL split partitions the total exactly.
  EXPECT_DOUBLE_EQ(accel.last_line_ps_time().sec() + accel.last_line_pl_time().sec(),
                   total.sec());
  // ACP DMA path: only the driver entry is PS-resident.
  EXPECT_DOUBLE_EQ(accel.last_line_ps_time().sec(), cost.driver.sec());
}

TEST(Driver, GpPortTransfersArePsResident) {
  driver::DriverCosts costs;
  costs.transfer = driver::TransferMode::kGpPort;
  driver::WaveletAccelerator accel({}, costs);
  accel.line_time(102, 88, 190.0);
  const driver::LineCost cost = driver::line_cost({}, costs, 102, 88, 190.0);
  EXPECT_DOUBLE_EQ(accel.last_line_ps_time().sec(),
                   (cost.driver + cost.input + cost.output).sec());
}

TEST(Driver, DefaultCostsMatchTheNamedConstants) {
  const driver::DriverCosts costs;
  EXPECT_DOUBLE_EQ(costs.call_overhead_ps_cycles, hw::cost::kDriverCallPsCycles);
  EXPECT_DOUBLE_EQ(costs.poll_ps_cycles, hw::cost::kStatusPollPsCycles);
  EXPECT_DOUBLE_EQ(costs.expected_polls, hw::cost::kExpectedPollsPerCall);
  EXPECT_DOUBLE_EQ(costs.irq_latency_ps_cycles, hw::cost::kIrqLatencyPsCycles);
  // II=2 engine schedule: pipeline fill of `slots`, then one pair per 2.
  EXPECT_DOUBLE_EQ(hw::cost::engine_compute_cycles(44, 14), 2.0 * 44 + 14);
}

TEST(Driver, AccumulatorsTrackLines) {
  driver::WaveletAccelerator accel({}, {});
  EXPECT_EQ(accel.lines(), 0);
  accel.line_time(102, 88, 100);
  accel.line_time(58, 44, 58);
  EXPECT_EQ(accel.lines(), 2);
  EXPECT_GT(accel.busy_time().sec(), 0.0);
  accel.reset();
  EXPECT_EQ(accel.lines(), 0);
  EXPECT_DOUBLE_EQ(accel.busy_time().sec(), 0.0);
}

}  // namespace

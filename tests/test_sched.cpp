// Scheduler behavior: the paper's crossovers and the adaptive router.
#include <gtest/gtest.h>

#include "src/sched/adaptive.h"
#include "src/sched/calibrate.h"

namespace {

using namespace vf;

TEST(FrameSweep, PaperSizesAndLabels) {
  const auto sizes = sched::paper_frame_sizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front().label(), "32x24");
  EXPECT_EQ(sizes.back().label(), "88x72");
}

TEST(FrameSweep, FramesAreDeterministicAndInRange) {
  const auto a = sched::make_sweep_frames({40, 40}, 2);
  const auto b = sched::make_sweep_frames({40, 40}, 2);
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t f = 0; f < a.size(); ++f) {
    for (std::size_t i = 0; i < a[f].visible.size(); ++i) {
      EXPECT_EQ(a[f].visible.data()[i], b[f].visible.data()[i]);
      EXPECT_GE(a[f].visible.data()[i], 0.0f);
      EXPECT_LE(a[f].visible.data()[i], 1.0f);
    }
  }
  // Consecutive frames differ (the thermal target drifts).
  double diff = 0.0;
  for (std::size_t i = 0; i < a[0].thermal.size(); ++i) {
    diff += std::abs(a[0].thermal.data()[i] - a[1].thermal.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Probe, DeterministicModeledTimes) {
  sched::NeonBackend b1, b2;
  const auto r1 = sched::probe_backend(b1, {35, 35}, 2);
  const auto r2 = sched::probe_backend(b2, {35, 35}, 2);
  EXPECT_DOUBLE_EQ(r1.total.sec(), r2.total.sec());
  EXPECT_DOUBLE_EQ(r1.energy_mj, r2.energy_mj);
  EXPECT_GT(r1.forward.sec(), 0.0);
  EXPECT_GT(r1.inverse.sec(), 0.0);
}

TEST(Crossover, NeonWinsBelowFpgaWinsAbove) {
  // The paper's Fig. 9 break point sits between 35x35 and 40x40.
  sched::NeonBackend neon_s, neon_l;
  sched::FpgaBackend fpga_s, fpga_l;
  const auto ns = sched::probe_backend(neon_s, {35, 35}, 4);
  const auto fs = sched::probe_backend(fpga_s, {35, 35}, 4);
  EXPECT_LT(ns.total.sec(), fs.total.sec()) << "NEON must win below the break point";
  const auto nl = sched::probe_backend(neon_l, {88, 72}, 4);
  const auto fl = sched::probe_backend(fpga_l, {88, 72}, 4);
  EXPECT_LT(fl.total.sec(), nl.total.sec()) << "FPGA must win above the break point";
}

TEST(Crossover, EnergyBreakPointIsLaterThanTimeBreakPoint) {
  // At 40x40 the FPGA already wins on time but its +19.2 mW static draw
  // keeps NEON ahead on energy (paper: energy break between 40x40 and 64x48).
  sched::NeonBackend neon40, neon64;
  sched::FpgaBackend fpga40, fpga64;
  const auto n40 = sched::probe_backend(neon40, {40, 40}, 4);
  const auto f40 = sched::probe_backend(fpga40, {40, 40}, 4);
  EXPECT_LT(f40.total.sec(), n40.total.sec());
  EXPECT_LT(n40.energy_mj, f40.energy_mj);
  const auto n64 = sched::probe_backend(neon64, {64, 48}, 4);
  const auto f64 = sched::probe_backend(fpga64, {64, 48}, 4);
  EXPECT_LT(f64.energy_mj, n64.energy_mj);
}

TEST(Crossover, FpgaAndAdaptiveEnergyBeatArmAtFullFrame) {
  sched::ArmBackend arm;
  sched::FpgaBackend fpga;
  sched::AdaptiveBackend adaptive;
  const auto ra = sched::probe_backend(arm, {88, 72}, 4);
  const auto rf = sched::probe_backend(fpga, {88, 72}, 4);
  const auto rx = sched::probe_backend(adaptive, {88, 72}, 4);
  EXPECT_LT(rf.energy_mj, ra.energy_mj);
  EXPECT_LT(rx.energy_mj, ra.energy_mj);
}

TEST(Adaptive, RoutesAllLinesToNeonBelowTheCrossover) {
  sched::AdaptiveBackend backend;  // calibrated default threshold
  sched::probe_backend(backend, {32, 24}, 2);
  EXPECT_EQ(backend.router().lines_on_fpga(), 0);
  EXPECT_GT(backend.router().lines_on_simd(), 0);
}

TEST(Adaptive, RoutesLongLinesToFpgaAboveTheCrossover) {
  sched::AdaptiveBackend backend;
  sched::probe_backend(backend, {88, 72}, 2);
  EXPECT_GT(backend.router().lines_on_fpga(), 0);
  // Deep-level short lines stay on NEON.
  EXPECT_GT(backend.router().lines_on_simd(), 0);
}

TEST(Adaptive, NeverWorseThanBestStaticAcrossTheSweep) {
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    sched::NeonBackend neon;
    sched::FpgaBackend fpga;
    sched::AdaptiveBackend adaptive;
    const auto rn = sched::probe_backend(neon, size, 2);
    const auto rf = sched::probe_backend(fpga, size, 2);
    const auto rx = sched::probe_backend(adaptive, size, 2);
    const double best = std::min(rn.total.sec(), rf.total.sec());
    EXPECT_LE(rx.total.sec(), best * 1.005) << size.label();
  }
}

TEST(Adaptive, BeatsStaticFpgaAtFullFrame) {
  sched::FpgaBackend fpga;
  sched::AdaptiveBackend adaptive;
  const auto rf = sched::probe_backend(fpga, {88, 72}, 2);
  const auto rx = sched::probe_backend(adaptive, {88, 72}, 2);
  EXPECT_LT(rx.total.sec(), rf.total.sec());
}

TEST(Adaptive, ThresholdExtremesMatchStaticEngines) {
  sched::RunConfig all_fpga;
  all_fpga.adaptive_threshold_samples = 0;
  sched::AdaptiveBackend bx(all_fpga);
  sched::FpgaBackend bf;
  const auto rx = sched::probe_backend(bx, {64, 48}, 2);
  const auto rf = sched::probe_backend(bf, {64, 48}, 2);
  EXPECT_NEAR(rx.forward.sec(), rf.forward.sec(), 1e-12);
  EXPECT_NEAR(rx.inverse.sec(), rf.inverse.sec(), 1e-12);

  sched::RunConfig all_neon;
  all_neon.adaptive_threshold_samples = 1 << 20;
  sched::AdaptiveBackend bn(all_neon);
  sched::NeonBackend neon;
  const auto rn1 = sched::probe_backend(bn, {64, 48}, 2);
  const auto rn2 = sched::probe_backend(neon, {64, 48}, 2);
  EXPECT_NEAR(rn1.forward.sec(), rn2.forward.sec(), 1e-12);
}

TEST(Calibrate, PicksAMidRangeThreshold) {
  const auto cal =
      sched::calibrate_adaptive_threshold(sched::CrossoverMetric::kTotalTime, {}, 1);
  // All-FPGA and all-NEON must both lose to a mixed routing.
  EXPECT_GT(cal.best_threshold, 0);
  EXPECT_LT(cal.best_threshold, 1 << 20);
  ASSERT_EQ(cal.candidates.size(), cal.costs.size());
}

}  // namespace

// Fleet scheduler tests (PR 7): admission under saturation, engine stealing,
// queue-overflow drops, the 1-stream == run_pipelined bit-identity contract,
// and determinism at any host pool width.
#include <gtest/gtest.h>

#include "src/hw/fixed_point.h"
#include "src/sched/fleet.h"
#include "src/sched/pipeline.h"

namespace vf {
namespace {

sched::StreamConfig camera_stream(const sched::FrameSize& size, int frames,
                                  double fps) {
  sched::StreamConfig s;
  s.backend = sched::BackendKind::kFpgaBatched;
  s.run.frame_size = size;
  s.run.frames = frames;
  s.arrival.fps = fps;
  s.arrival.jitter_frac = 0.2;
  return s;
}

// --- Table-I engine fit ------------------------------------------------------

TEST(EngineFit, FloatDatapathFitsOnceFixedPointSeveralTimes) {
  const hw::DevicePart part;
  const int float_fit = hw::max_engine_instances(
      part, hw::estimate_engine_resources(hw::WaveletEngineConfig{}));
  const int fixed_fit = hw::max_engine_instances(
      part, hw::estimate_engine_resources_fixed(hw::WaveletEngineConfig{},
                                                hw::FixedPointFormat{}));
  EXPECT_EQ(float_fit, 1);  // Table I: 59% of slices per instance
  EXPECT_GE(fixed_fit, 4);
  EXPECT_LE(fixed_fit, 16);
}

// --- backend factory ---------------------------------------------------------

TEST(BackendFactory, BuildsEveryKindWithMatchingNameAndMode) {
  const struct {
    sched::BackendKind kind;
    const char* name;
    power::ComputeMode mode;
  } cases[] = {
      {sched::BackendKind::kArm, "ARM", power::ComputeMode::kArmOnly},
      {sched::BackendKind::kNeon, "NEON", power::ComputeMode::kArmNeon},
      {sched::BackendKind::kFpga, "FPGA", power::ComputeMode::kArmFpga},
      {sched::BackendKind::kFpgaBatched, "FPGA+batch",
       power::ComputeMode::kArmFpga},
      {sched::BackendKind::kAdaptive, "Adaptive", power::ComputeMode::kArmFpga},
  };
  for (const auto& c : cases) {
    const auto backend = sched::make_backend(c.kind, sched::RunConfig{});
    ASSERT_NE(backend, nullptr);
    EXPECT_STREQ(backend->name(), c.name);
    EXPECT_STREQ(sched::backend_name(c.kind), c.name);
    EXPECT_EQ(backend->compute_mode(), c.mode);
  }
}

// --- 1-stream fleet == run_pipelined ----------------------------------------

// The contract that keeps the fleet honest: with one stream, every frame
// ready at t=0, an unbounded queue, one core and one engine, run_fleet must
// reproduce run_pipelined's overlapped schedule bit-for-bit — makespan,
// busy times, and both energy integrals as exact doubles.
TEST(Fleet, OneStreamReproducesRunPipelinedBitForBit) {
  const sched::FrameSize size{88, 72};
  const int frames = 6;

  sched::RunConfig run;
  run.frame_size = size;
  run.frames = frames;
  sched::BatchedFpgaBackend backend(run);
  const sched::PipelineRunResult piped =
      sched::run_pipelined(backend, sched::make_sweep_frames(size, frames));

  sched::StreamConfig stream;
  stream.backend = sched::BackendKind::kFpgaBatched;
  stream.run = run;
  stream.arrival.fps = 0.0;  // batch mode: everything ready at t=0
  stream.queue_depth = 0;    // unbounded, as run_pipelined has no admission
  sched::FleetConfig fleet;
  fleet.engines = 1;
  fleet.cores = 1;
  fleet.pipeline_depth = 4;
  const sched::FleetResult r = sched::run_fleet({stream}, fleet);

  EXPECT_TRUE(r.makespan == piped.makespan)
      << r.makespan.sec() << " vs " << piped.makespan.sec();
  EXPECT_TRUE(r.ps_busy == piped.ps_busy);
  EXPECT_TRUE(r.pl_busy == piped.pl_busy);
  EXPECT_EQ(r.energy_mj, piped.energy_mj);
  EXPECT_EQ(r.energy_gated_mj, piped.energy_gated_mj);
  ASSERT_EQ(r.streams.size(), 1u);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.completed, frames);
  EXPECT_TRUE(r.streams[0].last_completion == piped.makespan);
}

// --- admission / drops -------------------------------------------------------

TEST(Fleet, BoundedQueueDropsUnderSaturationDeterministically) {
  // Two 120 fps cameras at the full frame on a single engine: far beyond the
  // sustainable rate, so the bounded queues must shed frames.
  std::vector<sched::StreamConfig> streams = {
      camera_stream({88, 72}, 12, 120.0), camera_stream({88, 72}, 12, 120.0)};
  for (auto& s : streams) s.queue_depth = 2;
  sched::FleetConfig fleet;
  fleet.engines = 1;
  const sched::FleetResult a = sched::run_fleet(streams, fleet);
  EXPECT_GT(a.dropped, 0);
  EXPECT_EQ(a.arrived, 24);
  EXPECT_EQ(a.admitted + a.dropped, a.arrived);
  EXPECT_EQ(a.completed, a.admitted);
  for (const sched::StreamStats& s : a.streams) {
    EXPECT_EQ(s.arrived, 12);
    EXPECT_EQ(s.admitted + s.dropped, s.arrived);
    EXPECT_TRUE(s.p50_latency <= s.p99_latency);
    EXPECT_TRUE(s.p99_latency <= s.max_latency);
  }

  // Same inputs, same schedule: the whole run is a pure function.
  const sched::FleetResult b = sched::run_fleet(streams, fleet);
  EXPECT_TRUE(a.makespan == b.makespan);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
}

TEST(Fleet, UnboundedQueueNeverDrops) {
  std::vector<sched::StreamConfig> streams = {
      camera_stream({64, 48}, 8, 120.0), camera_stream({64, 48}, 8, 120.0)};
  for (auto& s : streams) s.queue_depth = 0;
  sched::FleetConfig fleet;
  fleet.engines = 1;
  const sched::FleetResult r = sched::run_fleet(streams, fleet);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.completed, 16);
}

// --- engine stealing ---------------------------------------------------------

// Synthetic stage costs make the placement arithmetic exact: three streams
// of pure-PL frames over two engines. Home placement maps streams 0 and 2
// onto engine 0 (16 frames x 10 ms serialized); stealing balances the same
// work across both engines.
TEST(Fleet, StealingIdleEnginesBalancesTheLoad) {
  using sched::detail::FleetStreamInput;
  const SimDuration stage = SimDuration::milliseconds(10);
  const std::array<sched::detail::FleetStageCost, 4> frame_cost = {{
      {SimDuration::zero(), stage},
      {SimDuration::zero(), stage},
      {SimDuration::zero(), stage},
      {SimDuration::zero(), stage},
  }};
  std::vector<FleetStreamInput> inputs(3);
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    inputs[s].arrivals.assign(4, SimDuration::zero());
    inputs[s].cost.assign(4, frame_cost);
    inputs[s].home_engine = static_cast<int>(s);
  }
  const auto stolen = sched::detail::schedule_fleet(
      inputs, /*cores=*/1, /*engines=*/2, /*pipeline_depth=*/4,
      /*steal_engines=*/true, 0.0);
  const auto pinned = sched::detail::schedule_fleet(
      inputs, /*cores=*/1, /*engines=*/2, /*pipeline_depth=*/4,
      /*steal_engines=*/false, 0.0);
  // 48 stage events x 10 ms over two engines: perfectly balanced when
  // stealing (240 ms); pinned, engine 0 serializes streams 0 and 2 (320 ms).
  // 10 ms is not binary-exact, so the chained additions need an ulp-scale
  // tolerance rather than exact equality.
  EXPECT_NEAR(stolen.timeline.makespan().ms(), 240.0, 1e-9);
  EXPECT_NEAR(pinned.timeline.makespan().ms(), 320.0, 1e-9);
}

// --- NEON spill --------------------------------------------------------------

TEST(Fleet, SaturatedEngineSpillsFramesToNeonCosts) {
  // Four full-frame cameras against one engine with the spill enabled: some
  // frames must fall back to the NEON cost model, and with unbounded queues
  // every frame still completes.
  std::vector<sched::StreamConfig> streams(4, camera_stream({88, 72}, 6, 30.0));
  for (auto& s : streams) s.queue_depth = 0;
  sched::FleetConfig fleet;
  fleet.engines = 1;
  fleet.spill_wait_frac = 0.5;
  const sched::FleetResult r = sched::run_fleet(streams, fleet);
  int spilled = 0;
  for (const sched::StreamStats& s : r.streams) spilled += s.spilled;
  EXPECT_GT(spilled, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.completed, 24);
}

// --- determinism across host pool widths -------------------------------------

TEST(Fleet, ModeledResultInvariantAcrossThreads) {
  sched::FleetResult ref;
  const int widths[] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    std::vector<sched::StreamConfig> streams = {
        camera_stream({64, 48}, 5, 30.0), camera_stream({32, 24}, 5, 60.0)};
    for (auto& s : streams) s.run.host.threads = widths[i];
    sched::FleetConfig fleet;
    fleet.engines = 2;
    fleet.fixed_point_engines = true;
    fleet.spill_wait_frac = 0.5;
    const sched::FleetResult r = sched::run_fleet(streams, fleet);
    if (i == 0) {
      ref = r;
      continue;
    }
    EXPECT_TRUE(r.makespan == ref.makespan) << "threads=" << widths[i];
    EXPECT_EQ(r.dropped, ref.dropped);
    EXPECT_EQ(r.energy_mj, ref.energy_mj);
    EXPECT_EQ(r.energy_gated_mj, ref.energy_gated_mj);
    ASSERT_EQ(r.streams.size(), ref.streams.size());
    for (std::size_t s = 0; s < r.streams.size(); ++s) {
      EXPECT_TRUE(r.streams[s].p50_latency == ref.streams[s].p50_latency);
      EXPECT_TRUE(r.streams[s].p99_latency == ref.streams[s].p99_latency);
      EXPECT_EQ(r.streams[s].energy_mj, ref.streams[s].energy_mj);
    }
  }
}

// Arrival jitter is part of the model, not noise: the same stream config
// always produces the same arrival times, and jitter keeps arrivals strictly
// increasing (jitter_frac < 1 bounds each frame's offset under one period).
TEST(Fleet, ArrivalsAreDeterministicAndMonotonic) {
  const sched::StreamConfig s = camera_stream({32, 24}, 8, 30.0);
  const sched::FleetResult a = sched::run_fleet({s});
  const sched::FleetResult b = sched::run_fleet({s});
  EXPECT_TRUE(a.makespan == b.makespan);
  ASSERT_EQ(a.streams.size(), 1u);
  EXPECT_EQ(a.streams[0].arrived, 8);
  EXPECT_EQ(a.streams[0].completed + a.streams[0].dropped, 8);
}

}  // namespace
}  // namespace vf

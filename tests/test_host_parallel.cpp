// Host-parallel execution contract (thread_pool.h + the parallel transform
// paths): any --threads width computes bit-identical numerics AND leaves the
// modeled ZC702 output bit-identical, because accounting replays serially in
// canonical order. These tests pin both halves of that contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/fusion/fuse.h"
#include "src/sched/adaptive.h"
#include "src/sched/pipeline.h"
#include "src/simd/dispatch.h"

namespace {

using namespace vf;

// --- pool mechanics ---------------------------------------------------------

TEST(ThreadPool, StaticPartitionCoversRangeOnce) {
  ThreadPool pool(4);
  for (int n : {1, 2, 3, 4, 5, 7, 16, 61, 72, 88}) {
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    std::vector<std::pair<int, int>> chunks;
    std::mutex m;
    pool.parallel_for(0, n, [&](int b, int e) {
      std::lock_guard<std::mutex> lock(m);
      chunks.emplace_back(b, e);
      for (int i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
    });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << i;
    // Static partition: sorted chunks tile [0, n) contiguously, sizes differ
    // by at most one, and there are min(threads, n) of them.
    std::sort(chunks.begin(), chunks.end());
    EXPECT_EQ(static_cast<int>(chunks.size()), std::min(4, n));
    int expect_begin = 0, min_sz = n, max_sz = 0;
    for (const auto& [b, e] : chunks) {
      EXPECT_EQ(b, expect_begin);
      expect_begin = e;
      min_sz = std::min(min_sz, e - b);
      max_sz = std::max(max_sz, e - b);
    }
    EXPECT_EQ(expect_begin, n);
    EXPECT_LE(max_sz - min_sz, 1);
  }
}

TEST(ThreadPool, OffsetRangeAndEmptyRange) {
  ThreadPool pool(3);
  std::vector<int> hits(10, 0);
  pool.parallel_for(4, 9, [&](int b, int e) {
    for (int i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)],
                                         i >= 4 && i < 9 ? 1 : 0);
  bool called = false;
  pool.parallel_for(5, 5, [&](int, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_chunks{0};
  std::atomic<int> outer_chunks{0};
  pool.parallel_for(0, 4, [&](int b, int e) {
    ++outer_chunks;
    // From a worker the nested call must run the whole range as one inline
    // chunk — no new job submission, no deadlock.
    pool.parallel_for(0, 8, [&](int ib, int ie) {
      ++inner_chunks;
      EXPECT_EQ(ib, 0);
      EXPECT_EQ(ie, 8);
    });
    (void)b;
    (void)e;
  });
  EXPECT_EQ(outer_chunks.load(), 4);
  EXPECT_EQ(inner_chunks.load(), 4);
}

TEST(HostPoolRegistry, SerialWidthsHaveNoPool) {
  // Library default is serial: HostConfig{} resolves to 1 thread -> nullptr.
  EXPECT_EQ(host::default_threads(), 1);
  EXPECT_EQ(host::pool(HostConfig{}), nullptr);
  EXPECT_EQ(host::pool(HostConfig{1}), nullptr);
  ThreadPool* p4 = host::pool(HostConfig{4});
  if (host::kMaxThreads == 1) {
    EXPECT_EQ(p4, nullptr);  // -DVF_THREADS=1 build: threading compiled out
  } else {
    ASSERT_NE(p4, nullptr);
    EXPECT_EQ(p4->threads(),
              host::kMaxThreads > 0 ? std::min(4, host::kMaxThreads) : 4);
    EXPECT_EQ(host::pool(HostConfig{4}), p4);  // registry caches per width
  }
}

// --- bit-identity across thread counts --------------------------------------

std::uint64_t fnv1a(const float* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n * sizeof(float); ++i) {
    h ^= reinterpret_cast<const unsigned char*>(data)[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_image(const image::ImageF& img) {
  return fnv1a(img.data(), img.size());
}

const int kThreadWidths[] = {1, 2, 8};

// Fused image bits must not depend on the host pool width.
TEST(HostParallelIdentity, FusedImageBitsInvariantAcrossThreads) {
  const auto frames = sched::make_sweep_frames({88, 72}, 1);
  std::uint64_t ref_hash = 0;
  for (int n : kThreadWidths) {
    dwt::SimdLineFilter filter{HostConfig{n}};
    const image::ImageF fused =
        fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, filter);
    const std::uint64_t h = hash_image(fused);
    if (n == 1) {
      ref_hash = h;
    } else {
      EXPECT_EQ(h, ref_hash) << "threads=" << n;
    }
  }
}

// MAC statistics are accounting: replayed serially, so totals are exactly
// equal (not merely close) at any width.
TEST(HostParallelIdentity, FilterStatsInvariantAcrossThreads) {
  const auto frames = sched::make_sweep_frames({64, 48}, 1);
  dwt::ScalarLineFilter serial;
  (void)fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, serial);
  for (int n : {2, 8}) {
    dwt::ScalarLineFilter pooled{HostConfig{n}};
    const image::ImageF fused =
        fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, pooled);
    EXPECT_EQ(pooled.stats().analysis_macs, serial.stats().analysis_macs);
    EXPECT_EQ(pooled.stats().synthesis_macs, serial.stats().synthesis_macs);
    EXPECT_EQ(pooled.stats().analysis_lines, serial.stats().analysis_lines);
    EXPECT_EQ(pooled.stats().synthesis_lines, serial.stats().synthesis_lines);
    (void)fused;
  }
}

// Every modeled backend: probe totals and energy bit-identical at any width.
TEST(HostParallelIdentity, ModeledProbeInvariantAcrossThreads) {
  const sched::FrameSize size{88, 72};
  const int frames = 2;
  struct Case {
    const char* name;
    sched::ProbeResult result[3];
  };
  std::vector<Case> cases;
  for (int i = 0; i < 3; ++i) {
    const HostConfig host{kThreadWidths[i]};
    std::size_t c = 0;
    auto record = [&](const char* name, sched::TransformBackend& b) {
      if (i == 0) cases.push_back({name, {}});
      cases[c++].result[i] = sched::probe_backend(b, size, frames);
    };
    sched::RunConfig run;
    run.host = host;
    const sched::BackendKind kinds[] = {
        sched::BackendKind::kArm, sched::BackendKind::kNeon,
        sched::BackendKind::kFpga, sched::BackendKind::kFpgaBatched,
        sched::BackendKind::kAdaptive};
    for (const sched::BackendKind kind : kinds) {
      const auto b = sched::make_backend(kind, run);
      record(sched::backend_name(kind), *b);
    }
  }
  for (const Case& c : cases) {
    for (int i = 1; i < 3; ++i) {
      EXPECT_TRUE(c.result[i].total == c.result[0].total)
          << c.name << " threads=" << kThreadWidths[i] << " total "
          << c.result[i].total.sec() << " vs " << c.result[0].total.sec();
      EXPECT_TRUE(c.result[i].forward == c.result[0].forward) << c.name;
      EXPECT_TRUE(c.result[i].inverse == c.result[0].inverse) << c.name;
      EXPECT_EQ(c.result[i].energy_mj, c.result[0].energy_mj) << c.name;
    }
  }
}

// The event-queue pipeline schedule too: makespan/ledger/energy bit-identical.
TEST(HostParallelIdentity, PipelinedRunInvariantAcrossThreads) {
  const auto stream = sched::make_sweep_frames({88, 72}, 4);
  sched::PipelineRunResult ref;
  for (int i = 0; i < 3; ++i) {
    sched::RunConfig rc;
    rc.host.threads = kThreadWidths[i];
    sched::BatchedFpgaBackend backend(rc);
    const sched::PipelineRunResult run = sched::run_pipelined(backend, stream);
    if (i == 0) {
      ref = run;
      continue;
    }
    EXPECT_TRUE(run.makespan == ref.makespan) << "threads=" << kThreadWidths[i];
    EXPECT_TRUE(run.serial_total == ref.serial_total);
    EXPECT_TRUE(run.ps_busy == ref.ps_busy);
    EXPECT_TRUE(run.pl_busy == ref.pl_busy);
    EXPECT_EQ(run.energy_mj, ref.energy_mj);
    EXPECT_EQ(run.energy_gated_mj, ref.energy_gated_mj);
  }
}

// --- bit-identity across host memory layouts ---------------------------------

struct LayoutRestore {
  ~LayoutRestore() { dwt::set_host_layout(dwt::HostLayout::kFused); }
};

const dwt::HostLayout kLayouts[] = {dwt::HostLayout::kNaive,
                                    dwt::HostLayout::kTiled,
                                    dwt::HostLayout::kFused};

// The tiled and band-streaming-fused paths are pure layout changes: per-line
// arithmetic order is pinned by the _ml delegation contract, so fused bits
// must match the naive per-line path exactly — at sizes that are all tile
// tail (1xN), straddle the 8x8 tile edge (9x7, 33x25), have odd rows at
// scale (88x71), and at the paper's largest frame, for every pool width.
TEST(HostLayoutIdentity, AllLayoutsFuseIdenticalBits) {
  LayoutRestore restore;
  const sched::FrameSize sizes[] = {{9, 7},  {33, 25}, {1, 16},
                                    {16, 1}, {88, 71}, {88, 72}};
  for (const sched::FrameSize& size : sizes) {
    const auto frames = sched::make_sweep_frames(size, 1);
    for (int n : kThreadWidths) {
      std::uint64_t hash[3] = {0, 0, 0};
      for (int layout = 0; layout < 3; ++layout) {
        dwt::set_host_layout(kLayouts[layout]);
        dwt::SimdLineFilter filter{HostConfig{n}};
        hash[layout] = hash_image(
            fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, filter));
        EXPECT_EQ(hash[layout], hash[0])
            << size.width << "x" << size.height << " threads=" << n
            << " layout=" << dwt::host_layout_name(kLayouts[layout]);
      }
    }
  }
}

// MAC statistics across layouts: the fused plan's accounting replay must
// emit exactly the staged sequence (same line counts, same per-line shapes).
TEST(HostLayoutIdentity, FilterStatsInvariantAcrossLayouts) {
  LayoutRestore restore;
  const auto frames = sched::make_sweep_frames({33, 25}, 1);
  dwt::FilterStats ref;
  for (int layout = 0; layout < 3; ++layout) {
    dwt::set_host_layout(kLayouts[layout]);
    dwt::ScalarLineFilter filter{HostConfig{2}};
    (void)fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, filter);
    if (layout == 0) {
      ref = filter.stats();
      continue;
    }
    EXPECT_EQ(filter.stats().analysis_macs, ref.analysis_macs);
    EXPECT_EQ(filter.stats().synthesis_macs, ref.synthesis_macs);
    EXPECT_EQ(filter.stats().analysis_lines, ref.analysis_lines);
    EXPECT_EQ(filter.stats().synthesis_lines, ref.synthesis_lines);
  }
}

// Every modeled backend's probe totals must not notice the layout either:
// all three paths replay the same canonical account_*()/barrier() sequence.
TEST(HostLayoutIdentity, ModeledProbeInvariantAcrossLayouts) {
  LayoutRestore restore;
  const sched::FrameSize size{64, 48};
  const sched::BackendKind kinds[] = {
      sched::BackendKind::kArm, sched::BackendKind::kNeon,
      sched::BackendKind::kFpga, sched::BackendKind::kFpgaBatched,
      sched::BackendKind::kAdaptive};
  for (const sched::BackendKind kind : kinds) {
    sched::ProbeResult res[3];
    for (int layout = 0; layout < 3; ++layout) {
      dwt::set_host_layout(kLayouts[layout]);
      sched::RunConfig run;
      const auto b = sched::make_backend(kind, run);
      res[layout] = sched::probe_backend(*b, size, 2);
      EXPECT_TRUE(res[layout].total == res[0].total)
          << sched::backend_name(kind) << " layout="
          << dwt::host_layout_name(kLayouts[layout]);
      EXPECT_TRUE(res[layout].forward == res[0].forward)
          << sched::backend_name(kind);
      EXPECT_TRUE(res[layout].inverse == res[0].inverse)
          << sched::backend_name(kind);
      EXPECT_EQ(res[layout].energy_mj, res[0].energy_mj)
          << sched::backend_name(kind);
    }
  }
}

// The event-queue pipeline schedule too: makespan/ledger/energy must be
// bit-identical across all three layouts.
TEST(HostLayoutIdentity, PipelinedRunInvariantAcrossLayouts) {
  LayoutRestore restore;
  const auto stream = sched::make_sweep_frames({33, 25}, 3);
  sched::PipelineRunResult res[3];
  for (int layout = 0; layout < 3; ++layout) {
    dwt::set_host_layout(kLayouts[layout]);
    sched::RunConfig rc;
    sched::BatchedFpgaBackend backend(rc);
    res[layout] = sched::run_pipelined(backend, stream);
    if (layout == 0) continue;
    EXPECT_TRUE(res[layout].makespan == res[0].makespan)
        << dwt::host_layout_name(kLayouts[layout]);
    EXPECT_TRUE(res[layout].serial_total == res[0].serial_total);
    EXPECT_TRUE(res[layout].ps_busy == res[0].ps_busy);
    EXPECT_TRUE(res[layout].pl_busy == res[0].pl_busy);
    EXPECT_EQ(res[layout].energy_mj, res[0].energy_mj);
    EXPECT_EQ(res[layout].energy_gated_mj, res[0].energy_gated_mj);
  }
}

// --- bit-identity across kernel flavours -------------------------------------

struct KernelSetRestore {
  ~KernelSetRestore() { simd::set_active_kernels("simd"); }
};

// The dispatch default ("simd") is bit-identical to "scalar", so switching
// flavours must not move a single fused bit either.
TEST(HostParallelIdentity, ScalarAndSimdDispatchFuseIdentically) {
  KernelSetRestore restore;
  const auto frames = sched::make_sweep_frames({40, 40}, 1);
  ASSERT_TRUE(simd::set_active_kernels("scalar"));
  dwt::SimdLineFilter f_scalar{HostConfig{2}};
  const std::uint64_t h_scalar = hash_image(
      fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, f_scalar));
  ASSERT_TRUE(simd::set_active_kernels("simd"));
  dwt::SimdLineFilter f_simd{HostConfig{2}};
  const std::uint64_t h_simd = hash_image(
      fusion::fuse_frames(frames[0].visible, frames[0].thermal, {}, f_simd));
  EXPECT_EQ(h_scalar, h_simd);
}

}  // namespace

// Event-queue timeline, batched double buffering, and frame pipelining.
#include <gtest/gtest.h>

#include "src/common/timeline.h"
#include "src/hw/driver.h"
#include "src/sched/pipeline.h"

namespace {

using namespace vf;

// --- Timeline substrate -----------------------------------------------------

TEST(Timeline, GreedyEarliestStartScheduling) {
  Timeline tl;
  const ResourceId a = tl.add_resource("A");
  const ResourceId b = tl.add_resource("B");

  const auto e1 = tl.schedule(a, "x", SimDuration::zero(), SimDuration::milliseconds(2));
  EXPECT_DOUBLE_EQ(e1.start.sec(), 0.0);
  EXPECT_DOUBLE_EQ(e1.end.ms(), 2.0);

  // Same resource: serializes after e1 even though ready = 0.
  const auto e2 = tl.schedule(a, "y", SimDuration::zero(), SimDuration::milliseconds(1));
  EXPECT_DOUBLE_EQ(e2.start.ms(), 2.0);

  // Other resource: free at 0, but the ready dependency delays the start.
  const auto e3 = tl.schedule(b, "z", SimDuration::milliseconds(5),
                              SimDuration::milliseconds(1));
  EXPECT_DOUBLE_EQ(e3.start.ms(), 5.0);

  EXPECT_DOUBLE_EQ(tl.makespan().ms(), 6.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(a).ms(), 3.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(b).ms(), 1.0);
  EXPECT_EQ(tl.events().size(), 3u);
}

TEST(Timeline, BusyIntervalsMergeOverlapAcrossResources) {
  Timeline tl;
  const ResourceId a = tl.add_resource("A");
  const ResourceId b = tl.add_resource("B");
  tl.schedule(a, "x", SimDuration::zero(), SimDuration::milliseconds(10));
  tl.schedule(b, "y", SimDuration::milliseconds(5), SimDuration::milliseconds(10));
  tl.schedule(a, "z", SimDuration::milliseconds(30), SimDuration::milliseconds(5));

  const auto merged = tl.busy_intervals({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].first.ms(), 0.0);
  EXPECT_DOUBLE_EQ(merged[0].second.ms(), 15.0);  // [0,10) and [5,15) coalesce
  EXPECT_DOUBLE_EQ(merged[1].first.ms(), 30.0);
  EXPECT_DOUBLE_EQ(merged[1].second.ms(), 35.0);

  // Single-resource view leaves the gap visible.
  const auto only_a = tl.busy_intervals({a});
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_DOUBLE_EQ(only_a[0].second.ms(), 10.0);
}

TEST(Timeline, DeterministicAcrossRepeatedConstruction) {
  // The ctest suite runs with -j: identical schedules must produce identical
  // timelines regardless of what else runs concurrently. Everything is pure
  // function of the inputs — no clocks, no globals.
  auto build = [] {
    Timeline tl;
    const ResourceId a = tl.add_resource("A");
    const ResourceId b = tl.add_resource("B");
    for (int i = 0; i < 100; ++i) {
      tl.schedule(i % 2 ? a : b, "e", SimDuration::microseconds(i * 3),
                  SimDuration::microseconds(7 + i % 5));
    }
    return tl;
  };
  const Timeline t1 = build();
  const Timeline t2 = build();
  ASSERT_EQ(t1.events().size(), t2.events().size());
  for (std::size_t i = 0; i < t1.events().size(); ++i) {
    EXPECT_EQ(t1.events()[i].start.sec(), t2.events()[i].start.sec());
    EXPECT_EQ(t1.events()[i].end.sec(), t2.events()[i].end.sec());
  }
  EXPECT_EQ(t1.makespan().sec(), t2.makespan().sec());
}

// --- batched accelerator ----------------------------------------------------

TEST(PipelinedAccelerator, BatchingAmortizesDriverCalls) {
  Timeline tl;
  const ResourceId ps = tl.add_resource("PS");
  const ResourceId dma = tl.add_resource("DMA");
  const ResourceId pl = tl.add_resource("PL");
  driver::PipelinedWaveletAccelerator accel({}, {}, {.max_lines_per_call = 16},
                                            &tl, ps, dma, pl);
  for (int i = 0; i < 64; ++i) accel.submit_line(102, 88, 102);
  accel.flush();
  EXPECT_EQ(accel.lines(), 64);
  EXPECT_EQ(accel.driver_calls(), 4);  // 16 lines per 2048-word buffer fill

  // The serial ledger pays the driver entry per line.
  driver::WaveletAccelerator serial({}, {});
  SimDuration serial_total;
  for (int i = 0; i < 64; ++i) serial_total += serial.line_time(102, 88, 102);
  EXPECT_LT(tl.makespan().sec(), serial_total.sec());
  EXPECT_LT(tl.makespan().sec(), 0.5 * serial_total.sec());
}

TEST(PipelinedAccelerator, BufferCapacityCapsTheBatch) {
  Timeline tl;
  const ResourceId ps = tl.add_resource("PS");
  const ResourceId dma = tl.add_resource("DMA");
  const ResourceId pl = tl.add_resource("PL");
  driver::PipelinedWaveletAccelerator accel({}, {}, {.max_lines_per_call = 1024},
                                            &tl, ps, dma, pl);
  // 1200-word lines: only one fits the 2048-word kernel buffer.
  for (int i = 0; i < 6; ++i) accel.submit_line(1200, 1188, 1200);
  accel.flush();
  EXPECT_EQ(accel.driver_calls(), 6);
}

TEST(PipelinedAccelerator, BarrierOrdersDependentTransfers) {
  auto run = [](bool with_barrier) {
    Timeline tl;
    const ResourceId ps = tl.add_resource("PS");
    const ResourceId dma = tl.add_resource("DMA");
    const ResourceId pl = tl.add_resource("PL");
    driver::PipelinedWaveletAccelerator accel({}, {}, {.max_lines_per_call = 4},
                                              &tl, ps, dma, pl);
    for (int i = 0; i < 4; ++i) accel.submit_line(200, 176, 200);
    if (with_barrier) accel.barrier();
    for (int i = 0; i < 4; ++i) accel.submit_line(200, 176, 200);
    return accel.flush();
  };
  // Dependent lines may not overlap the producing batch, so the fenced
  // schedule finishes no earlier — and strictly later here, because the
  // second batch's driver call must wait for the first batch's outputs.
  EXPECT_GT(run(true).sec(), run(false).sec());
}

TEST(PipelinedAccelerator, DoubleBufferingOverlapsFillWithProcessing) {
  auto makespan = [](bool double_buffering) {
    Timeline tl;
    const ResourceId ps = tl.add_resource("PS");
    const ResourceId dma = tl.add_resource("DMA");
    const ResourceId pl = tl.add_resource("PL");
    driver::DriverCosts costs;
    costs.double_buffering = double_buffering;
    driver::PipelinedWaveletAccelerator accel({}, costs, {.max_lines_per_call = 4},
                                              &tl, ps, dma, pl);
    // Long compute per line so buffer recycling is the binding constraint.
    for (int i = 0; i < 32; ++i) accel.submit_line(400, 388, 4000);
    accel.flush();
    return tl.makespan();
  };
  EXPECT_LT(makespan(true).sec(), makespan(false).sec());
}

// --- batched FPGA backend ---------------------------------------------------

TEST(BatchedFpga, FusedOutputBitIdenticalToArm) {
  const auto pairs = sched::make_sweep_frames({40, 40}, 1);
  sched::ArmBackend arm;
  sched::BatchedFpgaBackend batched;
  sched::TimedFusionRunner run_arm(arm), run_batched(batched);
  const auto ra = run_arm.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  const auto rb = run_batched.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  ASSERT_EQ(ra.fused.size(), rb.fused.size());
  for (std::size_t i = 0; i < ra.fused.size(); ++i) {
    EXPECT_EQ(ra.fused.data()[i], rb.fused.data()[i]) << i;
  }
}

TEST(BatchedFpga, MovesTheTimeBreakPointLeftOf35x35) {
  // The serial ledger's break point sits between 35x35 and 40x40 (NEON wins
  // at 35x35 — tests/test_sched.cpp). Transfer-granularity double buffering
  // amortizes the ~12k-cycle driver entry and moves it left of 35x35.
  sched::NeonBackend neon;
  sched::BatchedFpgaBackend batched;
  const auto rn = sched::probe_backend(neon, {35, 35}, 4);
  const auto rb = sched::probe_backend(batched, {35, 35}, 4);
  EXPECT_LT(rb.total.sec(), rn.total.sec());

  // And it stays ahead at the sizes the serial FPGA already won.
  sched::NeonBackend neon_l;
  sched::BatchedFpgaBackend batched_l;
  const auto rnl = sched::probe_backend(neon_l, {88, 72}, 4);
  const auto rbl = sched::probe_backend(batched_l, {88, 72}, 4);
  EXPECT_LT(rbl.total.sec(), rnl.total.sec());
}

TEST(BatchedFpga, FasterThanSerialFpgaEverywhere) {
  for (const sched::FrameSize& size : sched::paper_frame_sizes()) {
    sched::FpgaBackend serial;
    sched::BatchedFpgaBackend batched;
    const auto rs = sched::probe_backend(serial, size, 2);
    const auto rb = sched::probe_backend(batched, size, 2);
    EXPECT_LT(rb.total.sec(), rs.total.sec()) << size.label();
  }
}

TEST(BatchedFpga, DeterministicAcrossRuns) {
  sched::BatchedFpgaBackend b1, b2;
  const auto r1 = sched::probe_backend(b1, {40, 40}, 2);
  const auto r2 = sched::probe_backend(b2, {40, 40}, 2);
  EXPECT_EQ(r1.total.sec(), r2.total.sec());
  EXPECT_EQ(r1.energy_mj, r2.energy_mj);
}

// --- serial-path regression (Fig. 9 anchors must not move) ------------------

TEST(SerialPath, Fig9NumbersUnchangedByTheTimelineRefactor) {
  // With pipelining disabled (i.e. the plain backends every Fig. 9/10 bench
  // uses), the modeled totals must reproduce the seed ledger exactly; these
  // constants were recorded from the pre-refactor model.
  sched::ArmBackend arm;
  sched::NeonBackend neon;
  sched::FpgaBackend fpga;
  const auto ra = sched::probe_backend(arm, {88, 72}, 10);
  const auto rn = sched::probe_backend(neon, {88, 72}, 10);
  const auto rf = sched::probe_backend(fpga, {88, 72}, 10);
  EXPECT_NEAR(ra.total.sec(), 1.974639061914, 1.974639061914 * 1e-7);
  EXPECT_NEAR(rn.total.sec(), 1.756228939587, 1.756228939587 * 1e-7);
  EXPECT_NEAR(rf.total.sec(), 0.972304478799, 0.972304478799 * 1e-7);
  EXPECT_NEAR(ra.energy_mj, 1053.075011718568, 1053.075011718568 * 1e-7);
  EXPECT_NEAR(rf.energy_mj, 537.198224536573, 537.198224536573 * 1e-7);
}

TEST(SerialPath, PlSplitNeverExceedsTheLedger) {
  sched::FpgaBackend fpga;
  sched::TimedFusionRunner runner(fpga);
  const auto pairs = sched::make_sweep_frames({64, 48}, 1);
  const auto r = runner.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  EXPECT_GT(r.pl_times.forward.sec(), 0.0);
  EXPECT_LE(r.pl_times.forward.sec(), r.times.forward.sec());
  EXPECT_LE(r.pl_times.inverse.sec(), r.times.inverse.sec());
  EXPECT_DOUBLE_EQ(r.pl_times.prep.sec(), 0.0);

  sched::ArmBackend arm;
  sched::TimedFusionRunner arm_runner(arm);
  const auto ra = arm_runner.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  EXPECT_DOUBLE_EQ(ra.pl_times.total().sec(), 0.0);  // no PL work on the CPU
}

// --- frame-level pipeline ---------------------------------------------------

TEST(PipelinedRunner, OverlapDisabledMatchesTheAdditiveLedger) {
  // DESIGN.md §2 invariant: the event-queue path with overlap disabled
  // reproduces the additive ledger (up to float summation order).
  for (const sched::FrameSize& size : {sched::FrameSize{35, 35},
                                       sched::FrameSize{88, 72}}) {
    sched::FpgaBackend fpga;
    sched::PipelineOptions options;
    options.overlap = false;
    const auto r = sched::probe_pipelined(fpga, size, 3, options);
    EXPECT_NEAR(r.makespan.sec(), r.serial_total.sec(),
                r.serial_total.sec() * 1e-9)
        << size.label();
  }
}

TEST(PipelinedRunner, CpuBackendsGainNothingFpgaGains) {
  // Every stage of a CPU backend needs the PS core, so the pipeline cannot
  // overlap anything; the FPGA backends offload the transforms to the PL
  // and overlap them with the fusion rule and prep of neighboring frames.
  sched::NeonBackend neon;
  const auto rn = sched::probe_pipelined(neon, {64, 48}, 4);
  EXPECT_NEAR(rn.makespan.sec(), rn.serial_total.sec(),
              rn.serial_total.sec() * 1e-9);

  sched::BatchedFpgaBackend batched;
  const auto rb = sched::probe_pipelined(batched, {64, 48}, 4);
  EXPECT_LT(rb.makespan.sec(), rb.serial_total.sec());
}

TEST(PipelinedRunner, SustainedFpsBeatsTheSerialRunnerByAtLeast1p3x) {
  // Acceptance: at 88x72 the pipelined schedule sustains >= 1.3x the fps of
  // the serial runner (the seed FpgaBackend through probe_backend).
  const int frames = 6;
  sched::FpgaBackend serial;
  const auto rs = sched::probe_backend(serial, {88, 72}, frames);
  const double serial_fps = frames / rs.total.sec();

  sched::BatchedFpgaBackend batched;
  const auto rp = sched::probe_pipelined(batched, {88, 72}, frames);
  EXPECT_GE(rp.sustained_fps, 1.3 * serial_fps);

  // The frame overlap also beats the batched backend's own serial schedule.
  sched::BatchedFpgaBackend batched_serial;
  sched::PipelineOptions no_overlap;
  no_overlap.overlap = false;
  const auto rb = sched::probe_pipelined(batched_serial, {88, 72}, frames,
                                         no_overlap);
  EXPECT_LT(rp.makespan.sec(), rb.makespan.sec());
}

TEST(PipelinedRunner, EnergyPerFrameDropsWithThePipeline) {
  const int frames = 4;
  sched::BatchedFpgaBackend serial_b, piped_b;
  sched::PipelineOptions no_overlap;
  no_overlap.overlap = false;
  const auto rs = sched::probe_pipelined(serial_b, {88, 72}, frames, no_overlap);
  const auto rp = sched::probe_pipelined(piped_b, {88, 72}, frames);
  EXPECT_LT(rp.energy_per_frame_mj(), rs.energy_per_frame_mj());
  // Gating the engine draw to PL-busy intervals can only save more.
  EXPECT_LE(rp.energy_gated_mj, rp.energy_mj);
}

}  // namespace

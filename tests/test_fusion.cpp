// Behavior of the fusion rules (DT-CWT, plain DWT, Laplacian).
#include <gtest/gtest.h>

#include <cmath>

#include "src/fusion/fuse.h"
#include "src/fusion/laplacian.h"
#include "src/sched/adaptive.h"

namespace {

using namespace vf;
using image::ImageF;

double max_abs_diff(const ImageF& a, const ImageF& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return m;
}

TEST(Fusion, FusingAFrameWithItselfReturnsTheFrame) {
  const auto pairs = sched::make_sweep_frames({40, 40}, 1);
  const ImageF& img = pairs[0].visible;
  dwt::ScalarLineFilter filter;
  const ImageF fused = fuse_frames(img, img, fusion::FuseConfig{}, filter);
  // Identical inputs -> selection is a no-op -> transform round trip.
  EXPECT_LT(max_abs_diff(img, fused), 1e-4);
}

TEST(Fusion, FusedFrameCarriesTargetAndSceneContent) {
  const auto pairs = sched::make_sweep_frames({88, 72}, 1);
  const ImageF& vis = pairs[0].visible;
  const ImageF& ir = pairs[0].thermal;
  dwt::ScalarLineFilter filter;
  const fusion::FusionOutcome outcome =
      fuse_frames_with_quality(vis, ir, fusion::FuseConfig{}, filter);
  // The fused frame must be more informative about BOTH inputs than either
  // input is about the other.
  const double cross = image::mutual_information(vis, ir);
  EXPECT_GT(image::mutual_information(outcome.fused, vis), cross);
  EXPECT_GT(image::mutual_information(outcome.fused, ir), cross);
  EXPECT_GT(outcome.quality.qabf, 0.3);
  EXPECT_GT(outcome.quality.entropy_fused, 3.0);
}

TEST(Fusion, DwtBaselineRunsAndPreservesSelfFusion) {
  const auto pairs = sched::make_sweep_frames({35, 35}, 1);
  const ImageF& img = pairs[0].visible;
  dwt::ScalarLineFilter filter;
  const ImageF fused = fuse_frames_dwt(img, img, fusion::DwtFuseConfig{}, filter);
  EXPECT_LT(max_abs_diff(img, fused), 1e-4);
}

TEST(Fusion, DtcwtUsesFourTimesTheDwtTransformWork) {
  const auto pairs = sched::make_sweep_frames({64, 48}, 1);
  dwt::ScalarLineFilter f_dwt, f_dtcwt;
  fuse_frames_dwt(pairs[0].visible, pairs[0].thermal, fusion::DwtFuseConfig{}, f_dwt);
  fuse_frames(pairs[0].visible, pairs[0].thermal, fusion::FuseConfig{}, f_dtcwt);
  EXPECT_EQ(4 * f_dwt.stats().total_macs(), f_dtcwt.stats().total_macs());
}

TEST(Fusion, LaplacianSelfFusionIsNearIdentity) {
  const auto pairs = sched::make_sweep_frames({40, 40}, 1);
  const ImageF& img = pairs[0].visible;
  const ImageF fused =
      fusion::fuse_frames_laplacian(img, img, fusion::LaplacianFuseConfig{});
  // The Laplacian pyramid is exactly invertible when built/collapsed with the
  // same kernels; max-abs of identical inputs keeps the detail intact.
  EXPECT_LT(max_abs_diff(img, fused), 1e-4);
}

TEST(Fusion, BackendsProduceIdenticalFusedOutput) {
  const auto pairs = sched::make_sweep_frames({35, 35}, 1);
  sched::ArmBackend arm;
  sched::FpgaBackend fpga;
  sched::AdaptiveBackend adaptive;
  sched::TimedFusionRunner ra(arm), rf(fpga), rx(adaptive);
  const auto a = ra.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  const auto f = rf.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  const auto x = rx.run_frame_pair(pairs[0].visible, pairs[0].thermal);
  EXPECT_EQ(0.0, max_abs_diff(a.fused, f.fused));
  EXPECT_EQ(0.0, max_abs_diff(a.fused, x.fused));
}

}  // namespace

# ctest script: prove the "autovec" kernel flavour actually vectorizes.
#
# Recompiles src/simd/kernels_autovec.cpp exactly as the library does
# (-O3 -fno-math-errno) with the compiler's vectorization report turned on,
# then counts distinct vectorized source lines. The file holds 6 kernel
# families with >= 7 hot loops between them (analyze, synthesize interleave,
# magnitude, select re/im, half-plane select for the fused synthesis kernel,
# average); if fewer than 7 loops vectorize, a refactor silently
# de-vectorized the flavour and this test fails.
#
# Invoked by CMakeLists.txt with:
#   -DCXX_COMPILER=...  -DCXX_COMPILER_ID=GNU|Clang
#   -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch>

set(src "${SOURCE_DIR}/src/simd/kernels_autovec.cpp")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(obj "${WORK_DIR}/kernels_autovec.o")

if(CXX_COMPILER_ID STREQUAL "GNU")
  set(report_flag "-fopt-info-vec-optimized")
  set(needle "loop vectorized")
elseif(CXX_COMPILER_ID MATCHES "Clang")
  set(report_flag "-Rpass=loop-vectorize")
  set(needle "vectorized loop")
else()
  message(STATUS "check_autovec: unknown compiler '${CXX_COMPILER_ID}', skipping")
  return()
endif()

execute_process(
  COMMAND "${CXX_COMPILER}" -std=c++17 -O3 -fno-math-errno "${report_flag}"
          -I "${SOURCE_DIR}" -c "${src}" -o "${obj}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_autovec: compile failed (${rc}):\n${err}")
endif()

# Vectorization remarks land on stderr for both compilers. Count unique
# file:line sites so an unrolled loop reported twice is not double-counted.
string(REPLACE "\n" ";" lines "${err}")
set(sites "")
foreach(line IN LISTS lines)
  if(line MATCHES "${needle}")
    string(REGEX MATCH "[^ :]+:[0-9]+:[0-9]+" site "${line}")
    if(site)
      list(APPEND sites "${site}")
    endif()
  endif()
endforeach()
list(REMOVE_DUPLICATES sites)
list(LENGTH sites count)

message(STATUS "check_autovec: ${count} vectorized loop site(s) in kernels_autovec.cpp")
foreach(site IN LISTS sites)
  message(STATUS "  ${site}")
endforeach()

if(count LESS 7)
  message(FATAL_ERROR
    "check_autovec: only ${count} loop(s) vectorized (need >= 7). "
    "Compiler report:\n${err}")
endif()

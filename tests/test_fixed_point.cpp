// Fixed-point format and datapath error bounds (ablation A7 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/hw/fixed_point.h"
#include "src/fusion/fuse.h"
#include "src/image/metrics.h"
#include "src/sched/adaptive.h"

namespace {

using namespace vf;

TEST(FixedPointFormat, NamesAndRange) {
  const hw::FixedPointFormat fmt{18, 15};
  EXPECT_EQ(fmt.name(), "Q3.15");
  EXPECT_EQ(fmt.integer_bits(), 3);
  EXPECT_DOUBLE_EQ(fmt.step(), std::ldexp(1.0, -15));
  EXPECT_DOUBLE_EQ(fmt.min_value(), -4.0);
  EXPECT_NEAR(fmt.max_value(), 4.0, 2 * fmt.step());
}

TEST(FixedPointFormat, QuantizeRoundsAndSaturates) {
  const hw::FixedPointFormat fmt{12, 10};
  // Round to nearest step (step = 2^-10; 0.50049 sits above the midpoint).
  EXPECT_NEAR(fmt.quantize(0.50049), 513.0 * fmt.step(), 1e-12);
  EXPECT_NEAR(fmt.quantize(0.5002), 512.0 * fmt.step(), 1e-12);
  // Quantization error is at most half a step inside the range.
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_float(-1.9f, 1.9f);
    EXPECT_LE(std::fabs(fmt.quantize(v) - v), fmt.step() / 2 + 1e-12);
  }
  // Saturation at the rails.
  EXPECT_DOUBLE_EQ(fmt.quantize(100.0), fmt.max_value());
  EXPECT_DOUBLE_EQ(fmt.quantize(-100.0), fmt.min_value());
}

TEST(FixedPointFilter, RoundTripErrorBoundedByFormat) {
  // Full transform round trip through the fixed-point datapath: error should
  // be within a small multiple of the quantization step, per format.
  const auto pairs = sched::make_sweep_frames({40, 40}, 1);
  const image::ImageF& img = pairs[0].visible;
  dwt::TransformConfig config;
  for (const hw::FixedPointFormat fmt : {hw::FixedPointFormat{24, 18},
                                         hw::FixedPointFormat{18, 15},
                                         hw::FixedPointFormat{16, 12}}) {
    hw::FixedPointLineFilter filter(fmt);
    const auto pyr = dwt::forward_dtcwt(img, config, filter);
    const image::ImageF rec = dwt::inverse_dtcwt(pyr, config, filter);
    double max_err = 0.0;
    for (std::size_t i = 0; i < img.size(); ++i) {
      max_err = std::max(max_err,
                         std::fabs(static_cast<double>(img.data()[i]) - rec.data()[i]));
    }
    // Error accumulates over 2 * levels cascaded quantized filterings.
    EXPECT_LT(max_err, 60.0 * fmt.step()) << fmt.name();
    EXPECT_GT(max_err, 0.0) << fmt.name();  // quantization is real
  }
}

TEST(FixedPointFilter, FidelityImprovesWithWordWidth) {
  const auto pairs = sched::make_sweep_frames({40, 40}, 1);
  dwt::ScalarLineFilter float_filter;
  const fusion::FuseConfig config;
  const image::ImageF reference =
      fuse_frames(pairs[0].visible, pairs[0].thermal, config, float_filter);
  double last_psnr = 0.0;
  for (const hw::FixedPointFormat fmt :
       {hw::FixedPointFormat{12, 10}, hw::FixedPointFormat{18, 15},
        hw::FixedPointFormat{24, 18}}) {
    hw::FixedPointLineFilter filter(fmt);
    const image::ImageF fused =
        fuse_frames(pairs[0].visible, pairs[0].thermal, config, filter);
    const double p = image::psnr(reference, fused);
    EXPECT_GT(p, last_psnr) << fmt.name();
    last_psnr = p;
  }
  // 24-bit is effectively transparent.
  EXPECT_GT(last_psnr, 60.0);
}

}  // namespace

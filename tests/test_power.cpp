// Power model + sampled recorder methodology checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/power/recorder.h"

namespace {

using namespace vf;

TEST(PowerModel, OperatingPointsMatchThePaper) {
  const power::PowerModel pm;
  const double arm = pm.system_power_mw(power::ComputeMode::kArmOnly);
  const double neon = pm.system_power_mw(power::ComputeMode::kArmNeon);
  const double fpga = pm.system_power_mw(power::ComputeMode::kArmFpga);
  EXPECT_DOUBLE_EQ(arm, neon);  // NEON adds no measurable draw
  EXPECT_NEAR(fpga - arm, 19.2, 1e-9);
  // +19.2 mW is the paper's +3.6%.
  EXPECT_NEAR(100.0 * (fpga - arm) / arm, 3.6, 0.05);
}

TEST(PowerModel, EnergyIsPowerTimesTime) {
  const power::PowerModel pm;
  const double mj = pm.energy_mj(power::ComputeMode::kArmOnly, SimDuration::seconds(2));
  EXPECT_DOUBLE_EQ(mj, 2.0 * pm.system_power_mw(power::ComputeMode::kArmOnly));
}

TEST(PowerRecorder, SampledIntegralTracksExactWithinOnePeriod) {
  const power::PowerModel pm;
  power::PowerRecorder rec(pm, SimDuration::milliseconds(1));
  rec.run_segment(/*pl_engine_active=*/true, SimDuration::seconds(1.0405));
  const double exact = rec.exact_energy_mj();
  const double sampled = rec.sampled_energy_mj();
  EXPECT_GT(exact, 0.0);
  // Error bounded by the tail (< one sampling period's worth of energy).
  EXPECT_LE(std::fabs(exact - sampled),
            pm.system_power_mw(power::ComputeMode::kArmFpga) * 1e-3 + 1e-9);
  EXPECT_NEAR(sampled / exact, 1.0, 1e-3);
}

TEST(PowerRecorder, MixedSegmentsAccumulateBothIntegrals) {
  const power::PowerModel pm;
  power::PowerRecorder rec(pm, SimDuration::milliseconds(10));
  rec.run_segment(false, SimDuration::milliseconds(25));
  rec.run_segment(true, SimDuration::milliseconds(35));
  const double expected_exact =
      pm.system_power_mw(power::ComputeMode::kArmOnly) * 0.025 +
      pm.system_power_mw(power::ComputeMode::kArmFpga) * 0.035;
  EXPECT_NEAR(rec.exact_energy_mj(), expected_exact, 1e-9);
  // 6 full periods sampled: 2 idle + 4 active (sample at each boundary).
  EXPECT_GT(rec.sampled_energy_mj(), 0.0);
  EXPECT_NEAR(rec.sampled_energy_mj(), expected_exact,
              pm.system_power_mw(power::ComputeMode::kArmFpga) * 0.010);
}

}  // namespace

// Power model + sampled recorder methodology checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/timeline.h"
#include "src/power/recorder.h"

namespace {

using namespace vf;

TEST(PowerModel, OperatingPointsMatchThePaper) {
  const power::PowerModel pm;
  const double arm = pm.system_power_mw(power::ComputeMode::kArmOnly);
  const double neon = pm.system_power_mw(power::ComputeMode::kArmNeon);
  const double fpga = pm.system_power_mw(power::ComputeMode::kArmFpga);
  EXPECT_DOUBLE_EQ(arm, neon);  // NEON adds no measurable draw
  EXPECT_NEAR(fpga - arm, 19.2, 1e-9);
  // +19.2 mW is the paper's +3.6%.
  EXPECT_NEAR(100.0 * (fpga - arm) / arm, 3.6, 0.05);
}

TEST(PowerModel, EnergyIsPowerTimesTime) {
  const power::PowerModel pm;
  const double mj = pm.energy_mj(power::ComputeMode::kArmOnly, SimDuration::seconds(2));
  EXPECT_DOUBLE_EQ(mj, 2.0 * pm.system_power_mw(power::ComputeMode::kArmOnly));
}

TEST(PowerRecorder, SampledIntegralTracksExactWithinOnePeriod) {
  const power::PowerModel pm;
  power::PowerRecorder rec(pm, SimDuration::milliseconds(1));
  rec.run_segment(/*pl_engine_active=*/true, SimDuration::seconds(1.0405));
  const double exact = rec.exact_energy_mj();
  const double sampled = rec.sampled_energy_mj();
  EXPECT_GT(exact, 0.0);
  // Error bounded by the tail (< one sampling period's worth of energy).
  EXPECT_LE(std::fabs(exact - sampled),
            pm.system_power_mw(power::ComputeMode::kArmFpga) * 1e-3 + 1e-9);
  EXPECT_NEAR(sampled / exact, 1.0, 1e-3);
}

TEST(PowerRecorder, MixedSegmentsAccumulateBothIntegrals) {
  const power::PowerModel pm;
  power::PowerRecorder rec(pm, SimDuration::milliseconds(10));
  rec.run_segment(false, SimDuration::milliseconds(25));
  rec.run_segment(true, SimDuration::milliseconds(35));
  const double expected_exact =
      pm.system_power_mw(power::ComputeMode::kArmOnly) * 0.025 +
      pm.system_power_mw(power::ComputeMode::kArmFpga) * 0.035;
  EXPECT_NEAR(rec.exact_energy_mj(), expected_exact, 1e-9);
  // 6 full periods sampled: 2 idle + 4 active (sample at each boundary).
  EXPECT_GT(rec.sampled_energy_mj(), 0.0);
  EXPECT_NEAR(rec.sampled_energy_mj(), expected_exact,
              pm.system_power_mw(power::ComputeMode::kArmFpga) * 0.010);
}

TEST(PowerRecorder, ModeOverloadMatchesBoolOverload) {
  const power::PowerModel pm;
  power::PowerRecorder by_bool(pm, SimDuration::milliseconds(1));
  power::PowerRecorder by_mode(pm, SimDuration::milliseconds(1));
  by_bool.run_segment(true, SimDuration::milliseconds(7));
  by_mode.run_segment(power::ComputeMode::kArmFpga, SimDuration::milliseconds(7));
  EXPECT_DOUBLE_EQ(by_bool.exact_energy_mj(), by_mode.exact_energy_mj());
  EXPECT_DOUBLE_EQ(by_bool.sampled_energy_mj(), by_mode.sampled_energy_mj());
}

TEST(PowerRecorder, ConcurrentPsAndPlChargeTheEngineDrawOnce) {
  // PS and PL fully overlapped for 10 ms: the system must draw
  // system + 19.2 mW once — not 2x the system draw (naive per-resource
  // integration) and not +2x19.2 (naive per-event mode charging).
  const power::PowerModel pm;
  Timeline tl;
  const ResourceId ps = tl.add_resource("PS core");
  const ResourceId pl = tl.add_resource("PL engine");
  tl.schedule(ps, "fusion", SimDuration::zero(), SimDuration::milliseconds(10));
  tl.schedule(pl, "fwd", SimDuration::zero(), SimDuration::milliseconds(10));

  power::PowerRecorder rec(pm, SimDuration::milliseconds(1));
  rec.run_timeline(tl, {ps, pl});
  const double expected =
      pm.system_power_mw(power::ComputeMode::kArmFpga) * 0.010;
  EXPECT_NEAR(rec.exact_energy_mj(), expected, 1e-9);
}

TEST(PowerRecorder, TimelineIntegrationChargesIdleGapsAtIdleDraw) {
  // PS busy [0,20) ms, PL busy only [5,15) ms: the engine's net draw is
  // charged for the 10 ms the PL is active, the base system draw for all 20.
  const power::PowerModel pm;
  Timeline tl;
  const ResourceId ps = tl.add_resource("PS core");
  const ResourceId pl = tl.add_resource("PL engine");
  tl.schedule(ps, "cpu", SimDuration::zero(), SimDuration::milliseconds(20));
  tl.schedule(pl, "fwd", SimDuration::milliseconds(5), SimDuration::milliseconds(10));

  power::PowerRecorder rec(pm, SimDuration::milliseconds(1));
  rec.run_timeline(tl, {pl});
  const double expected = pm.system_power_mw(power::ComputeMode::kArmOnly) * 0.020 +
                          pm.config().pl_engine_net_mw * 0.010;
  EXPECT_NEAR(rec.exact_energy_mj(), expected, 1e-9);
  // The sampled integral tracks within one sampling period's energy (FP
  // accumulation in the sample-and-hold loop can defer the last boundary).
  EXPECT_NEAR(rec.sampled_energy_mj(), expected,
              pm.system_power_mw(power::ComputeMode::kArmFpga) * 1e-3 + 1e-9);
}

TEST(PowerRecorder, TimelineIntegrationIsDeterministic) {
  // ctest runs suites with -j; the integration is a pure function of the
  // timeline, so two identical replays must agree bit-for-bit.
  auto integrate = [] {
    const power::PowerModel pm;
    Timeline tl;
    const ResourceId pl = tl.add_resource("PL");
    for (int i = 0; i < 50; ++i) {
      tl.schedule(pl, "e", SimDuration::microseconds(i * 37),
                  SimDuration::microseconds(11 + i % 7));
    }
    power::PowerRecorder rec(pm, SimDuration::milliseconds(1));
    rec.run_timeline(tl, {pl});
    return rec.exact_energy_mj();
  };
  EXPECT_EQ(integrate(), integrate());
}

}  // namespace

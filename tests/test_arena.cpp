// Arena mechanics plus the zero-allocation guard for the transform hot
// loops: after a warm-up run, a full multi-frame pipelined fusion must not
// create a single new arena block (src/common/arena.h documents the
// contract; this file is the enforcement).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/arena.h"
#include "src/sched/adaptive.h"
#include "src/sched/pipeline.h"

namespace {

using namespace vf;

// --- mechanics ---------------------------------------------------------------

TEST(Arena, AllocIsCacheLineAligned) {
  Arena a;
  for (std::size_t n : {1u, 3u, 16u, 17u, 1000u, 100000u}) {
    float* p = a.alloc(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "n=" << n;
  }
}

TEST(Arena, ScopeRewindReusesMemoryWithoutNewBlocks) {
  Arena a;
  (void)a.alloc(1);  // force the first block so the loop below is steady state
  const long long blocks = Arena::total_block_allocations();
  const std::size_t reserved = a.bytes_reserved();
  float* first = nullptr;
  for (int i = 0; i < 100; ++i) {
    ArenaScope scope(a);
    float* p = scope.alloc(1024);
    if (i == 0) {
      first = p;
    } else {
      EXPECT_EQ(p, first) << i;  // same bump position every iteration
    }
  }
  EXPECT_EQ(Arena::total_block_allocations(), blocks);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(Arena, ScopesNest) {
  Arena a;
  ArenaScope outer(a);
  float* p1 = outer.alloc(64);
  p1[0] = 1.0f;
  float* inner_ptr = nullptr;
  {
    ArenaScope inner(a);
    inner_ptr = inner.alloc(64);
    inner_ptr[0] = 2.0f;
    EXPECT_NE(inner_ptr, p1);
  }
  // The inner scope's space is reclaimed; the outer allocation is intact.
  float* p2 = outer.alloc(64);
  EXPECT_EQ(p2, inner_ptr);
  EXPECT_EQ(p1[0], 1.0f);
}

TEST(Arena, GrowthReusesLaterReservedBlocks) {
  Arena a;
  Arena::Mark empty = a.mark();
  // Warm up with a sequence that spans several blocks.
  (void)a.alloc(1);
  (void)a.alloc(1 << 15);
  (void)a.alloc(1 << 17);
  const long long blocks = Arena::total_block_allocations();
  const std::size_t reserved = a.bytes_reserved();
  // Replaying the same pattern — or a smaller one — from a full rewind must
  // not reserve more: grow() walks forward to later reserved blocks.
  for (int i = 0; i < 10; ++i) {
    a.rewind(empty);
    (void)a.alloc(1);
    (void)a.alloc(1 << 15);
    (void)a.alloc(1 << 17);
    a.rewind(empty);
    (void)a.alloc(1 << 12);
    (void)a.alloc(1 << 14);
    (void)a.alloc(1 << 16);
  }
  EXPECT_EQ(Arena::total_block_allocations(), blocks);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(Arena, ThreadArenaIsStable) {
  Arena& a = thread_arena();
  Arena& b = thread_arena();
  EXPECT_EQ(&a, &b);
}

// --- zero-allocation guard ---------------------------------------------------

// After one warm-up pass has reserved every block the transform needs, a
// full multi-frame pipelined run — forward + inverse DT-CWT, fusion rule,
// extension fills, tiled transposes — must perform zero arena block
// allocations. A regression here means some hot loop went back to heap
// scratch.
TEST(ArenaZeroAlloc, SteadyStatePipelineAllocatesNothing) {
  for (const sched::FrameSize size : {sched::FrameSize{40, 40},
                                      sched::FrameSize{88, 72}}) {
    const auto stream = sched::make_sweep_frames(size, 6);
    sched::RunConfig rc;
    {
      sched::BatchedFpgaBackend warmup(rc);
      (void)sched::run_pipelined(warmup, stream);
    }
    const long long before = Arena::total_block_allocations();
    sched::BatchedFpgaBackend backend(rc);
    const sched::PipelineRunResult run = sched::run_pipelined(backend, stream);
    EXPECT_GT(run.makespan.sec(), 0.0);
    EXPECT_EQ(Arena::total_block_allocations(), before)
        << size.width << "x" << size.height;
  }
}

}  // namespace

// TextTable formatting and Rng determinism.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/table.h"

namespace {

using namespace vf;

TEST(TextTable, NumFormatsFixedDecimals) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::num(100.0, 0), "100");
}

TEST(TextTable, AlignsColumnsAndPadsShortRows) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1.0"});
  t.add_row({"long-name", "12.5"});
  t.add_row({"partial"});  // missing cell is padded
  const std::string s = t.to_string();
  // Header + separator + 3 rows.
  int newlines = 0;
  for (char c : s) newlines += c == '\n';
  EXPECT_EQ(newlines, 5);
  // Every line has the same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, FloatRangeIsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.next_float(-2.5f, 4.0f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 4.0f);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(99);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    buckets[rng.next_index(10)] += 1;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);
  }
}

TEST(Rng, ZeroSeedDoesNotDegenerate) {
  Rng rng(0);
  EXPECT_NE(rng.next_u64(), 0u);
  EXPECT_NE(rng.next_u64(), rng.next_u64());
}

}  // namespace

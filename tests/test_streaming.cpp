// Cross-frame streaming + scatter-gather driver tests (ISSUE 9).
//
// Contracts: legacy outputs are bit-identical with cross_frame off (and with
// the default sg_chain_len = 1 everywhere), the streaming replay is a pure
// re-schedule of the serial measurement (numerics and serial totals
// unchanged, deterministic at any host pool width), the fleet's 1-stream
// streaming case reproduces run_pipelined's streaming schedule exactly, and
// the performance claims the bench tables report (fps at 88x72, the
// break-point move at small frames) hold.
#include <gtest/gtest.h>

#include "src/hw/driver.h"
#include "src/sched/fleet.h"
#include "src/sched/pipeline.h"
#include "src/sched/streaming.h"

namespace vf {
namespace {

sched::RunConfig streaming_config(const sched::FrameSize& size, int frames,
                                  int sg_chain_len) {
  sched::RunConfig run;
  run.frame_size = size;
  run.frames = frames;
  run.cross_frame = true;
  run.batching.sg_chain_len = sg_chain_len;
  return run;
}

sched::PipelineRunResult run_piped(const sched::RunConfig& run) {
  sched::BatchedFpgaBackend backend(run);
  return sched::probe_pipelined(backend, run);
}

// --- defaults keep every legacy schedule ------------------------------------

TEST(Streaming, DefaultsAreLegacy) {
  EXPECT_FALSE(sched::RunConfig{}.cross_frame);
  EXPECT_EQ(driver::PipelinedWaveletAccelerator::Batching{}.sg_chain_len, 1);
  EXPECT_FALSE(sched::FleetConfig{}.cross_frame);
  EXPECT_FALSE(sched::PipelineOptions{}.cross_frame);
}

// --- scatter-gather chain on the serial accelerator --------------------------

TEST(Streaming, SgChainAmortizesDriverEntriesOnSerialSchedule) {
  auto run_serial = [](int sg) {
    Timeline tl;
    const ResourceId ps = tl.add_resource("ps");
    const ResourceId dma = tl.add_resource("dma");
    const ResourceId pl = tl.add_resource("pl");
    driver::PipelinedWaveletAccelerator::Batching batching;
    batching.max_lines_per_call = 4;
    batching.sg_chain_len = sg;
    driver::PipelinedWaveletAccelerator accel(
        hw::WaveletEngineConfig{}, driver::DriverCosts{}, batching, &tl, ps,
        dma, pl);
    // Driver-entry-bound batches (comp ~4 us << ~23.5 us entry): the regime
    // the chain exists for. Compute-bound batches hide the entry behind the
    // double buffer already, and there SG's descriptor fetch is pure cost.
    for (int i = 0; i < 64; ++i) accel.submit_line(190, 176, 100.0);
    accel.flush();
    return std::make_tuple(tl.makespan(), accel.driver_calls(),
                           accel.chain_heads());
  };
  const auto [flat_makespan, flat_calls, flat_heads] = run_serial(1);
  const auto [sg_makespan, sg_calls, sg_heads] = run_serial(8);
  // Same batches either way; with sg=1 every batch is a chain head.
  EXPECT_EQ(flat_calls, sg_calls);
  EXPECT_EQ(flat_heads, flat_calls);
  // With sg=8 only every 8th batch pays the driver entry...
  EXPECT_EQ(sg_heads, (sg_calls + 7) / 8);
  // ...and the descriptor appends are cheaper than the entries they replace.
  EXPECT_LT(sg_makespan, flat_makespan);
}

TEST(Streaming, FlushClosesTheArmedChain) {
  Timeline tl;
  const ResourceId ps = tl.add_resource("ps");
  const ResourceId dma = tl.add_resource("dma");
  const ResourceId pl = tl.add_resource("pl");
  driver::PipelinedWaveletAccelerator::Batching batching;
  batching.max_lines_per_call = 1;
  batching.sg_chain_len = 64;  // longer than either burst below
  driver::PipelinedWaveletAccelerator accel(
      hw::WaveletEngineConfig{}, driver::DriverCosts{}, batching, &tl, ps, dma,
      pl);
  for (int i = 0; i < 3; ++i) accel.submit_line(190, 176, 1000.0);
  accel.flush();
  for (int i = 0; i < 3; ++i) accel.submit_line(190, 176, 1000.0);
  accel.flush();
  // One chain head per flush-separated burst: the synchronous drain ends the
  // ioctl context, so the next batch re-enters the driver.
  EXPECT_EQ(accel.driver_calls(), 6);
  EXPECT_EQ(accel.chain_heads(), 2);
}

// --- streaming is a pure re-schedule -----------------------------------------

TEST(Streaming, CrossFrameKeepsSerialTotalAndChangesOnlyTheSchedule) {
  sched::RunConfig off = streaming_config({64, 48}, 6, 1);
  off.cross_frame = false;
  sched::RunConfig on = streaming_config({64, 48}, 6, 1);
  const sched::PipelineRunResult legacy = run_piped(off);
  const sched::PipelineRunResult streaming = run_piped(on);
  // Pass 1 runs the identical serial schedule, so the additive ledger total
  // matches as exact doubles; only the pass-2 replay differs.
  EXPECT_EQ(legacy.serial_total, streaming.serial_total);
  EXPECT_NE(legacy.makespan.sec(), streaming.makespan.sec());
}

TEST(Streaming, FusedOutputsIdenticalWithCrossFrameOnOrOff) {
  const auto pairs = sched::make_sweep_frames({40, 40}, 2);
  auto fused_at = [&](bool cross_frame) {
    sched::RunConfig run = streaming_config({40, 40}, 2, 8);
    run.cross_frame = cross_frame;
    sched::BatchedFpgaBackend backend(run);
    if (cross_frame) backend.enable_stream_trace();
    sched::TimedFusionRunner runner(backend, run.fuse);
    return runner.run_frame_pair(pairs[0].visible, pairs[0].thermal).fused;
  };
  const image::ImageF off = fused_at(false);
  const image::ImageF on = fused_at(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off.data()[i], on.data()[i]) << "pixel " << i;
  }
}

TEST(Streaming, ModeledOutputsIdenticalAtAnyHostThreadCount) {
  sched::PipelineRunResult results[3];
  const int threads[] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    sched::RunConfig run = streaming_config({64, 48}, 5, 8);
    run.host.threads = threads[i];
    results[i] = run_piped(run);
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[0].makespan, results[i].makespan);
    EXPECT_EQ(results[0].serial_total, results[i].serial_total);
    EXPECT_EQ(results[0].energy_mj, results[i].energy_mj);
    EXPECT_EQ(results[0].energy_gated_mj, results[i].energy_gated_mj);
  }
}

TEST(Streaming, PipelineDepthOneDisablesTheReplay) {
  sched::RunConfig run = streaming_config({40, 40}, 4, 8);
  run.pipeline_depth = 1;
  sched::RunConfig off = run;
  off.cross_frame = false;
  const sched::PipelineRunResult on_r = run_piped(run);
  const sched::PipelineRunResult off_r = run_piped(off);
  // depth <= 1 means the serial event schedule on both paths.
  EXPECT_EQ(on_r.makespan, off_r.makespan);
  EXPECT_EQ(on_r.energy_mj, off_r.energy_mj);
}

TEST(Streaming, NonBatchedBackendsFallBackToLegacySilently) {
  sched::RunConfig run = streaming_config({40, 40}, 4, 8);
  sched::RunConfig off = run;
  off.cross_frame = false;
  auto piped_neon = [](const sched::RunConfig& rc) {
    const auto backend = sched::make_backend(sched::BackendKind::kNeon, rc);
    return sched::probe_pipelined(*backend, rc);
  };
  const sched::PipelineRunResult on_r = piped_neon(run);
  const sched::PipelineRunResult off_r = piped_neon(off);
  EXPECT_EQ(on_r.makespan, off_r.makespan);
  EXPECT_EQ(on_r.energy_mj, off_r.energy_mj);
}

// --- performance claims the bench tables report -------------------------------

TEST(Streaming, ChainedStreamingBeatsLegacyAndThePaperRateAt88x72) {
  const sched::PipelineRunResult streaming =
      run_piped(streaming_config({88, 72}, 10, 8));
  sched::RunConfig legacy_cfg = streaming_config({88, 72}, 10, 1);
  legacy_cfg.cross_frame = false;
  const sched::PipelineRunResult legacy = run_piped(legacy_cfg);
  // ISSUE 9 acceptance: sustained fps above the pre-streaming 63.4 ceiling.
  EXPECT_GT(streaming.sustained_fps, 63.4);
  EXPECT_GT(streaming.sustained_fps, legacy.sustained_fps);
  EXPECT_LT(streaming.energy_mj, legacy.energy_mj);
}

TEST(Streaming, StreamingWinsAgainstNeonBelowThePaperSweep) {
  // The legacy break point already sits at the paper's smallest size; the
  // streaming schedule must keep the FPGA ahead even at 16x12, where the
  // driver entry dominates hardest (the "move left" claim in EXPERIMENTS.md).
  const sched::FrameSize tiny{16, 12};
  const sched::PipelineRunResult streaming =
      run_piped(streaming_config(tiny, 10, 8));
  sched::RunConfig neon_cfg = streaming_config(tiny, 10, 1);
  neon_cfg.cross_frame = false;
  const auto neon = sched::make_backend(sched::BackendKind::kNeon, neon_cfg);
  const sched::PipelineRunResult neon_r = sched::probe_pipelined(*neon, neon_cfg);
  EXPECT_LT(streaming.makespan, neon_r.makespan);
}

// --- fleet integration --------------------------------------------------------

TEST(Streaming, OneStreamFleetReproducesRunPipelinedBitForBit) {
  const sched::RunConfig run = streaming_config({88, 72}, 6, 8);
  const sched::PipelineRunResult piped = run_piped(run);

  sched::StreamConfig stream;
  stream.backend = sched::BackendKind::kFpgaBatched;
  stream.run = run;
  stream.queue_depth = 0;  // unbounded, like run_pipelined
  sched::FleetConfig fleet;
  fleet.engines = 1;
  fleet.cores = 1;
  fleet.pipeline_depth = run.pipeline_depth;
  fleet.steal_engines = true;
  fleet.spill_wait_frac = 0.0;
  fleet.cross_frame = true;
  const sched::FleetResult fleet_r = sched::run_fleet({stream}, fleet);

  EXPECT_EQ(fleet_r.makespan, piped.makespan);
  EXPECT_EQ(fleet_r.energy_mj, piped.energy_mj);
  EXPECT_EQ(fleet_r.energy_gated_mj, piped.energy_gated_mj);
  EXPECT_EQ(fleet_r.completed, 6);
}

TEST(Streaming, FleetMixesBatchTracesWithStageGranularStreams) {
  // A batched-FPGA stream and a NEON stream share the replay: the first
  // contributes its captured batch ops, the second sliced stage costs. All
  // frames must complete (fps 0 = everything ready at t=0, no drops).
  sched::StreamConfig fpga;
  fpga.backend = sched::BackendKind::kFpgaBatched;
  fpga.run = streaming_config({40, 40}, 4, 8);
  fpga.queue_depth = 0;
  sched::StreamConfig neon = fpga;
  neon.backend = sched::BackendKind::kNeon;
  sched::FleetConfig fleet;
  fleet.engines = 1;
  fleet.cores = 2;
  fleet.cross_frame = true;
  const sched::FleetResult r = sched::run_fleet({fpga, neon}, fleet);
  EXPECT_EQ(r.completed, 8);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_GT(r.makespan, SimDuration::zero());

  // Determinism: the replay is a pure function of the modeled inputs.
  const sched::FleetResult again = sched::run_fleet({fpga, neon}, fleet);
  EXPECT_EQ(r.makespan, again.makespan);
  EXPECT_EQ(r.energy_mj, again.energy_mj);
}

TEST(Streaming, FleetCrossFrameOffKeepsLegacySchedule) {
  sched::StreamConfig stream;
  stream.backend = sched::BackendKind::kFpgaBatched;
  stream.run.frame_size = {64, 48};
  stream.run.frames = 4;
  stream.queue_depth = 0;
  sched::FleetConfig legacy;
  legacy.engines = 1;
  legacy.cores = 1;
  legacy.spill_wait_frac = 0.0;
  sched::FleetConfig off = legacy;
  off.cross_frame = false;  // explicit and default spellings must agree
  const sched::FleetResult a = sched::run_fleet({stream}, legacy);
  const sched::FleetResult b = sched::run_fleet({stream}, off);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
}

// --- op-list construction -----------------------------------------------------

TEST(Streaming, PsSlicingIsDeterministicAndPreservesTotals) {
  std::vector<sched::detail::StreamOp> ops;
  const SimDuration quantum =
      hw::ps_clock().cycles(hw::cost::kStreamPsSliceCycles);
  sched::detail::append_sliced_ps(&ops, 2, quantum * 3.5);
  ASSERT_EQ(ops.size(), 4u);  // ceil(3.5) equal slices
  SimDuration total;
  for (const auto& op : ops) {
    EXPECT_EQ(op.kind, sched::detail::StreamOp::Kind::kPs);
    EXPECT_EQ(op.stage, 2);
    EXPECT_LE(op.ps, quantum);
    total += op.ps;
  }
  EXPECT_NEAR(total.sec(), (quantum * 3.5).sec(), 1e-15);

  // Zero and negative durations contribute nothing.
  sched::detail::append_sliced_ps(&ops, 0, SimDuration::zero());
  EXPECT_EQ(ops.size(), 4u);
}

}  // namespace
}  // namespace vf

// Perfect-reconstruction and structural tests for the DT-CWT core.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/fusion/dwt_fusion.h"

namespace {

using namespace vf;
using image::ImageF;

ImageF random_image(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  ImageF img(rows, cols);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = rng.next_float(0.0f, 1.0f);
  }
  return img;
}

double max_abs_diff(const ImageF& a, const ImageF& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return m;
}

// Single-level 1-D analysis+synthesis must be the identity for every bank
// and both trees.
TEST(FilterBank, SingleLevelPerfectReconstruction1D) {
  const dwt::Wavelet wavelets[] = {dwt::Wavelet::kLeGall53, dwt::Wavelet::kCdf97,
                                   dwt::Wavelet::kQshift14A, dwt::Wavelet::kQshift14B};
  for (dwt::Wavelet w : wavelets) {
    for (int delay : {0, 1}) {
      const dwt::FilterBank bank = dwt::make_filter_bank(w, delay);
      dwt::ScalarLineFilter filter;
      const int n = 64;
      Rng rng(42);
      std::vector<float> x(n), lo(n / 2), hi(n / 2), y(n);
      for (float& v : x) v = rng.next_float(-1.0f, 1.0f);
      std::vector<float> scratch;
      dwt::analyze_line(filter, bank, x.data(), n, lo.data(), hi.data(), scratch);
      dwt::synthesize_line(filter, bank, lo.data(), hi.data(), n, y.data(), scratch);
      for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], y[i], 2e-5f)
            << dwt::wavelet_name(w) << " delay=" << delay << " i=" << i;
      }
    }
  }
}

TEST(FilterBank, RequiredSlotsMatchesFilterLengths) {
  EXPECT_EQ(dwt::required_slots(dwt::make_filter_bank(dwt::Wavelet::kLeGall53)), 5);
  EXPECT_EQ(dwt::required_slots(dwt::make_filter_bank(dwt::Wavelet::kCdf97)), 9);
  EXPECT_EQ(dwt::required_slots(dwt::make_filter_bank(dwt::Wavelet::kQshift14A)), 14);
  EXPECT_EQ(dwt::required_slots(dwt::make_filter_bank(dwt::Wavelet::kQshift14B)), 14);
}

TEST(Dtcwt, MultiLevelRoundTripUnderTolerance) {
  // The acceptance bound from the issue: max abs error < 1e-4 over random
  // frames through the full multi-level dual-tree transform.
  dwt::TransformConfig config;
  config.levels = 3;
  dwt::ScalarLineFilter filter;
  const ImageF img = random_image(72, 88, 7);
  const dwt::DtcwtPyramid pyr = dwt::forward_dtcwt(img, config, filter);
  const ImageF rec = dwt::inverse_dtcwt(pyr, config, filter);
  ASSERT_EQ(rec.rows(), img.rows());
  ASSERT_EQ(rec.cols(), img.cols());
  EXPECT_LT(max_abs_diff(img, rec), 1e-4);
}

TEST(Dtcwt, RoundTripOddSizesAndDeepLevels) {
  for (int levels : {1, 2, 3, 4}) {
    for (auto [rows, cols] : {std::pair{35, 35}, {24, 32}, {33, 47}}) {
      dwt::TransformConfig config;
      config.levels = levels;
      dwt::ScalarLineFilter filter;
      const ImageF img = random_image(rows, cols, 100 + levels);
      const dwt::DtcwtPyramid pyr = dwt::forward_dtcwt(img, config, filter);
      const ImageF rec = dwt::inverse_dtcwt(pyr, config, filter);
      EXPECT_LT(max_abs_diff(img, rec), 1e-4)
          << rows << "x" << cols << " levels=" << levels;
    }
  }
}

TEST(Dtcwt, Cdf97Level1RoundTrip) {
  dwt::TransformConfig config;
  config.level1 = dwt::Wavelet::kCdf97;
  dwt::ScalarLineFilter filter;
  const ImageF img = random_image(48, 64, 9);
  const ImageF rec =
      dwt::inverse_dtcwt(dwt::forward_dtcwt(img, config, filter), config, filter);
  EXPECT_LT(max_abs_diff(img, rec), 1e-4);
}

TEST(Dtcwt, NonQshiftHigherBankStillFormsAConsistentDualTree) {
  // A biorthogonal `higher` bank has no q-shift mate; tree B falls back to
  // the one-sample-delayed bank and PR must still hold for all four trees.
  dwt::TransformConfig config;
  config.higher = dwt::Wavelet::kCdf97;
  dwt::ScalarLineFilter filter;
  const ImageF img = random_image(48, 64, 21);
  const ImageF rec =
      dwt::inverse_dtcwt(dwt::forward_dtcwt(img, config, filter), config, filter);
  EXPECT_LT(max_abs_diff(img, rec), 1e-4);
}

TEST(Dtcwt, SingleTreeRoundTrip) {
  dwt::TransformConfig config;
  dwt::ScalarLineFilter filter;
  const ImageF img = random_image(40, 40, 11);
  const dwt::TreePyramid pyr = dwt::forward_tree(img, config, 0, 0, filter);
  const ImageF rec = dwt::inverse_tree(pyr, config, 0, 0, filter);
  EXPECT_LT(max_abs_diff(img, rec), 1e-4);
}

TEST(Dtcwt, DualTreeCostsFourTimesTheDwt) {
  dwt::TransformConfig config;
  const ImageF img = random_image(40, 40, 13);
  dwt::ScalarLineFilter f1, f4;
  dwt::forward_tree(img, config, 0, 0, f1);
  dwt::forward_dtcwt(img, config, f4);
  EXPECT_EQ(4 * f1.stats().total_macs(), f4.stats().total_macs());
  EXPECT_EQ(4 * f1.stats().analysis_lines, f4.stats().analysis_lines);
}

TEST(Dtcwt, SimdFilterMatchesScalarBitExactly) {
  dwt::TransformConfig config;
  const ImageF img = random_image(35, 35, 17);
  dwt::ScalarLineFilter fs;
  dwt::SimdLineFilter fv;
  const dwt::DtcwtPyramid ps = dwt::forward_dtcwt(img, config, fs);
  const dwt::DtcwtPyramid pv = dwt::forward_dtcwt(img, config, fv);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(0.0, max_abs_diff(ps.tree[t].ll, pv.tree[t].ll)) << "tree " << t;
    for (std::size_t lv = 0; lv < ps.tree[t].levels.size(); ++lv) {
      EXPECT_EQ(0.0, max_abs_diff(ps.tree[t].levels[lv].hh,
                                  pv.tree[t].levels[lv].hh))
          << "tree " << t << " level " << lv;
    }
  }
}

}  // namespace

// Fusion-quality metric sanity checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/image/metrics.h"

namespace {

using namespace vf;
using image::ImageF;

ImageF random_image(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  ImageF img(rows, cols);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = rng.next_float(0.0f, 1.0f);
  }
  return img;
}

TEST(Metrics, PsnrIsInfiniteForIdenticalImages) {
  const ImageF img = random_image(16, 16, 1);
  EXPECT_TRUE(std::isinf(image::psnr(img, img)));
}

TEST(Metrics, PsnrDropsWithNoise) {
  const ImageF img = random_image(32, 32, 2);
  ImageF small = img, large = img;
  Rng rng(3);
  for (std::size_t i = 0; i < img.size(); ++i) {
    const float n = rng.next_float(-1.0f, 1.0f);
    small.data()[i] += 0.001f * n;
    large.data()[i] += 0.05f * n;
  }
  const double p_small = image::psnr(img, small);
  const double p_large = image::psnr(img, large);
  EXPECT_GT(p_small, p_large);
  EXPECT_GT(p_small, 50.0);
  EXPECT_LT(p_large, 40.0);
}

TEST(Metrics, EntropyBounds) {
  const ImageF flat(16, 16, 0.5f);
  EXPECT_NEAR(image::entropy(flat), 0.0, 1e-12);
  const ImageF noisy = random_image(64, 64, 4);
  const double h = image::entropy(noisy);
  EXPECT_GT(h, 6.0);  // uniform noise over 256 bins
  EXPECT_LE(h, 8.0 + 1e-9);
}

TEST(Metrics, MutualInformationSelfVsIndependent) {
  // Large images keep the finite-sample bias of the 64x64 joint histogram
  // well below the signal.
  const ImageF a = random_image(128, 128, 5);
  const ImageF b = random_image(128, 128, 6);
  const double self_mi = image::mutual_information(a, a);
  const double cross_mi = image::mutual_information(a, b);
  EXPECT_GT(self_mi, 2.0);       // I(A;A) = H(A)
  EXPECT_LT(cross_mi, 0.7);      // independent noise (plus histogram bias)
  EXPECT_GT(self_mi, 2.0 * cross_mi);
}

TEST(Metrics, QabfRangeAndPerfectFusion) {
  const ImageF a = random_image(32, 32, 7);
  const ImageF b = random_image(32, 32, 8);
  // Fused == one of the inputs: its edges are perfectly preserved, so the
  // index is strictly positive and bounded by 1.
  const double q = image::petrovic_qabf(a, b, a);
  EXPECT_GT(q, 0.3);
  EXPECT_LE(q, 1.0);
  // A flat "fusion" preserves no gradients at all.
  const ImageF flat(32, 32, 0.5f);
  EXPECT_LT(image::petrovic_qabf(a, b, flat), q);
}

TEST(Metrics, EvaluateFusionBundlesAllThree) {
  const ImageF a = random_image(24, 24, 9);
  const ImageF b = random_image(24, 24, 10);
  const auto q = image::evaluate_fusion(a, b, a);
  EXPECT_GT(q.entropy_fused, 0.0);
  EXPECT_GT(q.mi, 0.0);
  EXPECT_GT(q.qabf, 0.0);
}

}  // namespace

// Locks the Table I calibration of the resource model.
#include <gtest/gtest.h>

#include "src/hw/fixed_point.h"
#include "src/hw/resources.h"

namespace {

using namespace vf;

TEST(Resources, PaperConfigurationReproducesTableIExactly) {
  const hw::DevicePart part;
  const hw::ResourceUsage u = estimate_engine_resources(hw::paper_engine_config());
  EXPECT_EQ(u.registers, 23412);
  EXPECT_EQ(u.luts, 17405);
  EXPECT_EQ(u.slices, 7890);
  EXPECT_EQ(u.bufg, 3);
  EXPECT_EQ(u.pct_registers(part), 22);
  EXPECT_EQ(u.pct_luts(part), 32);
  EXPECT_EQ(u.pct_slices(part), 59);
  EXPECT_EQ(u.pct_bufg(part), 9);
  EXPECT_EQ(u.dsp48, 0);  // the float datapath builds multipliers from logic
}

TEST(Resources, DevicePartIsTheZc702Fabric) {
  const hw::DevicePart part;
  EXPECT_EQ(part.name, "xc7z020clg484-1");
  EXPECT_EQ(part.registers, 106400);
  EXPECT_EQ(part.luts, 53200);
  EXPECT_EQ(part.slices, 13300);
}

TEST(Resources, DeeperEngineCostsMore) {
  hw::WaveletEngineConfig c12 = hw::paper_engine_config();
  hw::WaveletEngineConfig c14 = c12;
  c14.slots = 14;
  const auto u12 = estimate_engine_resources(c12);
  const auto u14 = estimate_engine_resources(c14);
  EXPECT_GT(u14.registers, u12.registers);
  EXPECT_GT(u14.luts, u12.luts);
  EXPECT_GT(u14.slices, u12.slices);
  // Still fits the part.
  const hw::DevicePart part;
  EXPECT_LT(u14.slices, part.slices);
}

TEST(Resources, DefaultConfigurationHasFourteenSlots) {
  const hw::WaveletEngineConfig config;
  EXPECT_EQ(config.slots, 14);  // needed for the q-shift filters
  EXPECT_TRUE(config.dma_enabled);
}

TEST(Resources, FixedPointEngineTradesSlicesForDsp48) {
  const hw::WaveletEngineConfig config = hw::paper_engine_config();
  const auto f32 = estimate_engine_resources(config);
  const auto q18 = estimate_engine_resources_fixed(config, {18, 15});
  const auto q32 = estimate_engine_resources_fixed(config, {32, 24});
  EXPECT_LT(q18.slices, f32.slices / 4);
  EXPECT_GT(q18.dsp48, 0);
  // Wide words need cascaded DSPs.
  EXPECT_EQ(q32.dsp48, 2 * q18.dsp48);
  const hw::DevicePart part;
  EXPECT_LE(q32.dsp48, part.dsp48);
}

TEST(Resources, BramScalesWithBufferWords) {
  hw::WaveletEngineConfig small = hw::paper_engine_config();
  small.buffer_words = 512;
  hw::WaveletEngineConfig large = hw::paper_engine_config();
  large.buffer_words = 4096;
  EXPECT_LT(estimate_engine_resources(small).bram36,
            estimate_engine_resources(large).bram36);
}

}  // namespace

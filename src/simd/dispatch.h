// Startup-time kernel dispatch: one resolved implementation per kernel
// family, selectable between the scalar / simd / autovec flavours.
//
// The default set is "simd" — bit-identical to scalar (kernels.cpp keeps the
// scalar accumulation order in every ISA path), so flipping the dispatch
// never changes any modeled or fused output. "autovec" is an explicit
// opt-in (bench --kernels autovec): it is within 1 ulp of scalar but not
// guaranteed bit-identical on every compiler, so it must never become the
// silent default underneath the determinism tests.
//
// LineFilter::kernels() (dwt_fusion.h) returns one of these sets; everything
// the transform executes — including from thread-pool workers — goes through
// the set's function pointers, which is how `--kernels` reaches every
// backend, and how src/sched/pipeline.cpp's fusion-rule path stopped
// hard-coding complex_magnitude_scalar.
#pragma once

#include "src/simd/kernels.h"

namespace vf::simd {

struct KernelSet {
  const char* name;  // "scalar" | "simd" | "autovec"
  void (*analyze)(const float* x, int out_len, const float* lp, const float* hp,
                  int taps, float* lo, float* hi);
  void (*synthesize)(const float* x, int pairs, const float* ca, const float* cb,
                     int taps, float* out);
  void (*magnitude)(const float* re, const float* im, int n, float* mag);
  void (*select)(const float* a_re, const float* a_im, const float* b_re,
                 const float* b_im, const float* mag_a, const float* mag_b, int n,
                 float* out_re, float* out_im);
  void (*average)(const float* a, const float* b, int n, float* out);
  // Multi-line forms (kernels.h): per line they run the exact single-line
  // flavour above, so they inherit its bit-identity/1-ulp contract; the
  // tiled DT-CWT host path (dwt_fusion.cpp) feeds them blocks of up to
  // kMaxLinesPerCall lines.
  void (*analyze_ml)(const float* x, int x_stride, int nlines, int out_len,
                     const float* lp, const float* hp, int taps, float* lo,
                     float* hi, int out_stride);
  void (*synthesize_ml)(const float* x, int x_stride, int nlines, int pairs,
                        const float* ca, const float* cb, int taps, float* out,
                        int out_stride);
  void (*magnitude_ml)(const float* re, const float* im, int nlines, int len,
                       int in_stride, float* mag, int out_stride);
  void (*select_ml)(const float* a_re, const float* a_im, const float* b_re,
                    const float* b_im, const float* mag_a, const float* mag_b,
                    int nlines, int len, int in_stride, float* out_re,
                    float* out_im, int out_stride);
  // Fused cross-stage forms (kernels.h): forward column analysis + complex
  // magnitude in one walk, and magnitude select + inverse synthesis in one
  // walk. Per line they delegate to the single-line flavours above, so the
  // band-streaming plan (src/fusion/fused_plan.cpp) inherits the same
  // bit-identity/1-ulp contract as the staged path.
  void (*analyze_mag_ml)(const float* x_re, const float* x_im, int x_stride,
                         int nlines, int out_len, const float* lp_re,
                         const float* hp_re, const float* lp_im,
                         const float* hp_im, int taps, float* lo_re,
                         float* hi_re, float* lo_im, float* hi_im,
                         float* mag_lo, float* mag_hi, int out_stride);
  void (*select_synth_ml)(const float* lo_a, const float* lo_b,
                          const float* mlo_a, const float* mlo_b,
                          const float* hi_a, const float* hi_b,
                          const float* mhi_a, const float* mhi_b,
                          int in_stride, int nlines, int pairs, const float* ca,
                          const float* cb, int taps, int synth_offset,
                          float* out, int out_stride);
};

const KernelSet& scalar_kernels();
const KernelSet& simd_kernels();
const KernelSet& autovec_kernels();

// Process-wide active set (default: simd). set_active_kernels returns false
// on an unknown name and leaves the selection unchanged. Not synchronized:
// select at startup (bench_util's --kernels), before spawning parallel work.
const KernelSet& active_kernels();
bool set_active_kernels(const char* name);

}  // namespace vf::simd

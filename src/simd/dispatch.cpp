#include "src/simd/dispatch.h"

#include <cstring>

namespace vf::simd {

const KernelSet& scalar_kernels() {
  static const KernelSet set = {
      "scalar",
      dual_corr_decimate2_scalar,
      dual_corr_decimate2_ileave_scalar,
      complex_magnitude_scalar,
      select_by_magnitude_scalar,
      average_scalar,
      dual_corr_decimate2_ml_scalar,
      dual_corr_decimate2_ileave_ml_scalar,
      complex_magnitude_ml_scalar,
      select_by_magnitude_ml_scalar,
      analyze_mag_ml_scalar,
      select_synth_ml_scalar,
  };
  return set;
}

const KernelSet& simd_kernels() {
  static const KernelSet set = {
      "simd",
      dual_corr_decimate2_simd,
      dual_corr_decimate2_ileave_simd,
      complex_magnitude_simd,
      select_by_magnitude_simd,
      average_simd,
      dual_corr_decimate2_ml_simd,
      dual_corr_decimate2_ileave_ml_simd,
      complex_magnitude_ml_simd,
      select_by_magnitude_ml_simd,
      analyze_mag_ml_simd,
      select_synth_ml_simd,
  };
  return set;
}

const KernelSet& autovec_kernels() {
  static const KernelSet set = {
      "autovec",
      dual_corr_decimate2_autovec,
      dual_corr_decimate2_ileave_autovec,
      complex_magnitude_autovec,
      select_by_magnitude_autovec,
      average_autovec,
      dual_corr_decimate2_ml_autovec,
      dual_corr_decimate2_ileave_ml_autovec,
      complex_magnitude_ml_autovec,
      select_by_magnitude_ml_autovec,
      analyze_mag_ml_autovec,
      select_synth_ml_autovec,
  };
  return set;
}

namespace {
const KernelSet* g_active = &simd_kernels();
}  // namespace

const KernelSet& active_kernels() { return *g_active; }

bool set_active_kernels(const char* name) {
  if (std::strcmp(name, "scalar") == 0) {
    g_active = &scalar_kernels();
  } else if (std::strcmp(name, "simd") == 0) {
    g_active = &simd_kernels();
  } else if (std::strcmp(name, "autovec") == 0) {
    g_active = &autovec_kernels();
  } else {
    return false;
  }
  return true;
}

}  // namespace vf::simd

// Compute kernels of the fusion pipeline, in three flavours each:
//
//   *_scalar  — reference implementation, one output at a time;
//   *_simd    — hand-vectorized: SSE2 / NEON intrinsics where the target has
//               them (see simd_isa_name()), otherwise the 4-lane blocked code
//               mirroring the paper's NEON port. Accumulation order matches
//               the scalar kernel exactly, so results are bit-identical;
//   *_autovec — plain nested loop laid out for the compiler's vectorizer
//               (kernels_autovec.cpp, its own TU so tests/check_autovec.cmake
//               can recompile it with vectorization reports and assert the
//               hot loops vectorized). Within 1 ulp of scalar.
//
// All kernels are pure: extension/padding policy (periodic, symmetric) is the
// caller's job — `x` must already hold the extended line. This is exactly the
// contract of the paper's FPGA wavelet engine, which also receives a line
// buffer of `2*out_len + taps` samples per request. Purity is also what lets
// the host thread pool (src/common/thread_pool.h) call any flavour from
// worker threads; per-kernel flavour selection lives in src/simd/dispatch.h.
//
//   dual_corr_decimate2:        lo[i] = sum_t lp[t] * x[2i + t]
//                               hi[i] = sum_t hp[t] * x[2i + t]
//   dual_corr_decimate2_ileave: out[2k]   = sum_t ca[t] * x[2k + t]
//                               out[2k+1] = sum_t cb[t] * x[2k + t]
//     (synthesis form: x is the interleaved lo/hi stream, ca/cb are the even/
//      odd polyphase filters, so one pass reconstructs two output samples)
//   complex_magnitude:          mag[i] = sqrt(re[i]^2 + im[i]^2)
//   select_by_magnitude:        out[i] = mag_a[i] >= mag_b[i] ? a[i] : b[i]
//   average:                    out[i] = 0.5 * (a[i] + b[i])
#pragma once

#include <cstdint>

namespace vf::simd {

inline constexpr int kSimdLanes = 4;

// Instruction set the *_simd kernels compiled to: "sse2", "neon", or
// "blocked" (portable 4-lane fallback).
const char* simd_isa_name();

// --- analysis: dual correlation + decimate by 2 -----------------------------
void dual_corr_decimate2_scalar(const float* x, int out_len, const float* lp,
                                const float* hp, int taps, float* lo, float* hi);
void dual_corr_decimate2_simd(const float* x, int out_len, const float* lp,
                              const float* hp, int taps, float* lo, float* hi);
void dual_corr_decimate2_autovec(const float* x, int out_len, const float* lp,
                                 const float* hp, int taps, float* lo, float* hi);

// --- synthesis: dual correlation over the interleaved subband stream --------
void dual_corr_decimate2_ileave_scalar(const float* x, int pairs, const float* ca,
                                       const float* cb, int taps, float* out);
void dual_corr_decimate2_ileave_simd(const float* x, int pairs, const float* ca,
                                     const float* cb, int taps, float* out);
void dual_corr_decimate2_ileave_autovec(const float* x, int pairs, const float* ca,
                                        const float* cb, int taps, float* out);

// --- fusion rule helpers ----------------------------------------------------
void complex_magnitude_scalar(const float* re, const float* im, int n, float* mag);
void complex_magnitude_simd(const float* re, const float* im, int n, float* mag);
void complex_magnitude_autovec(const float* re, const float* im, int n, float* mag);

void select_by_magnitude_scalar(const float* a_re, const float* a_im, const float* b_re,
                                const float* b_im, const float* mag_a,
                                const float* mag_b, int n, float* out_re,
                                float* out_im);
void select_by_magnitude_simd(const float* a_re, const float* a_im, const float* b_re,
                              const float* b_im, const float* mag_a, const float* mag_b,
                              int n, float* out_re, float* out_im);
void select_by_magnitude_autovec(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b, int n,
                                 float* out_re, float* out_im);

// --- lowpass residual averaging ---------------------------------------------
void average_scalar(const float* a, const float* b, int n, float* out);
void average_simd(const float* a, const float* b, int n, float* out);
void average_autovec(const float* a, const float* b, int n, float* out);

// --- multi-line variants -----------------------------------------------------
//
// Process `nlines` independent lines per call: line l reads its (extended)
// inputs at base + l*stride and writes outputs at base + l*out_stride. Per
// line the arithmetic order is EXACTLY the single-line flavour's (the scalar
// _ml variant calls the scalar kernel per line, the simd one the simd kernel,
// ...), so batching lines never moves an output bit and every flavour-parity
// guarantee above carries over line by line. What a multi-line call buys is
// host throughput: one dispatch-table indirection per 4-8 lines instead of
// per line, scratch sizing amortized across the batch, and a contiguous walk
// over a block of lines the caller laid out back-to-back (the cache-blocked
// transpose in dwt_fusion.cpp produces exactly that layout for column
// filtering). kMaxLinesPerCall bounds the batch so a block of extended
// lines stays inside L1.
inline constexpr int kMaxLinesPerCall = 8;

void dual_corr_decimate2_ml_scalar(const float* x, int x_stride, int nlines,
                                   int out_len, const float* lp, const float* hp,
                                   int taps, float* lo, float* hi, int out_stride);
void dual_corr_decimate2_ml_simd(const float* x, int x_stride, int nlines,
                                 int out_len, const float* lp, const float* hp,
                                 int taps, float* lo, float* hi, int out_stride);
void dual_corr_decimate2_ml_autovec(const float* x, int x_stride, int nlines,
                                    int out_len, const float* lp, const float* hp,
                                    int taps, float* lo, float* hi, int out_stride);

void dual_corr_decimate2_ileave_ml_scalar(const float* x, int x_stride, int nlines,
                                          int pairs, const float* ca, const float* cb,
                                          int taps, float* out, int out_stride);
void dual_corr_decimate2_ileave_ml_simd(const float* x, int x_stride, int nlines,
                                        int pairs, const float* ca, const float* cb,
                                        int taps, float* out, int out_stride);
void dual_corr_decimate2_ileave_ml_autovec(const float* x, int x_stride, int nlines,
                                           int pairs, const float* ca, const float* cb,
                                           int taps, float* out, int out_stride);

void complex_magnitude_ml_scalar(const float* re, const float* im, int nlines,
                                 int len, int in_stride, float* mag, int out_stride);
void complex_magnitude_ml_simd(const float* re, const float* im, int nlines,
                               int len, int in_stride, float* mag, int out_stride);
void complex_magnitude_ml_autovec(const float* re, const float* im, int nlines,
                                  int len, int in_stride, float* mag, int out_stride);

void select_by_magnitude_ml_scalar(const float* a_re, const float* a_im,
                                   const float* b_re, const float* b_im,
                                   const float* mag_a, const float* mag_b,
                                   int nlines, int len, int in_stride,
                                   float* out_re, float* out_im, int out_stride);
void select_by_magnitude_ml_simd(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b,
                                 int nlines, int len, int in_stride,
                                 float* out_re, float* out_im, int out_stride);
void select_by_magnitude_ml_autovec(const float* a_re, const float* a_im,
                                    const float* b_re, const float* b_im,
                                    const float* mag_a, const float* mag_b,
                                    int nlines, int len, int in_stride,
                                    float* out_re, float* out_im, int out_stride);

// --- fused cross-stage kernels (band-streaming execution plan) ---------------
//
// The fused host plan (src/fusion/fused_plan.cpp) collapses the forward
// column pass + magnitude, and the select rule + inverse synthesis, into one
// walk over each band block while it is still hot in cache. Per line these
// kernels delegate to the SAME single-line flavour primitives above — that is
// the contract, not an implementation shortcut: it pins the arithmetic order
// so the fused plan is bit-identical to the staged path in every flavour.
//
//   select_half:     out[i] = mag_a[i] >= mag_b[i] ? a[i] : b[i]
//     (one component of select_by_magnitude — pure data movement, used when
//      the fused plan selects the lo and hi streams of a synthesis line
//      independently)
//   analyze_mag_ml:  per line l: analyze the re-tree line with (lp_re, hp_re)
//     and the im-tree line with (lp_im, hp_im) — both lines pre-extended, same
//     stride — then, when mag_lo/mag_hi are non-null, complex_magnitude over
//     the freshly produced (lo_re, lo_im) / (hi_re, hi_im) pairs.
//   select_synth_ml: per line l: when the *_b inputs are non-null, half-select
//     the lo (and independently the hi) stream by magnitude; build the
//     periodic interleaved extension (the wrap fill of dwt_fusion.cpp's
//     synthesis path, offset = synth_offset); then one dual_corr ileave pass.
//     Null *_b means the stream is already fused — taken verbatim.

void select_half_scalar(const float* a, const float* b, const float* mag_a,
                        const float* mag_b, int n, float* out);
void select_half_simd(const float* a, const float* b, const float* mag_a,
                      const float* mag_b, int n, float* out);
void select_half_autovec(const float* a, const float* b, const float* mag_a,
                         const float* mag_b, int n, float* out);

void analyze_mag_ml_scalar(const float* x_re, const float* x_im, int x_stride,
                           int nlines, int out_len, const float* lp_re,
                           const float* hp_re, const float* lp_im,
                           const float* hp_im, int taps, float* lo_re,
                           float* hi_re, float* lo_im, float* hi_im,
                           float* mag_lo, float* mag_hi, int out_stride);
void analyze_mag_ml_simd(const float* x_re, const float* x_im, int x_stride,
                         int nlines, int out_len, const float* lp_re,
                         const float* hp_re, const float* lp_im,
                         const float* hp_im, int taps, float* lo_re,
                         float* hi_re, float* lo_im, float* hi_im,
                         float* mag_lo, float* mag_hi, int out_stride);
void analyze_mag_ml_autovec(const float* x_re, const float* x_im, int x_stride,
                            int nlines, int out_len, const float* lp_re,
                            const float* hp_re, const float* lp_im,
                            const float* hp_im, int taps, float* lo_re,
                            float* hi_re, float* lo_im, float* hi_im,
                            float* mag_lo, float* mag_hi, int out_stride);

void select_synth_ml_scalar(const float* lo_a, const float* lo_b,
                            const float* mlo_a, const float* mlo_b,
                            const float* hi_a, const float* hi_b,
                            const float* mhi_a, const float* mhi_b,
                            int in_stride, int nlines, int pairs,
                            const float* ca, const float* cb, int taps,
                            int synth_offset, float* out, int out_stride);
void select_synth_ml_simd(const float* lo_a, const float* lo_b,
                          const float* mlo_a, const float* mlo_b,
                          const float* hi_a, const float* hi_b,
                          const float* mhi_a, const float* mhi_b,
                          int in_stride, int nlines, int pairs,
                          const float* ca, const float* cb, int taps,
                          int synth_offset, float* out, int out_stride);
void select_synth_ml_autovec(const float* lo_a, const float* lo_b,
                             const float* mlo_a, const float* mlo_b,
                             const float* hi_a, const float* hi_b,
                             const float* mhi_a, const float* mhi_b,
                             int in_stride, int nlines, int pairs,
                             const float* ca, const float* cb, int taps,
                             int synth_offset, float* out, int out_stride);

// --- cache-blocked transpose -------------------------------------------------
//
// dst (cols x rows, row stride dst_stride) = transpose of src (rows x cols,
// row stride src_stride). 8x8 cache tiles with a 4x4 SIMD micro-kernel where
// the target has one; exact data movement, so there is nothing flavour-
// dependent to dispatch. This is what turns the DT-CWT column passes into
// contiguous row filtering (dwt_fusion.cpp).
void transpose_f32(const float* src, int rows, int cols, int src_stride,
                   float* dst, int dst_stride);

}  // namespace vf::simd

// Compute kernels of the fusion pipeline, in three flavours each:
//
//   *_scalar  — reference implementation, one output at a time;
//   *_simd    — hand-vectorized: SSE2 / NEON intrinsics where the target has
//               them (see simd_isa_name()), otherwise the 4-lane blocked code
//               mirroring the paper's NEON port. Accumulation order matches
//               the scalar kernel exactly, so results are bit-identical;
//   *_autovec — plain nested loop laid out for the compiler's vectorizer
//               (kernels_autovec.cpp, its own TU so tests/check_autovec.cmake
//               can recompile it with vectorization reports and assert the
//               hot loops vectorized). Within 1 ulp of scalar.
//
// All kernels are pure: extension/padding policy (periodic, symmetric) is the
// caller's job — `x` must already hold the extended line. This is exactly the
// contract of the paper's FPGA wavelet engine, which also receives a line
// buffer of `2*out_len + taps` samples per request. Purity is also what lets
// the host thread pool (src/common/thread_pool.h) call any flavour from
// worker threads; per-kernel flavour selection lives in src/simd/dispatch.h.
//
//   dual_corr_decimate2:        lo[i] = sum_t lp[t] * x[2i + t]
//                               hi[i] = sum_t hp[t] * x[2i + t]
//   dual_corr_decimate2_ileave: out[2k]   = sum_t ca[t] * x[2k + t]
//                               out[2k+1] = sum_t cb[t] * x[2k + t]
//     (synthesis form: x is the interleaved lo/hi stream, ca/cb are the even/
//      odd polyphase filters, so one pass reconstructs two output samples)
//   complex_magnitude:          mag[i] = sqrt(re[i]^2 + im[i]^2)
//   select_by_magnitude:        out[i] = mag_a[i] >= mag_b[i] ? a[i] : b[i]
//   average:                    out[i] = 0.5 * (a[i] + b[i])
#pragma once

#include <cstdint>

namespace vf::simd {

inline constexpr int kSimdLanes = 4;

// Instruction set the *_simd kernels compiled to: "sse2", "neon", or
// "blocked" (portable 4-lane fallback).
const char* simd_isa_name();

// --- analysis: dual correlation + decimate by 2 -----------------------------
void dual_corr_decimate2_scalar(const float* x, int out_len, const float* lp,
                                const float* hp, int taps, float* lo, float* hi);
void dual_corr_decimate2_simd(const float* x, int out_len, const float* lp,
                              const float* hp, int taps, float* lo, float* hi);
void dual_corr_decimate2_autovec(const float* x, int out_len, const float* lp,
                                 const float* hp, int taps, float* lo, float* hi);

// --- synthesis: dual correlation over the interleaved subband stream --------
void dual_corr_decimate2_ileave_scalar(const float* x, int pairs, const float* ca,
                                       const float* cb, int taps, float* out);
void dual_corr_decimate2_ileave_simd(const float* x, int pairs, const float* ca,
                                     const float* cb, int taps, float* out);
void dual_corr_decimate2_ileave_autovec(const float* x, int pairs, const float* ca,
                                        const float* cb, int taps, float* out);

// --- fusion rule helpers ----------------------------------------------------
void complex_magnitude_scalar(const float* re, const float* im, int n, float* mag);
void complex_magnitude_simd(const float* re, const float* im, int n, float* mag);
void complex_magnitude_autovec(const float* re, const float* im, int n, float* mag);

void select_by_magnitude_scalar(const float* a_re, const float* a_im, const float* b_re,
                                const float* b_im, const float* mag_a,
                                const float* mag_b, int n, float* out_re,
                                float* out_im);
void select_by_magnitude_simd(const float* a_re, const float* a_im, const float* b_re,
                              const float* b_im, const float* mag_a, const float* mag_b,
                              int n, float* out_re, float* out_im);
void select_by_magnitude_autovec(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b, int n,
                                 float* out_re, float* out_im);

// --- lowpass residual averaging ---------------------------------------------
void average_scalar(const float* a, const float* b, int n, float* out);
void average_simd(const float* a, const float* b, int n, float* out);
void average_autovec(const float* a, const float* b, int n, float* out);

}  // namespace vf::simd

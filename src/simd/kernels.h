// Compute kernels of the fusion pipeline, in three flavours each:
//
//   *_scalar  — reference implementation, one output at a time;
//   *_simd    — hand-vectorized: SSE2 / NEON intrinsics where the target has
//               them (see simd_isa_name()), otherwise the 4-lane blocked code
//               mirroring the paper's NEON port. Accumulation order matches
//               the scalar kernel exactly, so results are bit-identical;
//   *_autovec — plain nested loop laid out for the compiler's vectorizer
//               (kernels_autovec.cpp, its own TU so tests/check_autovec.cmake
//               can recompile it with vectorization reports and assert the
//               hot loops vectorized). Within 1 ulp of scalar.
//
// All kernels are pure: extension/padding policy (periodic, symmetric) is the
// caller's job — `x` must already hold the extended line. This is exactly the
// contract of the paper's FPGA wavelet engine, which also receives a line
// buffer of `2*out_len + taps` samples per request. Purity is also what lets
// the host thread pool (src/common/thread_pool.h) call any flavour from
// worker threads; per-kernel flavour selection lives in src/simd/dispatch.h.
//
//   dual_corr_decimate2:        lo[i] = sum_t lp[t] * x[2i + t]
//                               hi[i] = sum_t hp[t] * x[2i + t]
//   dual_corr_decimate2_ileave: out[2k]   = sum_t ca[t] * x[2k + t]
//                               out[2k+1] = sum_t cb[t] * x[2k + t]
//     (synthesis form: x is the interleaved lo/hi stream, ca/cb are the even/
//      odd polyphase filters, so one pass reconstructs two output samples)
//   complex_magnitude:          mag[i] = sqrt(re[i]^2 + im[i]^2)
//   select_by_magnitude:        out[i] = mag_a[i] >= mag_b[i] ? a[i] : b[i]
//   average:                    out[i] = 0.5 * (a[i] + b[i])
#pragma once

#include <cstdint>

namespace vf::simd {

inline constexpr int kSimdLanes = 4;

// Instruction set the *_simd kernels compiled to: "sse2", "neon", or
// "blocked" (portable 4-lane fallback).
const char* simd_isa_name();

// --- analysis: dual correlation + decimate by 2 -----------------------------
void dual_corr_decimate2_scalar(const float* x, int out_len, const float* lp,
                                const float* hp, int taps, float* lo, float* hi);
void dual_corr_decimate2_simd(const float* x, int out_len, const float* lp,
                              const float* hp, int taps, float* lo, float* hi);
void dual_corr_decimate2_autovec(const float* x, int out_len, const float* lp,
                                 const float* hp, int taps, float* lo, float* hi);

// --- synthesis: dual correlation over the interleaved subband stream --------
void dual_corr_decimate2_ileave_scalar(const float* x, int pairs, const float* ca,
                                       const float* cb, int taps, float* out);
void dual_corr_decimate2_ileave_simd(const float* x, int pairs, const float* ca,
                                     const float* cb, int taps, float* out);
void dual_corr_decimate2_ileave_autovec(const float* x, int pairs, const float* ca,
                                        const float* cb, int taps, float* out);

// --- fusion rule helpers ----------------------------------------------------
void complex_magnitude_scalar(const float* re, const float* im, int n, float* mag);
void complex_magnitude_simd(const float* re, const float* im, int n, float* mag);
void complex_magnitude_autovec(const float* re, const float* im, int n, float* mag);

void select_by_magnitude_scalar(const float* a_re, const float* a_im, const float* b_re,
                                const float* b_im, const float* mag_a,
                                const float* mag_b, int n, float* out_re,
                                float* out_im);
void select_by_magnitude_simd(const float* a_re, const float* a_im, const float* b_re,
                              const float* b_im, const float* mag_a, const float* mag_b,
                              int n, float* out_re, float* out_im);
void select_by_magnitude_autovec(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b, int n,
                                 float* out_re, float* out_im);

// --- lowpass residual averaging ---------------------------------------------
void average_scalar(const float* a, const float* b, int n, float* out);
void average_simd(const float* a, const float* b, int n, float* out);
void average_autovec(const float* a, const float* b, int n, float* out);

// --- multi-line variants -----------------------------------------------------
//
// Process `nlines` independent lines per call: line l reads its (extended)
// inputs at base + l*stride and writes outputs at base + l*out_stride. Per
// line the arithmetic order is EXACTLY the single-line flavour's (the scalar
// _ml variant calls the scalar kernel per line, the simd one the simd kernel,
// ...), so batching lines never moves an output bit and every flavour-parity
// guarantee above carries over line by line. What a multi-line call buys is
// host throughput: one dispatch-table indirection per 4-8 lines instead of
// per line, scratch sizing amortized across the batch, and a contiguous walk
// over a block of lines the caller laid out back-to-back (the cache-blocked
// transpose in dwt_fusion.cpp produces exactly that layout for column
// filtering). kMaxLinesPerCall bounds the batch so a block of extended
// lines stays inside L1.
inline constexpr int kMaxLinesPerCall = 8;

void dual_corr_decimate2_ml_scalar(const float* x, int x_stride, int nlines,
                                   int out_len, const float* lp, const float* hp,
                                   int taps, float* lo, float* hi, int out_stride);
void dual_corr_decimate2_ml_simd(const float* x, int x_stride, int nlines,
                                 int out_len, const float* lp, const float* hp,
                                 int taps, float* lo, float* hi, int out_stride);
void dual_corr_decimate2_ml_autovec(const float* x, int x_stride, int nlines,
                                    int out_len, const float* lp, const float* hp,
                                    int taps, float* lo, float* hi, int out_stride);

void dual_corr_decimate2_ileave_ml_scalar(const float* x, int x_stride, int nlines,
                                          int pairs, const float* ca, const float* cb,
                                          int taps, float* out, int out_stride);
void dual_corr_decimate2_ileave_ml_simd(const float* x, int x_stride, int nlines,
                                        int pairs, const float* ca, const float* cb,
                                        int taps, float* out, int out_stride);
void dual_corr_decimate2_ileave_ml_autovec(const float* x, int x_stride, int nlines,
                                           int pairs, const float* ca, const float* cb,
                                           int taps, float* out, int out_stride);

void complex_magnitude_ml_scalar(const float* re, const float* im, int nlines,
                                 int len, int in_stride, float* mag, int out_stride);
void complex_magnitude_ml_simd(const float* re, const float* im, int nlines,
                               int len, int in_stride, float* mag, int out_stride);
void complex_magnitude_ml_autovec(const float* re, const float* im, int nlines,
                                  int len, int in_stride, float* mag, int out_stride);

void select_by_magnitude_ml_scalar(const float* a_re, const float* a_im,
                                   const float* b_re, const float* b_im,
                                   const float* mag_a, const float* mag_b,
                                   int nlines, int len, int in_stride,
                                   float* out_re, float* out_im, int out_stride);
void select_by_magnitude_ml_simd(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b,
                                 int nlines, int len, int in_stride,
                                 float* out_re, float* out_im, int out_stride);
void select_by_magnitude_ml_autovec(const float* a_re, const float* a_im,
                                    const float* b_re, const float* b_im,
                                    const float* mag_a, const float* mag_b,
                                    int nlines, int len, int in_stride,
                                    float* out_re, float* out_im, int out_stride);

// --- cache-blocked transpose -------------------------------------------------
//
// dst (cols x rows, row stride dst_stride) = transpose of src (rows x cols,
// row stride src_stride). 8x8 cache tiles with a 4x4 SIMD micro-kernel where
// the target has one; exact data movement, so there is nothing flavour-
// dependent to dispatch. This is what turns the DT-CWT column passes into
// contiguous row filtering (dwt_fusion.cpp).
void transpose_f32(const float* src, int rows, int cols, int src_stride,
                   float* dst, int dst_stride);

}  // namespace vf::simd

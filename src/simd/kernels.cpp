#include "src/simd/kernels.h"

#include <cmath>
#include <vector>

namespace vf::simd {

namespace {

// Phase-split scratch for the decimating kernels. A decimate-by-2
// correlation reads the input at stride 2, which defeats packed loads; the
// NEON code this mirrors uses vld2 to deinterleave into even/odd phase
// lanes, after which every lane load is contiguous. Deinterleaving once per
// line costs O(n) and makes the 4-lane tap loop vectorizable.
//
//   lo[i] = sum_s lp[2s]*xe[i+s] + lp[2s+1]*xo[i+s]
//
// Accumulation order per output stays t-ascending (t = 2s, then 2s+1), so
// results are bit-identical to the scalar kernel.
thread_local std::vector<float> g_phase_scratch;

inline void deinterleave(const float* x, int out_len, int taps, float** xe,
                         float** xo) {
  const int ne = out_len + (taps + 1) / 2;  // even-phase samples needed
  const int no = out_len + taps / 2;        // odd-phase samples needed
  if (static_cast<int>(g_phase_scratch.size()) < ne + no) {
    g_phase_scratch.resize(ne + no);
  }
  float* e = g_phase_scratch.data();
  float* o = e + ne;
  for (int k = 0; k < ne; ++k) e[k] = x[2 * k];
  for (int k = 0; k < no; ++k) o[k] = x[2 * k + 1];
  *xe = e;
  *xo = o;
}

}  // namespace

// --- dual_corr_decimate2 ----------------------------------------------------

void dual_corr_decimate2_scalar(const float* x, int out_len, const float* lp,
                                const float* hp, int taps, float* lo, float* hi) {
  for (int i = 0; i < out_len; ++i) {
    const float* w = x + 2 * i;
    float acc_lo = 0.0f;
    float acc_hi = 0.0f;
    for (int t = 0; t < taps; ++t) {
      acc_lo += lp[t] * w[t];
      acc_hi += hp[t] * w[t];
    }
    lo[i] = acc_lo;
    hi[i] = acc_hi;
  }
}

void dual_corr_decimate2_simd(const float* x, int out_len, const float* lp,
                              const float* hp, int taps, float* lo, float* hi) {
  // vld2-style: deinterleave, then 4-lane blocks with contiguous loads.
  float* xe;
  float* xo;
  deinterleave(x, out_len, taps, &xe, &xo);
  const int pairs = taps / 2;
  int i = 0;
  for (; i + kSimdLanes <= out_len; i += kSimdLanes) {
    const float* pe = xe + i;
    const float* po = xo + i;
    float lo0 = 0.0f, lo1 = 0.0f, lo2 = 0.0f, lo3 = 0.0f;
    float hi0 = 0.0f, hi1 = 0.0f, hi2 = 0.0f, hi3 = 0.0f;
    for (int s = 0; s < pairs; ++s) {
      const float cle = lp[2 * s];
      const float clo = lp[2 * s + 1];
      const float che = hp[2 * s];
      const float cho = hp[2 * s + 1];
      const float e0 = pe[s], e1 = pe[s + 1], e2 = pe[s + 2], e3 = pe[s + 3];
      const float o0 = po[s], o1 = po[s + 1], o2 = po[s + 2], o3 = po[s + 3];
      lo0 += cle * e0;
      lo1 += cle * e1;
      lo2 += cle * e2;
      lo3 += cle * e3;
      lo0 += clo * o0;
      lo1 += clo * o1;
      lo2 += clo * o2;
      lo3 += clo * o3;
      hi0 += che * e0;
      hi1 += che * e1;
      hi2 += che * e2;
      hi3 += che * e3;
      hi0 += cho * o0;
      hi1 += cho * o1;
      hi2 += cho * o2;
      hi3 += cho * o3;
    }
    if (taps & 1) {
      const float cl = lp[taps - 1];
      const float ch = hp[taps - 1];
      lo0 += cl * pe[pairs];
      lo1 += cl * pe[pairs + 1];
      lo2 += cl * pe[pairs + 2];
      lo3 += cl * pe[pairs + 3];
      hi0 += ch * pe[pairs];
      hi1 += ch * pe[pairs + 1];
      hi2 += ch * pe[pairs + 2];
      hi3 += ch * pe[pairs + 3];
    }
    lo[i] = lo0;
    lo[i + 1] = lo1;
    lo[i + 2] = lo2;
    lo[i + 3] = lo3;
    hi[i] = hi0;
    hi[i + 1] = hi1;
    hi[i + 2] = hi2;
    hi[i + 3] = hi3;
  }
  if (i < out_len) {
    dual_corr_decimate2_scalar(x + 2 * i, out_len - i, lp, hp, taps, lo + i, hi + i);
  }
}

void dual_corr_decimate2_autovec(const float* x, int out_len, const float* lp,
                                 const float* hp, int taps, float* lo, float* hi) {
  // Tap-outer / output-inner loop order: unit-stride writes over lo/hi let the
  // compiler emit packed FMAs without any manual blocking.
  for (int i = 0; i < out_len; ++i) {
    lo[i] = 0.0f;
    hi[i] = 0.0f;
  }
  for (int t = 0; t < taps; ++t) {
    const float cl = lp[t];
    const float ch = hp[t];
    const float* xt = x + t;
    for (int i = 0; i < out_len; ++i) {
      lo[i] += cl * xt[2 * i];
      hi[i] += ch * xt[2 * i];
    }
  }
}

// --- dual_corr_decimate2_ileave ---------------------------------------------

void dual_corr_decimate2_ileave_scalar(const float* x, int pairs, const float* ca,
                                       const float* cb, int taps, float* out) {
  for (int k = 0; k < pairs; ++k) {
    const float* w = x + 2 * k;
    float acc_a = 0.0f;
    float acc_b = 0.0f;
    for (int t = 0; t < taps; ++t) {
      acc_a += ca[t] * w[t];
      acc_b += cb[t] * w[t];
    }
    out[2 * k] = acc_a;
    out[2 * k + 1] = acc_b;
  }
}

void dual_corr_decimate2_ileave_simd(const float* x, int pairs, const float* ca,
                                     const float* cb, int taps, float* out) {
  // Same vld2-style phase split as the analysis kernel; the two output
  // phases (even via ca, odd via cb) are stored back interleaved (vst2).
  float* xe;
  float* xo;
  deinterleave(x, pairs, taps, &xe, &xo);
  const int tap_pairs = taps / 2;
  int k = 0;
  for (; k + kSimdLanes <= pairs; k += kSimdLanes) {
    const float* pe = xe + k;
    const float* po = xo + k;
    float a[kSimdLanes] = {};
    float b[kSimdLanes] = {};
    for (int s = 0; s < tap_pairs; ++s) {
      const float fae = ca[2 * s];
      const float fao = ca[2 * s + 1];
      const float fbe = cb[2 * s];
      const float fbo = cb[2 * s + 1];
      for (int l = 0; l < kSimdLanes; ++l) {
        const float e = pe[s + l];
        const float o = po[s + l];
        a[l] += fae * e;
        a[l] += fao * o;
        b[l] += fbe * e;
        b[l] += fbo * o;
      }
    }
    if (taps & 1) {
      const float fa = ca[taps - 1];
      const float fb = cb[taps - 1];
      for (int l = 0; l < kSimdLanes; ++l) {
        a[l] += fa * pe[tap_pairs + l];
        b[l] += fb * pe[tap_pairs + l];
      }
    }
    for (int l = 0; l < kSimdLanes; ++l) {
      out[2 * (k + l)] = a[l];
      out[2 * (k + l) + 1] = b[l];
    }
  }
  if (k < pairs) {
    dual_corr_decimate2_ileave_scalar(x + 2 * k, pairs - k, ca, cb, taps,
                                      out + 2 * k);
  }
}

void dual_corr_decimate2_ileave_autovec(const float* x, int pairs, const float* ca,
                                        const float* cb, int taps, float* out) {
  for (int k = 0; k < 2 * pairs; ++k) out[k] = 0.0f;
  for (int t = 0; t < taps; ++t) {
    const float fa = ca[t];
    const float fb = cb[t];
    const float* xt = x + t;
    for (int k = 0; k < pairs; ++k) {
      out[2 * k] += fa * xt[2 * k];
      out[2 * k + 1] += fb * xt[2 * k];
    }
  }
}

// --- complex_magnitude ------------------------------------------------------

void complex_magnitude_scalar(const float* re, const float* im, int n, float* mag) {
  for (int i = 0; i < n; ++i) {
    mag[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
  }
}

void complex_magnitude_simd(const float* re, const float* im, int n, float* mag) {
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const float s0 = re[i] * re[i] + im[i] * im[i];
    const float s1 = re[i + 1] * re[i + 1] + im[i + 1] * im[i + 1];
    const float s2 = re[i + 2] * re[i + 2] + im[i + 2] * im[i + 2];
    const float s3 = re[i + 3] * re[i + 3] + im[i + 3] * im[i + 3];
    mag[i] = std::sqrt(s0);
    mag[i + 1] = std::sqrt(s1);
    mag[i + 2] = std::sqrt(s2);
    mag[i + 3] = std::sqrt(s3);
  }
  for (; i < n; ++i) mag[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
}

// --- select_by_magnitude ----------------------------------------------------

void select_by_magnitude_scalar(const float* a_re, const float* a_im, const float* b_re,
                                const float* b_im, const float* mag_a,
                                const float* mag_b, int n, float* out_re,
                                float* out_im) {
  for (int i = 0; i < n; ++i) {
    const bool take_a = mag_a[i] >= mag_b[i];
    out_re[i] = take_a ? a_re[i] : b_re[i];
    out_im[i] = take_a ? a_im[i] : b_im[i];
  }
}

void select_by_magnitude_simd(const float* a_re, const float* a_im, const float* b_re,
                              const float* b_im, const float* mag_a, const float* mag_b,
                              int n, float* out_re, float* out_im) {
  // Branch-free select so the compiler can lower it to vector blends.
  for (int i = 0; i < n; ++i) {
    const float take_a = mag_a[i] >= mag_b[i] ? 1.0f : 0.0f;
    const float take_b = 1.0f - take_a;
    out_re[i] = take_a * a_re[i] + take_b * b_re[i];
    out_im[i] = take_a * a_im[i] + take_b * b_im[i];
  }
}

}  // namespace vf::simd

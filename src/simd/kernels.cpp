#include "src/simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

// The *_simd kernels use real vector intrinsics where the target has them.
// Exactly one of these paths is active; the portable 4-lane blocked code is
// the fallback. Every path keeps the per-output accumulation order of the
// scalar kernel (taps ascending, products added one at a time, no FMA
// contraction), so all flavours here are bit-identical to *_scalar.
#if defined(__SSE2__)
#include <emmintrin.h>
#define VF_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define VF_SIMD_NEON 1
#endif

namespace vf::simd {

const char* simd_isa_name() {
#if defined(VF_SIMD_SSE2)
  return "sse2";
#elif defined(VF_SIMD_NEON)
  return "neon";
#else
  return "blocked";
#endif
}

namespace {

// Phase-split scratch for the decimating kernels. A decimate-by-2
// correlation reads the input at stride 2, which defeats packed loads; the
// NEON code this mirrors uses vld2 to deinterleave into even/odd phase
// lanes, after which every lane load is contiguous. Deinterleaving once per
// line costs O(n) and makes the 4-lane tap loop vectorizable.
//
//   lo[i] = sum_s lp[2s]*xe[i+s] + lp[2s+1]*xo[i+s]
//
// Accumulation order per output stays t-ascending (t = 2s, then 2s+1), so
// results are bit-identical to the scalar kernel.
thread_local std::vector<float> g_phase_scratch;

inline void deinterleave(const float* x, int out_len, int taps, float** xe,
                         float** xo) {
  const int ne = out_len + (taps + 1) / 2;  // even-phase samples needed
  const int no = out_len + taps / 2;        // odd-phase samples needed
  if (static_cast<int>(g_phase_scratch.size()) < ne + no) {
    g_phase_scratch.resize(ne + no);
  }
  float* e = g_phase_scratch.data();
  float* o = e + ne;
  for (int k = 0; k < ne; ++k) e[k] = x[2 * k];
  for (int k = 0; k < no; ++k) o[k] = x[2 * k + 1];
  *xe = e;
  *xo = o;
}

}  // namespace

// --- dual_corr_decimate2 ----------------------------------------------------

void dual_corr_decimate2_scalar(const float* x, int out_len, const float* lp,
                                const float* hp, int taps, float* lo, float* hi) {
  for (int i = 0; i < out_len; ++i) {
    const float* w = x + 2 * i;
    float acc_lo = 0.0f;
    float acc_hi = 0.0f;
    for (int t = 0; t < taps; ++t) {
      acc_lo += lp[t] * w[t];
      acc_hi += hp[t] * w[t];
    }
    lo[i] = acc_lo;
    hi[i] = acc_hi;
  }
}

void dual_corr_decimate2_simd(const float* x, int out_len, const float* lp,
                              const float* hp, int taps, float* lo, float* hi) {
  // vld2-style: deinterleave, then 4-lane blocks with contiguous loads.
  float* xe;
  float* xo;
  deinterleave(x, out_len, taps, &xe, &xo);
  const int pairs = taps / 2;
  int i = 0;
#if defined(VF_SIMD_SSE2)
  for (; i + kSimdLanes <= out_len; i += kSimdLanes) {
    const float* pe = xe + i;
    const float* po = xo + i;
    __m128 acc_lo = _mm_setzero_ps();
    __m128 acc_hi = _mm_setzero_ps();
    for (int s = 0; s < pairs; ++s) {
      const __m128 e = _mm_loadu_ps(pe + s);
      const __m128 o = _mm_loadu_ps(po + s);
      acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(_mm_set1_ps(lp[2 * s]), e));
      acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(_mm_set1_ps(lp[2 * s + 1]), o));
      acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(_mm_set1_ps(hp[2 * s]), e));
      acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(_mm_set1_ps(hp[2 * s + 1]), o));
    }
    if (taps & 1) {
      const __m128 e = _mm_loadu_ps(pe + pairs);
      acc_lo = _mm_add_ps(acc_lo, _mm_mul_ps(_mm_set1_ps(lp[taps - 1]), e));
      acc_hi = _mm_add_ps(acc_hi, _mm_mul_ps(_mm_set1_ps(hp[taps - 1]), e));
    }
    _mm_storeu_ps(lo + i, acc_lo);
    _mm_storeu_ps(hi + i, acc_hi);
  }
#elif defined(VF_SIMD_NEON)
  for (; i + kSimdLanes <= out_len; i += kSimdLanes) {
    const float* pe = xe + i;
    const float* po = xo + i;
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int s = 0; s < pairs; ++s) {
      const float32x4_t e = vld1q_f32(pe + s);
      const float32x4_t o = vld1q_f32(po + s);
      acc_lo = vaddq_f32(acc_lo, vmulq_n_f32(e, lp[2 * s]));
      acc_lo = vaddq_f32(acc_lo, vmulq_n_f32(o, lp[2 * s + 1]));
      acc_hi = vaddq_f32(acc_hi, vmulq_n_f32(e, hp[2 * s]));
      acc_hi = vaddq_f32(acc_hi, vmulq_n_f32(o, hp[2 * s + 1]));
    }
    if (taps & 1) {
      const float32x4_t e = vld1q_f32(pe + pairs);
      acc_lo = vaddq_f32(acc_lo, vmulq_n_f32(e, lp[taps - 1]));
      acc_hi = vaddq_f32(acc_hi, vmulq_n_f32(e, hp[taps - 1]));
    }
    vst1q_f32(lo + i, acc_lo);
    vst1q_f32(hi + i, acc_hi);
  }
#else
  for (; i + kSimdLanes <= out_len; i += kSimdLanes) {
    const float* pe = xe + i;
    const float* po = xo + i;
    float lo0 = 0.0f, lo1 = 0.0f, lo2 = 0.0f, lo3 = 0.0f;
    float hi0 = 0.0f, hi1 = 0.0f, hi2 = 0.0f, hi3 = 0.0f;
    for (int s = 0; s < pairs; ++s) {
      const float cle = lp[2 * s];
      const float clo = lp[2 * s + 1];
      const float che = hp[2 * s];
      const float cho = hp[2 * s + 1];
      const float e0 = pe[s], e1 = pe[s + 1], e2 = pe[s + 2], e3 = pe[s + 3];
      const float o0 = po[s], o1 = po[s + 1], o2 = po[s + 2], o3 = po[s + 3];
      lo0 += cle * e0;
      lo1 += cle * e1;
      lo2 += cle * e2;
      lo3 += cle * e3;
      lo0 += clo * o0;
      lo1 += clo * o1;
      lo2 += clo * o2;
      lo3 += clo * o3;
      hi0 += che * e0;
      hi1 += che * e1;
      hi2 += che * e2;
      hi3 += che * e3;
      hi0 += cho * o0;
      hi1 += cho * o1;
      hi2 += cho * o2;
      hi3 += cho * o3;
    }
    if (taps & 1) {
      const float cl = lp[taps - 1];
      const float ch = hp[taps - 1];
      lo0 += cl * pe[pairs];
      lo1 += cl * pe[pairs + 1];
      lo2 += cl * pe[pairs + 2];
      lo3 += cl * pe[pairs + 3];
      hi0 += ch * pe[pairs];
      hi1 += ch * pe[pairs + 1];
      hi2 += ch * pe[pairs + 2];
      hi3 += ch * pe[pairs + 3];
    }
    lo[i] = lo0;
    lo[i + 1] = lo1;
    lo[i + 2] = lo2;
    lo[i + 3] = lo3;
    hi[i] = hi0;
    hi[i + 1] = hi1;
    hi[i + 2] = hi2;
    hi[i + 3] = hi3;
  }
#endif
  if (i < out_len) {
    dual_corr_decimate2_scalar(x + 2 * i, out_len - i, lp, hp, taps, lo + i, hi + i);
  }
}

// --- dual_corr_decimate2_ileave ---------------------------------------------

void dual_corr_decimate2_ileave_scalar(const float* x, int pairs, const float* ca,
                                       const float* cb, int taps, float* out) {
  for (int k = 0; k < pairs; ++k) {
    const float* w = x + 2 * k;
    float acc_a = 0.0f;
    float acc_b = 0.0f;
    for (int t = 0; t < taps; ++t) {
      acc_a += ca[t] * w[t];
      acc_b += cb[t] * w[t];
    }
    out[2 * k] = acc_a;
    out[2 * k + 1] = acc_b;
  }
}

void dual_corr_decimate2_ileave_simd(const float* x, int pairs, const float* ca,
                                     const float* cb, int taps, float* out) {
  // Same vld2-style phase split as the analysis kernel; the two output
  // phases (even via ca, odd via cb) are stored back interleaved (vst2).
  float* xe;
  float* xo;
  deinterleave(x, pairs, taps, &xe, &xo);
  const int tap_pairs = taps / 2;
  int k = 0;
#if defined(VF_SIMD_SSE2)
  for (; k + kSimdLanes <= pairs; k += kSimdLanes) {
    const float* pe = xe + k;
    const float* po = xo + k;
    __m128 acc_a = _mm_setzero_ps();
    __m128 acc_b = _mm_setzero_ps();
    for (int s = 0; s < tap_pairs; ++s) {
      const __m128 e = _mm_loadu_ps(pe + s);
      const __m128 o = _mm_loadu_ps(po + s);
      acc_a = _mm_add_ps(acc_a, _mm_mul_ps(_mm_set1_ps(ca[2 * s]), e));
      acc_a = _mm_add_ps(acc_a, _mm_mul_ps(_mm_set1_ps(ca[2 * s + 1]), o));
      acc_b = _mm_add_ps(acc_b, _mm_mul_ps(_mm_set1_ps(cb[2 * s]), e));
      acc_b = _mm_add_ps(acc_b, _mm_mul_ps(_mm_set1_ps(cb[2 * s + 1]), o));
    }
    if (taps & 1) {
      const __m128 e = _mm_loadu_ps(pe + tap_pairs);
      acc_a = _mm_add_ps(acc_a, _mm_mul_ps(_mm_set1_ps(ca[taps - 1]), e));
      acc_b = _mm_add_ps(acc_b, _mm_mul_ps(_mm_set1_ps(cb[taps - 1]), e));
    }
    // unpacklo/hi interleave the even (acc_a) and odd (acc_b) phases back
    // into out[2k], out[2k+1], ... — the vst2 of the paper's NEON code.
    _mm_storeu_ps(out + 2 * k, _mm_unpacklo_ps(acc_a, acc_b));
    _mm_storeu_ps(out + 2 * k + 4, _mm_unpackhi_ps(acc_a, acc_b));
  }
#elif defined(VF_SIMD_NEON)
  for (; k + kSimdLanes <= pairs; k += kSimdLanes) {
    const float* pe = xe + k;
    const float* po = xo + k;
    float32x4_t acc_a = vdupq_n_f32(0.0f);
    float32x4_t acc_b = vdupq_n_f32(0.0f);
    for (int s = 0; s < tap_pairs; ++s) {
      const float32x4_t e = vld1q_f32(pe + s);
      const float32x4_t o = vld1q_f32(po + s);
      acc_a = vaddq_f32(acc_a, vmulq_n_f32(e, ca[2 * s]));
      acc_a = vaddq_f32(acc_a, vmulq_n_f32(o, ca[2 * s + 1]));
      acc_b = vaddq_f32(acc_b, vmulq_n_f32(e, cb[2 * s]));
      acc_b = vaddq_f32(acc_b, vmulq_n_f32(o, cb[2 * s + 1]));
    }
    if (taps & 1) {
      const float32x4_t e = vld1q_f32(pe + tap_pairs);
      acc_a = vaddq_f32(acc_a, vmulq_n_f32(e, ca[taps - 1]));
      acc_b = vaddq_f32(acc_b, vmulq_n_f32(e, cb[taps - 1]));
    }
    const float32x4x2_t ab = {{acc_a, acc_b}};
    vst2q_f32(out + 2 * k, ab);
  }
#else
  for (; k + kSimdLanes <= pairs; k += kSimdLanes) {
    const float* pe = xe + k;
    const float* po = xo + k;
    float a[kSimdLanes] = {};
    float b[kSimdLanes] = {};
    for (int s = 0; s < tap_pairs; ++s) {
      const float fae = ca[2 * s];
      const float fao = ca[2 * s + 1];
      const float fbe = cb[2 * s];
      const float fbo = cb[2 * s + 1];
      for (int l = 0; l < kSimdLanes; ++l) {
        const float e = pe[s + l];
        const float o = po[s + l];
        a[l] += fae * e;
        a[l] += fao * o;
        b[l] += fbe * e;
        b[l] += fbo * o;
      }
    }
    if (taps & 1) {
      const float fa = ca[taps - 1];
      const float fb = cb[taps - 1];
      for (int l = 0; l < kSimdLanes; ++l) {
        a[l] += fa * pe[tap_pairs + l];
        b[l] += fb * pe[tap_pairs + l];
      }
    }
    for (int l = 0; l < kSimdLanes; ++l) {
      out[2 * (k + l)] = a[l];
      out[2 * (k + l) + 1] = b[l];
    }
  }
#endif
  if (k < pairs) {
    dual_corr_decimate2_ileave_scalar(x + 2 * k, pairs - k, ca, cb, taps,
                                      out + 2 * k);
  }
}

// --- complex_magnitude ------------------------------------------------------

void complex_magnitude_scalar(const float* re, const float* im, int n, float* mag) {
  for (int i = 0; i < n; ++i) {
    mag[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
  }
}

void complex_magnitude_simd(const float* re, const float* im, int n, float* mag) {
  int i = 0;
#if defined(VF_SIMD_SSE2)
  // sqrtps is correctly rounded (IEEE), identical to scalar sqrtf.
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const __m128 r = _mm_loadu_ps(re + i);
    const __m128 m = _mm_loadu_ps(im + i);
    const __m128 sum = _mm_add_ps(_mm_mul_ps(r, r), _mm_mul_ps(m, m));
    _mm_storeu_ps(mag + i, _mm_sqrt_ps(sum));
  }
#elif defined(VF_SIMD_NEON) && defined(__aarch64__)
  // vsqrtq is AArch64-only; ARMv7 NEON has just the rsqrt estimate, which is
  // not bit-identical, so 32-bit ARM takes the blocked path below.
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const float32x4_t r = vld1q_f32(re + i);
    const float32x4_t m = vld1q_f32(im + i);
    vst1q_f32(mag + i, vsqrtq_f32(vaddq_f32(vmulq_f32(r, r), vmulq_f32(m, m))));
  }
#else
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const float s0 = re[i] * re[i] + im[i] * im[i];
    const float s1 = re[i + 1] * re[i + 1] + im[i + 1] * im[i + 1];
    const float s2 = re[i + 2] * re[i + 2] + im[i + 2] * im[i + 2];
    const float s3 = re[i + 3] * re[i + 3] + im[i + 3] * im[i + 3];
    mag[i] = std::sqrt(s0);
    mag[i + 1] = std::sqrt(s1);
    mag[i + 2] = std::sqrt(s2);
    mag[i + 3] = std::sqrt(s3);
  }
#endif
  for (; i < n; ++i) mag[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
}

// --- select_by_magnitude ----------------------------------------------------

void select_by_magnitude_scalar(const float* a_re, const float* a_im, const float* b_re,
                                const float* b_im, const float* mag_a,
                                const float* mag_b, int n, float* out_re,
                                float* out_im) {
  for (int i = 0; i < n; ++i) {
    const bool take_a = mag_a[i] >= mag_b[i];
    out_re[i] = take_a ? a_re[i] : b_re[i];
    out_im[i] = take_a ? a_im[i] : b_im[i];
  }
}

void select_by_magnitude_simd(const float* a_re, const float* a_im, const float* b_re,
                              const float* b_im, const float* mag_a, const float* mag_b,
                              int n, float* out_re, float* out_im) {
  // Bitwise select (not an arithmetic blend): the output is one of the two
  // inputs verbatim, so -0.0 and other sign bits survive and the result is
  // bit-identical to the scalar kernel.
  int i = 0;
#if defined(VF_SIMD_SSE2)
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const __m128 take_a = _mm_cmpge_ps(_mm_loadu_ps(mag_a + i), _mm_loadu_ps(mag_b + i));
    const __m128 re = _mm_or_ps(_mm_and_ps(take_a, _mm_loadu_ps(a_re + i)),
                                _mm_andnot_ps(take_a, _mm_loadu_ps(b_re + i)));
    const __m128 im = _mm_or_ps(_mm_and_ps(take_a, _mm_loadu_ps(a_im + i)),
                                _mm_andnot_ps(take_a, _mm_loadu_ps(b_im + i)));
    _mm_storeu_ps(out_re + i, re);
    _mm_storeu_ps(out_im + i, im);
  }
#elif defined(VF_SIMD_NEON)
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const uint32x4_t take_a = vcgeq_f32(vld1q_f32(mag_a + i), vld1q_f32(mag_b + i));
    vst1q_f32(out_re + i,
              vbslq_f32(take_a, vld1q_f32(a_re + i), vld1q_f32(b_re + i)));
    vst1q_f32(out_im + i,
              vbslq_f32(take_a, vld1q_f32(a_im + i), vld1q_f32(b_im + i)));
  }
#endif
  for (; i < n; ++i) {
    const bool take_a = mag_a[i] >= mag_b[i];
    out_re[i] = take_a ? a_re[i] : b_re[i];
    out_im[i] = take_a ? a_im[i] : b_im[i];
  }
}

// --- select_half -------------------------------------------------------------
// One component of select_by_magnitude. The fused synthesis kernel selects
// the lo and hi streams of a line independently, so it needs the single-
// plane form; it is pure data movement and chunk-invariant per element, so
// selecting a stream line-by-line produces the same bits as the staged
// whole-plane select.

void select_half_scalar(const float* a, const float* b, const float* mag_a,
                        const float* mag_b, int n, float* out) {
  for (int i = 0; i < n; ++i) {
    out[i] = mag_a[i] >= mag_b[i] ? a[i] : b[i];
  }
}

void select_half_simd(const float* a, const float* b, const float* mag_a,
                      const float* mag_b, int n, float* out) {
  // Bitwise select, like select_by_magnitude_simd: the output is one of the
  // two inputs verbatim, so sign bits survive.
  int i = 0;
#if defined(VF_SIMD_SSE2)
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const __m128 take_a =
        _mm_cmpge_ps(_mm_loadu_ps(mag_a + i), _mm_loadu_ps(mag_b + i));
    _mm_storeu_ps(out + i, _mm_or_ps(_mm_and_ps(take_a, _mm_loadu_ps(a + i)),
                                     _mm_andnot_ps(take_a, _mm_loadu_ps(b + i))));
  }
#elif defined(VF_SIMD_NEON)
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const uint32x4_t take_a =
        vcgeq_f32(vld1q_f32(mag_a + i), vld1q_f32(mag_b + i));
    vst1q_f32(out + i, vbslq_f32(take_a, vld1q_f32(a + i), vld1q_f32(b + i)));
  }
#endif
  for (; i < n; ++i) {
    out[i] = mag_a[i] >= mag_b[i] ? a[i] : b[i];
  }
}

// --- average ----------------------------------------------------------------

void average_scalar(const float* a, const float* b, int n, float* out) {
  for (int i = 0; i < n; ++i) out[i] = 0.5f * (a[i] + b[i]);
}

void average_simd(const float* a, const float* b, int n, float* out) {
  int i = 0;
#if defined(VF_SIMD_SSE2)
  const __m128 half = _mm_set1_ps(0.5f);
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const __m128 sum = _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    _mm_storeu_ps(out + i, _mm_mul_ps(half, sum));
  }
#elif defined(VF_SIMD_NEON)
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const float32x4_t sum = vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    vst1q_f32(out + i, vmulq_n_f32(sum, 0.5f));
  }
#endif
  for (; i < n; ++i) out[i] = 0.5f * (a[i] + b[i]);
}

// --- multi-line variants -----------------------------------------------------
//
// Per-line delegation is the contract, not an implementation shortcut: the
// bit-identity guarantees above are stated per line, so a multi-line call
// must be a sequence of single-line calls of the same flavour. The batch
// earns its keep above this layer (one dispatch per block, shared scratch,
// contiguous line layout from the transpose).

void dual_corr_decimate2_ml_scalar(const float* x, int x_stride, int nlines,
                                   int out_len, const float* lp, const float* hp,
                                   int taps, float* lo, float* hi, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    dual_corr_decimate2_scalar(x + l * x_stride, out_len, lp, hp, taps,
                               lo + l * out_stride, hi + l * out_stride);
  }
}

void dual_corr_decimate2_ml_simd(const float* x, int x_stride, int nlines,
                                 int out_len, const float* lp, const float* hp,
                                 int taps, float* lo, float* hi, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    dual_corr_decimate2_simd(x + l * x_stride, out_len, lp, hp, taps,
                             lo + l * out_stride, hi + l * out_stride);
  }
}

void dual_corr_decimate2_ileave_ml_scalar(const float* x, int x_stride, int nlines,
                                          int pairs, const float* ca, const float* cb,
                                          int taps, float* out, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    dual_corr_decimate2_ileave_scalar(x + l * x_stride, pairs, ca, cb, taps,
                                      out + l * out_stride);
  }
}

void dual_corr_decimate2_ileave_ml_simd(const float* x, int x_stride, int nlines,
                                        int pairs, const float* ca, const float* cb,
                                        int taps, float* out, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    dual_corr_decimate2_ileave_simd(x + l * x_stride, pairs, ca, cb, taps,
                                    out + l * out_stride);
  }
}

void complex_magnitude_ml_scalar(const float* re, const float* im, int nlines,
                                 int len, int in_stride, float* mag, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    complex_magnitude_scalar(re + l * in_stride, im + l * in_stride, len,
                             mag + l * out_stride);
  }
}

void complex_magnitude_ml_simd(const float* re, const float* im, int nlines,
                               int len, int in_stride, float* mag, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    complex_magnitude_simd(re + l * in_stride, im + l * in_stride, len,
                           mag + l * out_stride);
  }
}

void select_by_magnitude_ml_scalar(const float* a_re, const float* a_im,
                                   const float* b_re, const float* b_im,
                                   const float* mag_a, const float* mag_b,
                                   int nlines, int len, int in_stride,
                                   float* out_re, float* out_im, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    select_by_magnitude_scalar(a_re + l * in_stride, a_im + l * in_stride,
                               b_re + l * in_stride, b_im + l * in_stride,
                               mag_a + l * in_stride, mag_b + l * in_stride, len,
                               out_re + l * out_stride, out_im + l * out_stride);
  }
}

void select_by_magnitude_ml_simd(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b,
                                 int nlines, int len, int in_stride,
                                 float* out_re, float* out_im, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    select_by_magnitude_simd(a_re + l * in_stride, a_im + l * in_stride,
                             b_re + l * in_stride, b_im + l * in_stride,
                             mag_a + l * in_stride, mag_b + l * in_stride, len,
                             out_re + l * out_stride, out_im + l * out_stride);
  }
}

// The autovec _ml wrappers live here, not in kernels_autovec.cpp: that TU
// only holds loops the vectorization report must certify, and a per-line
// dispatch loop is not one. The inner calls still land on the autovec
// flavours, so the parity contract is unchanged.

void dual_corr_decimate2_ml_autovec(const float* x, int x_stride, int nlines,
                                    int out_len, const float* lp, const float* hp,
                                    int taps, float* lo, float* hi, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    dual_corr_decimate2_autovec(x + l * x_stride, out_len, lp, hp, taps,
                                lo + l * out_stride, hi + l * out_stride);
  }
}

void dual_corr_decimate2_ileave_ml_autovec(const float* x, int x_stride, int nlines,
                                           int pairs, const float* ca, const float* cb,
                                           int taps, float* out, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    dual_corr_decimate2_ileave_autovec(x + l * x_stride, pairs, ca, cb, taps,
                                       out + l * out_stride);
  }
}

void complex_magnitude_ml_autovec(const float* re, const float* im, int nlines,
                                  int len, int in_stride, float* mag, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    complex_magnitude_autovec(re + l * in_stride, im + l * in_stride, len,
                              mag + l * out_stride);
  }
}

void select_by_magnitude_ml_autovec(const float* a_re, const float* a_im,
                                    const float* b_re, const float* b_im,
                                    const float* mag_a, const float* mag_b,
                                    int nlines, int len, int in_stride,
                                    float* out_re, float* out_im, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    select_by_magnitude_autovec(a_re + l * in_stride, a_im + l * in_stride,
                                b_re + l * in_stride, b_im + l * in_stride,
                                mag_a + l * in_stride, mag_b + l * in_stride, len,
                                out_re + l * out_stride, out_im + l * out_stride);
  }
}

// --- fused cross-stage kernels ----------------------------------------------
//
// Same per-line delegation contract as the _ml variants: every fused call is
// a sequence of single-line calls of ONE flavour, in the order the staged
// path would have made them for that line. The fusion earns its keep by
// keeping the just-produced subband line in cache for the magnitude (forward)
// or by never spilling the selected line before synthesis (inverse) — it
// never reorders arithmetic. The autovec instantiations delegate to the
// certified loops in kernels_autovec.cpp; the dispatch loops themselves live
// here for the same reason the autovec _ml wrappers do.

namespace {

// Scratch for the fused select+synthesize kernel: the selected lo/hi halves
// of one line plus its interleaved periodic extension. Separate from
// g_phase_scratch, which the simd synthesis primitive consumes underneath.
thread_local std::vector<float> g_fused_scratch;

using AnalyzeFn = void (*)(const float*, int, const float*, const float*, int,
                           float*, float*);
using MagFn = void (*)(const float*, const float*, int, float*);
using HalfSelectFn = void (*)(const float*, const float*, const float*,
                              const float*, int, float*);
using IleaveFn = void (*)(const float*, int, const float*, const float*, int,
                          float*);

template <AnalyzeFn kAnalyze, MagFn kMag>
void analyze_mag_ml_impl(const float* x_re, const float* x_im, int x_stride,
                         int nlines, int out_len, const float* lp_re,
                         const float* hp_re, const float* lp_im,
                         const float* hp_im, int taps, float* lo_re,
                         float* hi_re, float* lo_im, float* hi_im,
                         float* mag_lo, float* mag_hi, int out_stride) {
  for (int l = 0; l < nlines; ++l) {
    const int o = l * out_stride;
    kAnalyze(x_re + l * x_stride, out_len, lp_re, hp_re, taps, lo_re + o,
             hi_re + o);
    kAnalyze(x_im + l * x_stride, out_len, lp_im, hp_im, taps, lo_im + o,
             hi_im + o);
    if (mag_lo != nullptr) kMag(lo_re + o, lo_im + o, out_len, mag_lo + o);
    if (mag_hi != nullptr) kMag(hi_re + o, hi_im + o, out_len, mag_hi + o);
  }
}

template <HalfSelectFn kSelect, IleaveFn kIleave>
void select_synth_ml_impl(const float* lo_a, const float* lo_b,
                          const float* mlo_a, const float* mlo_b,
                          const float* hi_a, const float* hi_b,
                          const float* mhi_a, const float* mhi_b, int in_stride,
                          int nlines, int pairs, const float* ca,
                          const float* cb, int taps, int synth_offset,
                          float* out, int out_stride) {
  const int n = 2 * pairs;
  if (n <= 0) return;
  const int ext_len = n + taps;
  if (static_cast<int>(g_fused_scratch.size()) < 2 * n + ext_len) {
    g_fused_scratch.resize(2 * n + ext_len);
  }
  float* sel_lo = g_fused_scratch.data();
  float* sel_hi = sel_lo + pairs;
  float* z = sel_hi + pairs;  // the interleaved lo/hi stream, pre-rotation
  float* ext = z + n;
  // fill_synthesis_ext's wrap counter (dwt_fusion.cpp): ext[k] is sample
  // (k - synth_offset) mod n of the interleaved lo/hi stream. Materializing
  // the stream once and rotating it with memcpy is pure data movement — the
  // same bytes land in ext as the per-sample wrap walk would place.
  const int start = ((-synth_offset) % n + n) % n;
  for (int l = 0; l < nlines; ++l) {
    const float* lo = lo_a + l * in_stride;
    if (lo_b != nullptr) {
      kSelect(lo, lo_b + l * in_stride, mlo_a + l * in_stride,
              mlo_b + l * in_stride, pairs, sel_lo);
      lo = sel_lo;
    }
    const float* hi = hi_a + l * in_stride;
    if (hi_b != nullptr) {
      kSelect(hi, hi_b + l * in_stride, mhi_a + l * in_stride,
              mhi_b + l * in_stride, pairs, sel_hi);
      hi = sel_hi;
    }
    for (int i = 0; i < pairs; ++i) {
      z[2 * i] = lo[i];
      z[2 * i + 1] = hi[i];
    }
    int k = n - start;
    std::memcpy(ext, z + start, static_cast<size_t>(k) * sizeof(float));
    while (k < ext_len) {
      const int chunk = std::min(n, ext_len - k);
      std::memcpy(ext + k, z, static_cast<size_t>(chunk) * sizeof(float));
      k += chunk;
    }
    kIleave(ext, pairs, ca, cb, taps, out + l * out_stride);
  }
}

}  // namespace

void analyze_mag_ml_scalar(const float* x_re, const float* x_im, int x_stride,
                           int nlines, int out_len, const float* lp_re,
                           const float* hp_re, const float* lp_im,
                           const float* hp_im, int taps, float* lo_re,
                           float* hi_re, float* lo_im, float* hi_im,
                           float* mag_lo, float* mag_hi, int out_stride) {
  analyze_mag_ml_impl<dual_corr_decimate2_scalar, complex_magnitude_scalar>(
      x_re, x_im, x_stride, nlines, out_len, lp_re, hp_re, lp_im, hp_im, taps,
      lo_re, hi_re, lo_im, hi_im, mag_lo, mag_hi, out_stride);
}

void analyze_mag_ml_simd(const float* x_re, const float* x_im, int x_stride,
                         int nlines, int out_len, const float* lp_re,
                         const float* hp_re, const float* lp_im,
                         const float* hp_im, int taps, float* lo_re,
                         float* hi_re, float* lo_im, float* hi_im,
                         float* mag_lo, float* mag_hi, int out_stride) {
  analyze_mag_ml_impl<dual_corr_decimate2_simd, complex_magnitude_simd>(
      x_re, x_im, x_stride, nlines, out_len, lp_re, hp_re, lp_im, hp_im, taps,
      lo_re, hi_re, lo_im, hi_im, mag_lo, mag_hi, out_stride);
}

void analyze_mag_ml_autovec(const float* x_re, const float* x_im, int x_stride,
                            int nlines, int out_len, const float* lp_re,
                            const float* hp_re, const float* lp_im,
                            const float* hp_im, int taps, float* lo_re,
                            float* hi_re, float* lo_im, float* hi_im,
                            float* mag_lo, float* mag_hi, int out_stride) {
  analyze_mag_ml_impl<dual_corr_decimate2_autovec, complex_magnitude_autovec>(
      x_re, x_im, x_stride, nlines, out_len, lp_re, hp_re, lp_im, hp_im, taps,
      lo_re, hi_re, lo_im, hi_im, mag_lo, mag_hi, out_stride);
}

void select_synth_ml_scalar(const float* lo_a, const float* lo_b,
                            const float* mlo_a, const float* mlo_b,
                            const float* hi_a, const float* hi_b,
                            const float* mhi_a, const float* mhi_b,
                            int in_stride, int nlines, int pairs,
                            const float* ca, const float* cb, int taps,
                            int synth_offset, float* out, int out_stride) {
  select_synth_ml_impl<select_half_scalar, dual_corr_decimate2_ileave_scalar>(
      lo_a, lo_b, mlo_a, mlo_b, hi_a, hi_b, mhi_a, mhi_b, in_stride, nlines,
      pairs, ca, cb, taps, synth_offset, out, out_stride);
}

void select_synth_ml_simd(const float* lo_a, const float* lo_b,
                          const float* mlo_a, const float* mlo_b,
                          const float* hi_a, const float* hi_b,
                          const float* mhi_a, const float* mhi_b,
                          int in_stride, int nlines, int pairs, const float* ca,
                          const float* cb, int taps, int synth_offset,
                          float* out, int out_stride) {
  select_synth_ml_impl<select_half_simd, dual_corr_decimate2_ileave_simd>(
      lo_a, lo_b, mlo_a, mlo_b, hi_a, hi_b, mhi_a, mhi_b, in_stride, nlines,
      pairs, ca, cb, taps, synth_offset, out, out_stride);
}

void select_synth_ml_autovec(const float* lo_a, const float* lo_b,
                             const float* mlo_a, const float* mlo_b,
                             const float* hi_a, const float* hi_b,
                             const float* mhi_a, const float* mhi_b,
                             int in_stride, int nlines, int pairs,
                             const float* ca, const float* cb, int taps,
                             int synth_offset, float* out, int out_stride) {
  select_synth_ml_impl<select_half_autovec, dual_corr_decimate2_ileave_autovec>(
      lo_a, lo_b, mlo_a, mlo_b, hi_a, hi_b, mhi_a, mhi_b, in_stride, nlines,
      pairs, ca, cb, taps, synth_offset, out, out_stride);
}

// --- transpose --------------------------------------------------------------

namespace {

inline void transpose_tail(const float* src, int rows, int cols, int src_stride,
                           float* dst, int dst_stride) {
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      dst[c * dst_stride + r] = src[r * src_stride + c];
    }
  }
}

#if defined(VF_SIMD_SSE2)
inline void transpose_4x4(const float* src, int src_stride, float* dst,
                          int dst_stride) {
  __m128 r0 = _mm_loadu_ps(src);
  __m128 r1 = _mm_loadu_ps(src + src_stride);
  __m128 r2 = _mm_loadu_ps(src + 2 * src_stride);
  __m128 r3 = _mm_loadu_ps(src + 3 * src_stride);
  _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
  _mm_storeu_ps(dst, r0);
  _mm_storeu_ps(dst + dst_stride, r1);
  _mm_storeu_ps(dst + 2 * dst_stride, r2);
  _mm_storeu_ps(dst + 3 * dst_stride, r3);
}
#elif defined(VF_SIMD_NEON)
inline void transpose_4x4(const float* src, int src_stride, float* dst,
                          int dst_stride) {
  const float32x4_t r0 = vld1q_f32(src);
  const float32x4_t r1 = vld1q_f32(src + src_stride);
  const float32x4_t r2 = vld1q_f32(src + 2 * src_stride);
  const float32x4_t r3 = vld1q_f32(src + 3 * src_stride);
  const float32x4x2_t t01 = vtrnq_f32(r0, r1);
  const float32x4x2_t t23 = vtrnq_f32(r2, r3);
  const float32x4_t c0 =
      vcombine_f32(vget_low_f32(t01.val[0]), vget_low_f32(t23.val[0]));
  const float32x4_t c1 =
      vcombine_f32(vget_low_f32(t01.val[1]), vget_low_f32(t23.val[1]));
  const float32x4_t c2 =
      vcombine_f32(vget_high_f32(t01.val[0]), vget_high_f32(t23.val[0]));
  const float32x4_t c3 =
      vcombine_f32(vget_high_f32(t01.val[1]), vget_high_f32(t23.val[1]));
  vst1q_f32(dst, c0);
  vst1q_f32(dst + dst_stride, c1);
  vst1q_f32(dst + 2 * dst_stride, c2);
  vst1q_f32(dst + 3 * dst_stride, c3);
}
#else
inline void transpose_4x4(const float* src, int src_stride, float* dst,
                          int dst_stride) {
  transpose_tail(src, 4, 4, src_stride, dst, dst_stride);
}
#endif

}  // namespace

void transpose_f32(const float* src, int rows, int cols, int src_stride,
                   float* dst, int dst_stride) {
  // 8x8 cache tiles, each covered by four 4x4 register-transposed quads.
  // 8x8 (two cache lines per row) keeps the strided side of the tile hot
  // while the quads do the shuffles in registers.
  constexpr int kTile = 8;
  const int r8 = rows & ~(kTile - 1);
  const int c8 = cols & ~(kTile - 1);
  for (int r = 0; r < r8; r += kTile) {
    for (int c = 0; c < c8; c += kTile) {
      const float* s = src + r * src_stride + c;
      float* d = dst + c * dst_stride + r;
      transpose_4x4(s, src_stride, d, dst_stride);
      transpose_4x4(s + 4, src_stride, d + 4 * dst_stride, dst_stride);
      transpose_4x4(s + 4 * src_stride, src_stride, d + 4, dst_stride);
      transpose_4x4(s + 4 * src_stride + 4, src_stride, d + 4 * dst_stride + 4,
                    dst_stride);
    }
    // right edge of this tile row
    if (c8 < cols) {
      transpose_tail(src + r * src_stride + c8, kTile, cols - c8, src_stride,
                     dst + c8 * dst_stride + r, dst_stride);
    }
  }
  // bottom edge, full width
  if (r8 < rows) {
    transpose_tail(src + r8 * src_stride, rows - r8, cols, src_stride,
                   dst + r8, dst_stride);
  }
}

}  // namespace vf::simd

// The *_autovec kernel flavours, isolated in their own translation unit so
// tests/check_autovec.cmake can recompile exactly this file with the
// compiler's vectorization report (-fopt-info-vec-optimized on GCC,
// -Rpass=loop-vectorize on Clang) and assert that every hot loop below
// actually vectorized. Keep this TU free of code whose loops are not meant
// to vectorize, or the assertion loses its teeth.
//
// Numerics contract (tests/test_kernels.cpp): each kernel accumulates in the
// same tap-ascending order as its scalar reference, so results are within
// 1 ulp (identical when the compiler does not contract mul+add into FMA).
#include "src/simd/kernels.h"

#include <cmath>

namespace vf::simd {

void dual_corr_decimate2_autovec(const float* x, int out_len, const float* lp,
                                 const float* hp, int taps, float* lo, float* hi) {
  // Tap-outer / output-inner loop order: unit-stride writes over lo/hi let the
  // compiler emit packed FMAs without any manual blocking.
  for (int i = 0; i < out_len; ++i) {
    lo[i] = 0.0f;
    hi[i] = 0.0f;
  }
  for (int t = 0; t < taps; ++t) {
    const float cl = lp[t];
    const float ch = hp[t];
    const float* xt = x + t;
    for (int i = 0; i < out_len; ++i) {
      lo[i] += cl * xt[2 * i];
      hi[i] += ch * xt[2 * i];
    }
  }
}

void dual_corr_decimate2_ileave_autovec(const float* x, int pairs, const float* ca,
                                        const float* cb, int taps, float* out) {
  for (int k = 0; k < 2 * pairs; ++k) out[k] = 0.0f;
  for (int t = 0; t < taps; ++t) {
    const float fa = ca[t];
    const float fb = cb[t];
    const float* xt = x + t;
    for (int k = 0; k < pairs; ++k) {
      out[2 * k] += fa * xt[2 * k];
      out[2 * k + 1] += fb * xt[2 * k];
    }
  }
}

void complex_magnitude_autovec(const float* re, const float* im, int n, float* mag) {
  // Vectorizes to packed sqrt when math-errno is off (vf_core builds with
  // -fno-math-errno; sqrt of a sum of squares cannot go negative anyway).
  for (int i = 0; i < n; ++i) {
    mag[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
  }
}

void select_by_magnitude_autovec(const float* a_re, const float* a_im,
                                 const float* b_re, const float* b_im,
                                 const float* mag_a, const float* mag_b, int n,
                                 float* out_re, float* out_im) {
  // One output stream per loop, with both candidate values loaded into
  // locals unconditionally: the ternary is then a pure register select
  // (VEC_COND), which the vectorizer lowers to compare + blend even at the
  // SSE2 baseline (conditional *loads* would need masked-load support and
  // defeat if-conversion). The output is one of the inputs verbatim
  // (bit-exact, unlike an arithmetic a*t + b*(1-t) blend, which loses
  // signed zeros).
  for (int i = 0; i < n; ++i) {
    const float ar = a_re[i];
    const float br = b_re[i];
    out_re[i] = mag_a[i] >= mag_b[i] ? ar : br;
  }
  for (int i = 0; i < n; ++i) {
    const float ai = a_im[i];
    const float bi = b_im[i];
    out_im[i] = mag_a[i] >= mag_b[i] ? ai : bi;
  }
}

void select_half_autovec(const float* a, const float* b, const float* mag_a,
                         const float* mag_b, int n, float* out) {
  // Single-plane form of the select above, used by the fused select+synth
  // kernel: same unconditional-load + ternary shape so the vectorizer keeps
  // lowering it to compare + blend (tests/check_autovec.cmake counts this
  // loop — the fused plan must not silently lose its vectorized select).
  for (int i = 0; i < n; ++i) {
    const float av = a[i];
    const float bv = b[i];
    out[i] = mag_a[i] >= mag_b[i] ? av : bv;
  }
}

void average_autovec(const float* a, const float* b, int n, float* out) {
  for (int i = 0; i < n; ++i) out[i] = 0.5f * (a[i] + b[i]);
}

}  // namespace vf::simd

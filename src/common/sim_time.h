// Modeled time on the simulated ZC702.
//
// Every duration the benches report is *modeled* target time derived from
// cycle counts and clock frequencies, never host wall-clock (DESIGN.md §2).
// SimDuration keeps that distinction visible in the type system.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace vf {

class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration seconds(double s) { return SimDuration(s); }
  static constexpr SimDuration milliseconds(double ms) { return SimDuration(ms * 1e-3); }
  static constexpr SimDuration microseconds(double us) { return SimDuration(us * 1e-6); }
  static constexpr SimDuration nanoseconds(double ns) { return SimDuration(ns * 1e-9); }
  static constexpr SimDuration zero() { return SimDuration(0.0); }

  constexpr double sec() const { return seconds_; }
  constexpr double ms() const { return seconds_ * 1e3; }
  constexpr double us() const { return seconds_ * 1e6; }
  constexpr double ns() const { return seconds_ * 1e9; }

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(seconds_ + o.seconds_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(seconds_ - o.seconds_);
  }
  constexpr SimDuration operator*(double k) const { return SimDuration(seconds_ * k); }
  constexpr double operator/(SimDuration o) const { return seconds_ / o.seconds_; }
  SimDuration& operator+=(SimDuration o) {
    seconds_ += o.seconds_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    seconds_ -= o.seconds_;
    return *this;
  }

  constexpr bool operator<(SimDuration o) const { return seconds_ < o.seconds_; }
  constexpr bool operator>(SimDuration o) const { return seconds_ > o.seconds_; }
  constexpr bool operator<=(SimDuration o) const { return seconds_ <= o.seconds_; }
  constexpr bool operator>=(SimDuration o) const { return seconds_ >= o.seconds_; }
  constexpr bool operator==(SimDuration o) const { return seconds_ == o.seconds_; }

  // Human-readable with an auto-selected unit: "1.234 s", "56.78 ms", ...
  std::string to_string() const {
    char buf[48];
    const double a = std::fabs(seconds_);
    if (a >= 1.0) {
      std::snprintf(buf, sizeof(buf), "%.3f s", seconds_);
    } else if (a >= 1e-3) {
      std::snprintf(buf, sizeof(buf), "%.2f ms", ms());
    } else if (a >= 1e-6) {
      std::snprintf(buf, sizeof(buf), "%.2f us", us());
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f ns", ns());
    }
    return buf;
  }

 private:
  explicit constexpr SimDuration(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

inline SimDuration operator*(double k, SimDuration d) { return d * k; }

}  // namespace vf

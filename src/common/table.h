// Aligned text tables for the paper-style bench output.
//
// Left-aligns the first column, right-aligns numeric columns, and pads with
// spaces so the printed rows line up like the tables in the paper.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vf {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
  }

  // Fixed-decimal number formatting used by every bench column.
  static std::string num(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
  }

  std::string to_string() const {
    const std::size_t cols = header_.size();
    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    std::string out;
    append_row(out, header_, width);
    // Separator under the header.
    std::string sep;
    for (std::size_t c = 0; c < cols; ++c) {
      if (c) sep += "-+-";
      sep.append(width[c], '-');
    }
    out += sep;
    out += '\n';
    for (const auto& row : rows_) append_row(out, row, width);
    return out;
  }

  std::size_t row_count() const { return rows_.size(); }

 private:
  static void append_row(std::string& out, const std::vector<std::string>& row,
                         const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c) out += " | ";
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      const std::size_t pad = width[c] - cell.size();
      if (c == 0) {  // left-align the label column
        out += cell;
        out.append(pad, ' ');
      } else {  // right-align data columns
        out.append(pad, ' ');
        out += cell;
      }
    }
    out += '\n';
  }

  inline static const std::string kEmpty;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vf

// Deterministic xorshift RNG.
//
// Every synthetic frame and every randomized test in the repo draws from this
// generator so that modeled results are bit-reproducible across runs and
// platforms (no std::mt19937 distribution differences, no global state).
#pragma once

#include <cstdint>

namespace vf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1u) {}

  // xorshift64* — fast, passes BigCrush on the high bits.
  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // Uniform integer in [0, n).
  int next_index(int n) { return static_cast<int>(next_double() * n); }

 private:
  std::uint64_t state_;
};

}  // namespace vf

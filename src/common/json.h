// Minimal ordered JSON writer for bench result files (--json). Write-only on
// purpose: benches emit machine-readable runs for CI trend tracking
// (BENCH_baseline.json), nothing in the tree parses JSON back.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace vf::json {

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(int n) : kind_(Kind::kInt), int_(n) {}
  Value(long long n) : kind_(Kind::kInt), int_(n) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }

  // Object insertion, preserving key order.
  Value& set(const std::string& key, Value v) {
    members_.emplace_back(key, std::move(v));
    return *this;
  }
  // Array append.
  Value& push(Value v) {
    members_.emplace_back(std::string(), std::move(v));
    return *this;
  }

  std::string dump(int indent = 0) const {
    std::string out;
    write(&out, indent, 0);
    return out;
  }

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  static void append_escaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (char c : s) {
      switch (c) {
        case '"':
          *out += "\\\"";
          break;
        case '\\':
          *out += "\\\\";
          break;
        case '\n':
          *out += "\\n";
          break;
        case '\t':
          *out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

  void write(std::string* out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    char buf[64];
    switch (kind_) {
      case Kind::kNull:
        *out += "null";
        return;
      case Kind::kBool:
        *out += bool_ ? "true" : "false";
        return;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld", int_);
        *out += buf;
        return;
      case Kind::kDouble:
        // %.17g round-trips an IEEE double exactly.
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
        return;
      case Kind::kString:
        append_escaped(out, string_);
        return;
      case Kind::kObject:
      case Kind::kArray: {
        const bool obj = kind_ == Kind::kObject;
        *out += obj ? "{" : "[";
        bool first = true;
        for (const auto& m : members_) {
          if (!first) *out += ",";
          first = false;
          *out += nl;
          *out += pad;
          if (obj) {
            append_escaped(out, m.first);
            *out += indent > 0 ? ": " : ":";
          }
          m.second.write(out, indent, depth + 1);
        }
        if (!first) {
          *out += nl;
          *out += close_pad;
        }
        *out += obj ? "}" : "]";
        return;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Value>> members_;
};

// Returns false (and prints to stderr) if the file cannot be written.
inline bool write_file(const std::string& path, const Value& value, int indent = 2) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  const std::string text = value.dump(indent);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace vf::json

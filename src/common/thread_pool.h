// Host-side execution pool for data-parallel numeric work.
//
// Everything in bench/ reports *modeled* ZC702 time; this pool only changes
// how fast the host computes the numerics behind those numbers. The design
// invariant is therefore: runs at any thread count produce bit-identical
// results. Two properties deliver that:
//
//   1. static partitioning — parallel_for splits [begin, end) into contiguous
//      chunks whose boundaries depend only on the range and the pool width,
//      and every task writes a disjoint output range; no parallel reductions,
//      no shared accumulators, so floating-point summation order never varies;
//   2. accounting stays serial — modeled-time bookkeeping (LineFilter
//      account_*) is never issued from pool workers; callers replay it in
//      canonical order after the numeric fan-out (see dwt_fusion.cpp).
//
// A parallel_for issued from inside a worker runs inline (serial), so nested
// parallelism degrades gracefully instead of deadlocking.
//
// Building with -DVF_THREADS=N hard-caps the pool width at compile time;
// -DVF_THREADS=1 forces the serial path everywhere (CI keeps that build green
// so threading never becomes load-bearing for correctness).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vf {

// Host execution knobs threaded through backends and bench_util. threads == 0
// defers to the process-wide default (host::set_default_threads, which the
// bench harness sets from --threads).
struct HostConfig {
  int threads = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs chunk_fn over a static contiguous partition of [begin, end): chunk k
  // of C covers q = n/C items plus one of the first n%C remainders, so the
  // partition depends only on (n, C). The calling thread participates; the
  // call returns when every chunk has finished. Reentrant calls from a worker
  // run the whole range inline.
  void parallel_for(int begin, int end, const std::function<void(int, int)>& chunk_fn) {
    const int n = end - begin;
    if (n <= 0) return;
    if (threads_ == 1 || n == 1 || in_worker()) {
      chunk_fn(begin, end);
      return;
    }
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    auto job = std::make_shared<Job>();
    job->fn = &chunk_fn;
    job->begin = begin;
    job->size = n;
    job->chunks = threads_ < n ? threads_ : n;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = job;
      ++generation_;
    }
    wake_cv_.notify_all();
    run_chunks(*job);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return job->completed.load(std::memory_order_acquire) == job->chunks;
      });
      current_.reset();
    }
  }

 private:
  struct Job {
    const std::function<void(int, int)>* fn = nullptr;
    int begin = 0;
    int size = 0;
    int chunks = 0;
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
  };

  static bool& in_worker() {
    thread_local bool flag = false;
    return flag;
  }

  void run_chunks(Job& job) {
    for (;;) {
      const int k = job.next.fetch_add(1, std::memory_order_relaxed);
      if (k >= job.chunks) return;
      const int q = job.size / job.chunks;
      const int r = job.size % job.chunks;
      const int b = job.begin + k * q + (k < r ? k : r);
      const int e = b + q + (k < r ? 1 : 0);
      in_worker() = true;
      (*job.fn)(b, e);
      in_worker() = false;
      if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = current_;
      }
      // A late wake after the job drained is harmless: next >= chunks.
      if (job) run_chunks(*job);
    }
  }

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  // one in-flight job at a time
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

namespace host {

#ifdef VF_THREADS
inline constexpr int kMaxThreads = VF_THREADS;
#else
inline constexpr int kMaxThreads = 0;  // 0 = no compile-time cap
#endif

inline int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? static_cast<int>(hc) : 1;
}

// Process-wide default width for HostConfig{threads: 0}. The library default
// is 1 (serial) so tests and embedders opt in explicitly; the bench harness
// sets it from --threads (default hardware_concurrency).
inline int& default_threads_slot() {
  static int value = 1;
  return value;
}
inline void set_default_threads(int n) { default_threads_slot() = n < 1 ? 1 : n; }
inline int default_threads() { return default_threads_slot(); }

inline int resolve_threads(const HostConfig& config) {
  int n = config.threads > 0 ? config.threads : default_threads();
  if (kMaxThreads > 0 && n > kMaxThreads) n = kMaxThreads;
  return n < 1 ? 1 : n;
}

// Shared pool for the resolved width, or nullptr when execution is serial.
// Pools are created lazily and live for the process lifetime, so backends may
// be constructed by the hundreds without respawning threads.
inline ThreadPool* pool(const HostConfig& config = {}) {
  const int n = resolve_threads(config);
  if (n <= 1) return nullptr;
  static std::mutex registry_mutex;
  static std::map<int, std::unique_ptr<ThreadPool>>& pools =
      *new std::map<int, std::unique_ptr<ThreadPool>>();  // leak: outlive exit
  std::lock_guard<std::mutex> lock(registry_mutex);
  std::unique_ptr<ThreadPool>& slot = pools[n];
  if (!slot) slot = std::make_unique<ThreadPool>(n);
  return slot.get();
}

}  // namespace host

// parallel_for that tolerates a null pool (serial fallback in one call site).
inline void parallel_chunks(ThreadPool* pool, int begin, int end,
                            const std::function<void(int, int)>& chunk_fn) {
  if (pool) {
    pool->parallel_for(begin, end, chunk_fn);
  } else if (end > begin) {
    chunk_fn(begin, end);
  }
}

}  // namespace vf

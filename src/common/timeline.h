// Discrete-event timeline for the modeled ZC702.
//
// The additive SimDuration ledger (src/common/sim_time.h) charges every cost
// sequentially, so concurrency between the PS, the PL engine, and the DMA
// channel can never be expressed — exactly the limitation that hid the
// paper's Fig. 5 schedule (buffer A processes while buffer B fills) and any
// frame-level PS/PL overlap. The Timeline replaces assumption with
// computation: named resources, events with absolute start/end timestamps,
// and greedy earliest-start scheduling (an event starts at
// max(ready, resource-free)), so overlap falls out of the event graph.
//
// Timestamps are SimDurations measured from the timeline's t=0; everything
// is deterministic — same schedule calls, same events, on any host
// (tests/test_timeline.cpp locks this across runs).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/common/sim_time.h"

namespace vf {

using ResourceId = int;

class Timeline {
 public:
  struct Event {
    ResourceId resource = 0;
    std::string label;
    SimDuration start, end;
    SimDuration duration() const { return end - start; }
  };

  // Registers a schedulable resource (e.g. "PS core", "PL engine",
  // "ACP DMA"). Ids are dense and assigned in call order.
  ResourceId add_resource(std::string name);

  int resource_count() const { return static_cast<int>(resources_.size()); }
  const std::string& resource_name(ResourceId r) const { return resources_[r].name; }

  // Schedules a task on `r` that may not start before `ready`; it starts at
  // max(ready, the resource's free time) and occupies the resource for
  // `duration`. Returns the placed event (with resolved start/end).
  Event schedule(ResourceId r, std::string label, SimDuration ready,
                 SimDuration duration);

  // Earliest time a new event could start on `r` (ignoring ready deps).
  SimDuration free_at(ResourceId r) const { return resources_[r].free_at; }

  // Sum of event durations on `r` (idle gaps excluded).
  SimDuration busy_time(ResourceId r) const { return resources_[r].busy; }

  // End of the latest event across all resources (0 when empty).
  SimDuration makespan() const { return makespan_; }

  const std::vector<Event>& events() const { return events_; }

  // Merged busy intervals of the given resources, sorted by start time, with
  // overlapping/adjacent intervals coalesced. This is the power-integration
  // view: during any merged interval at least one of the resources is
  // active, so a per-interval draw is charged once, not once per resource.
  std::vector<std::pair<SimDuration, SimDuration>> busy_intervals(
      const std::vector<ResourceId>& resources) const;

  void clear();

 private:
  struct Resource {
    std::string name;
    SimDuration free_at;
    SimDuration busy;
  };
  std::vector<Resource> resources_;
  std::vector<Event> events_;
  SimDuration makespan_;
};

}  // namespace vf

// Per-thread scratch arena for the transform hot loops.
//
// The DT-CWT host path consumes line-sized scratch (extension buffers,
// transposed tiles, intermediate subband planes) thousands of times per
// frame. Before the arena each consumer owned a std::vector that was
// reallocated per level, per tree, per frame; the arena replaces all of them
// with one per-thread bump allocator whose blocks persist for the thread's
// lifetime, so a steady-state frame performs **zero** heap allocations in
// the hot loops (tests/test_arena.cpp pins this with a block counter).
//
// Usage is strictly scoped: take an ArenaScope, alloc from it, and let the
// scope's destructor rewind the bump pointer. Scopes nest (a level pass
// inside a tree pass inside a frame), which is what lets one arena serve
// every layer without a free list. Blocks are float-typed and 64-byte
// aligned so SIMD loads/stores on scratch lines are never split across
// cache lines.
//
// Thread model: thread_arena() hands each thread (pool workers included)
// its own arena, so no synchronization is needed on the alloc path. The
// global block counter is atomic — it only counts block *creation*, which
// happens O(log total-scratch) times per thread, not per alloc.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace vf {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Aligned scratch for `n` floats, valid until the enclosing scope rewinds
  // past it. Never zero-initialized: every consumer overwrites its scratch.
  float* alloc(std::size_t n) {
    n = (n + kAlignFloats - 1) & ~(kAlignFloats - 1);
    if (offset_ + n > capacity_) grow(n);
    float* p = current_ + offset_;
    offset_ += n;
    return p;
  }

  // Process-wide count of backing-block creations (all arenas, all threads).
  // Steady state means this stops moving: the zero-allocation guard test
  // asserts it is flat across frames after warm-up.
  static long long total_block_allocations() {
    return block_allocations().load(std::memory_order_relaxed);
  }

  std::size_t bytes_reserved() const { return bytes_reserved_; }

  struct Mark {
    std::size_t block;
    std::size_t offset;
  };
  Mark mark() const { return {block_index_, offset_}; }
  void rewind(const Mark& m) {
    block_index_ = m.block;
    offset_ = m.offset;
    if (block_index_ < blocks_.size()) {
      current_ = blocks_[block_index_].data;
      capacity_ = blocks_[block_index_].floats;
    } else {
      current_ = nullptr;
      capacity_ = 0;
    }
  }

 private:
  static constexpr std::size_t kAlignFloats = 16;  // 64 bytes
  static constexpr std::size_t kMinBlockFloats = 1 << 14;  // 64 KiB

  struct Block {
    std::unique_ptr<float[]> storage;
    float* data = nullptr;  // storage rounded up to a 64-byte boundary
    std::size_t floats = 0;
  };

  static std::atomic<long long>& block_allocations() {
    static std::atomic<long long> count{0};
    return count;
  }

  void grow(std::size_t n) {
    // Reuse an already-reserved later block when it fits; otherwise reserve
    // a new one (geometric growth so warm-up settles in O(log size) blocks).
    std::size_t next = blocks_.empty() ? 0 : block_index_ + 1;
    while (next < blocks_.size() && blocks_[next].floats < n) ++next;
    if (next >= blocks_.size()) {
      std::size_t want = kMinBlockFloats;
      if (!blocks_.empty()) want = blocks_.back().floats * 2;
      if (want < n) want = n;
      Block b;
      // operator new[] only promises max_align_t; over-allocate one stripe
      // and round the base up so every alloc() result is 64-byte aligned.
      b.storage = std::make_unique<float[]>(want + kAlignFloats);
      const auto raw = reinterpret_cast<std::uintptr_t>(b.storage.get());
      const std::uintptr_t aligned = (raw + 63) & ~std::uintptr_t{63};
      b.data = reinterpret_cast<float*>(aligned);
      b.floats = want;
      bytes_reserved_ += want * sizeof(float);
      blocks_.push_back(std::move(b));
      block_allocations().fetch_add(1, std::memory_order_relaxed);
      next = blocks_.size() - 1;
    }
    block_index_ = next;
    current_ = blocks_[next].data;
    capacity_ = blocks_[next].floats;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;
  float* current_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t offset_ = 0;
  std::size_t bytes_reserved_ = 0;
};

// Each thread's own arena (pool workers keep theirs warm across frames
// because the pool's threads live for the process lifetime).
inline Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

// RAII rewind: everything alloc'd through the scope is reclaimed (not freed
// — the blocks stay reserved) when the scope dies. Scopes nest.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena = thread_arena())
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  float* alloc(std::size_t n) { return arena_.alloc(n); }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace vf

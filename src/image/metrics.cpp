#include "src/image/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vf::image {

namespace {

constexpr int kGrayBins = 256;
constexpr int kJointBins = 64;

inline int quantize(float v, int bins) {
  int q = static_cast<int>(v * bins);
  return std::clamp(q, 0, bins - 1);
}

// Sobel gradient magnitude and orientation at (r, c) with clamped borders.
void sobel(const ImageF& img, int r, int c, double* g, double* alpha) {
  auto at = [&](int rr, int cc) {
    rr = std::clamp(rr, 0, img.rows() - 1);
    cc = std::clamp(cc, 0, img.cols() - 1);
    return static_cast<double>(img(rr, cc));
  };
  const double gx = (at(r - 1, c + 1) + 2.0 * at(r, c + 1) + at(r + 1, c + 1)) -
                    (at(r - 1, c - 1) + 2.0 * at(r, c - 1) + at(r + 1, c - 1));
  const double gy = (at(r + 1, c - 1) + 2.0 * at(r + 1, c) + at(r + 1, c + 1)) -
                    (at(r - 1, c - 1) + 2.0 * at(r - 1, c) + at(r - 1, c + 1));
  *g = std::sqrt(gx * gx + gy * gy);
  // Orientation modulo pi (atan, not atan2): the Petrovic model compares
  // edge *orientation*, so a polarity-flipped edge (common in visible vs
  // thermal imagery) must still count as preserved.
  if (gx == 0.0) {
    *alpha = gy == 0.0 ? 0.0 : 1.5707963267948966;
  } else {
    *alpha = std::atan(gy / gx);
  }
}

// Petrovic sigmoid model constants (Xydeas & Petrovic, Electronics Letters
// 2000): perceptual loss curves for edge strength (g) and orientation (a).
constexpr double kGammaG = 0.9994, kKg = -15.0, kSigmaG = 0.5;
constexpr double kGammaA = 0.9879, kKa = -22.0, kSigmaA = 0.8;

double edge_preservation(double g_in, double a_in, double g_f, double a_f) {
  double big_g;  // relative strength transfer
  if (g_in == 0.0 && g_f == 0.0) {
    big_g = 0.0;
  } else if (g_in > g_f) {
    big_g = g_f / g_in;
  } else {
    big_g = g_f == 0.0 ? 0.0 : g_in / g_f;
  }
  constexpr double kPi = 3.14159265358979323846;
  // Orientation difference modulo pi: atan() outputs span (-pi/2, pi/2], so
  // two near-vertical edges can differ by ~pi numerically while being nearly
  // parallel geometrically.
  double da = std::abs(a_in - a_f);
  if (da > kPi / 2.0) da = kPi - da;
  const double big_a = 1.0 - da / (kPi / 2.0);
  const double qg = kGammaG / (1.0 + std::exp(kKg * (big_g - kSigmaG)));
  const double qa = kGammaA / (1.0 + std::exp(kKa * (big_a - kSigmaA)));
  return qg * qa;
}

}  // namespace

double psnr(const ImageF& reference, const ImageF& image) {
  assert(reference.rows() == image.rows() && reference.cols() == image.cols());
  double mse = 0.0;
  const std::size_t n = reference.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(reference.data()[i]) - image.data()[i];
    mse += d * d;
  }
  mse /= static_cast<double>(n);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

double entropy(const ImageF& image) {
  double hist[kGrayBins] = {};
  for (std::size_t i = 0; i < image.size(); ++i) {
    hist[quantize(image.data()[i], kGrayBins)] += 1.0;
  }
  const double n = static_cast<double>(image.size());
  double h = 0.0;
  for (double count : hist) {
    if (count > 0.0) {
      const double p = count / n;
      h -= p * std::log2(p);
    }
  }
  return h;
}

double mutual_information(const ImageF& a, const ImageF& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<double> joint(kJointBins * kJointBins, 0.0);
  double pa[kJointBins] = {};
  double pb[kJointBins] = {};
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int qa = quantize(a.data()[i], kJointBins);
    const int qb = quantize(b.data()[i], kJointBins);
    joint[qa * kJointBins + qb] += 1.0;
    pa[qa] += 1.0;
    pb[qb] += 1.0;
  }
  const double n = static_cast<double>(a.size());
  double mi = 0.0;
  for (int i = 0; i < kJointBins; ++i) {
    for (int j = 0; j < kJointBins; ++j) {
      const double pij = joint[i * kJointBins + j];
      if (pij > 0.0) {
        mi += (pij / n) * std::log2(pij * n / (pa[i] * pb[j]));
      }
    }
  }
  return mi;
}

double petrovic_qabf(const ImageF& a, const ImageF& b, const ImageF& fused) {
  assert(a.rows() == fused.rows() && a.cols() == fused.cols());
  assert(b.rows() == fused.rows() && b.cols() == fused.cols());
  double num = 0.0;
  double den = 0.0;
  for (int r = 0; r < fused.rows(); ++r) {
    for (int c = 0; c < fused.cols(); ++c) {
      double ga, aa, gb, ab, gf, af;
      sobel(a, r, c, &ga, &aa);
      sobel(b, r, c, &gb, &ab);
      sobel(fused, r, c, &gf, &af);
      const double qaf = edge_preservation(ga, aa, gf, af);
      const double qbf = edge_preservation(gb, ab, gf, af);
      num += qaf * ga + qbf * gb;
      den += ga + gb;
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

FusionQuality evaluate_fusion(const ImageF& a, const ImageF& b, const ImageF& fused) {
  FusionQuality q;
  q.entropy_fused = entropy(fused);
  q.mi = mutual_information(fused, a) + mutual_information(fused, b);
  q.qabf = petrovic_qabf(a, b, fused);
  return q;
}

}  // namespace vf::image

// ImageF and the fusion-quality metrics used by the ablation benches.
//
// Images are row-major float, nominally in [0, 1]. The metrics are the three
// standard information-theoretic/gradient measures of the fusion literature:
// entropy of the fused image, mutual information MI = I(F;A) + I(F;B), and
// the Xydeas–Petrovic edge-transfer index Qabf.
#pragma once

#include <cassert>
#include <vector>

namespace vf::image {

class ImageF {
 public:
  ImageF() = default;
  ImageF(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

struct FusionQuality {
  double entropy_fused = 0.0;  // bits, 8-bit histogram
  double mi = 0.0;             // I(F;A) + I(F;B), bits
  double qabf = 0.0;           // Petrovic edge-transfer index in [0, 1]
};

// Peak signal-to-noise ratio against `reference`, peak = 1.0 (normalized
// float images). Returns +inf for bit-identical inputs.
double psnr(const ImageF& reference, const ImageF& image);

// Shannon entropy of an 8-bit quantization of the image, in bits.
double entropy(const ImageF& image);

// Mutual information I(A;B) over a joint 64-bin histogram, in bits.
double mutual_information(const ImageF& a, const ImageF& b);

// Xydeas–Petrovic Qabf: how much of the inputs' edge strength/orientation
// survives into the fused image, weighted by input edge importance.
double petrovic_qabf(const ImageF& a, const ImageF& b, const ImageF& fused);

// Bundles the three fusion metrics the benches report.
FusionQuality evaluate_fusion(const ImageF& a, const ImageF& b, const ImageF& fused);

}  // namespace vf::image

// Modeled Linux driver + DMA accelerator front-end (paper §V, Fig. 5).
//
// Each wavelet line is one request to the PL engine: the driver copies the
// extended line into kernel memory, starts the engine, and either polls the
// status register or sleeps on the completion interrupt. Double buffering
// (Fig. 5) splits the kernel memory into two areas so the next line's input
// copy overlaps the engine's processing of the current line.
//
// Two accounting front-ends share one cost decomposition (LineCost):
//
//   WaveletAccelerator          the additive ledger path — one synchronous
//                               line request at a time, PS-visible time
//                               returned per call (the seed model; every
//                               Fig. 9/10 bench still runs through it).
//   PipelinedWaveletAccelerator the event-queue path — lines are batched
//                               into the 2048-word kernel buffers, one
//                               driver call per batch, and the two buffers
//                               ping-pong at transfer granularity: buffer A
//                               is processed by the engine while buffer B
//                               fills across *consecutive* lines (the real
//                               Fig. 5 schedule). Time is computed by a
//                               Timeline, not assumed additive.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/timeline.h"
#include "src/hw/axi.h"
#include "src/hw/clock.h"
#include "src/hw/cost_constants.h"
#include "src/hw/resources.h"

namespace vf::driver {

enum class TransferMode { kAcpDma, kGpPort };
enum class CompletionMode { kPolling, kInterrupt };

struct DriverCosts {
  TransferMode transfer = TransferMode::kAcpDma;
  CompletionMode completion = CompletionMode::kPolling;
  bool double_buffering = true;

  // Per-call user->kernel entry: ioctl + copy_from_user + engine kick.
  // Dominates for short lines; this is exactly why the paper's FPGA loses
  // below the 35x35..40x40 break point (value calibrated against Fig. 9).
  double call_overhead_ps_cycles = hw::cost::kDriverCallPsCycles;
  // One status-register read across the GP port.
  double poll_ps_cycles = hw::cost::kStatusPollPsCycles;
  double expected_polls = hw::cost::kExpectedPollsPerCall;
  // Sleep + IRQ + wake path when completion = kInterrupt.
  double irq_latency_ps_cycles = hw::cost::kIrqLatencyPsCycles;

  // Scatter-gather chain costs (ISSUE 9): a batch that continues an armed
  // descriptor chain pays a PS-side descriptor append instead of the full
  // driver entry, plus a DMA-side descriptor fetch before its input burst.
  // Only consulted when Batching::sg_chain_len > 1.
  double sg_desc_build_ps_cycles = hw::cost::kSgDescBuildPsCycles;
  double sg_desc_fetch_pl_cycles = hw::cost::kSgDescFetchPlCycles;
};

// The four cost components of servicing line requests, kept separate so the
// ledger path and the timeline path charge the same numbers to different
// schedules (additive vs event-queue).
struct LineCost {
  SimDuration driver;   // PS: ioctl + copy + completion (poll/irq)
  SimDuration input;    // input words over the configured transfer path
  SimDuration compute;  // PL engine busy time
  SimDuration output;   // result words back

  // PS-resident portion: the CPU executes the driver call, and with GP-port
  // transfers it also moves every word itself. Everything else (DMA bursts,
  // engine busy) lives on the PL side of the fence and can overlap PS work.
  SimDuration ps_part(const DriverCosts& costs, bool dma_enabled) const {
    if (costs.transfer == TransferMode::kGpPort || !dma_enabled) {
      return driver + input + output;
    }
    return driver;
  }
};

// PS time of one user->kernel driver entry including completion.
inline SimDuration driver_call_time(const DriverCosts& costs) {
  SimDuration t = hw::ps_clock().cycles(costs.call_overhead_ps_cycles);
  if (costs.completion == CompletionMode::kPolling) {
    t += hw::ps_clock().cycles(costs.poll_ps_cycles * costs.expected_polls);
  } else {
    t += hw::ps_clock().cycles(costs.irq_latency_ps_cycles);
  }
  return t;
}

// PS time to append one descriptor to an already-armed scatter-gather ring
// (user-space bd fill + tail-pointer bump — no kernel entry).
inline SimDuration sg_desc_build_time(const DriverCosts& costs) {
  return hw::ps_clock().cycles(costs.sg_desc_build_ps_cycles);
}

// DMA-side time to fetch the next chained descriptor before its burst.
inline SimDuration sg_desc_fetch_time(const DriverCosts& costs) {
  return hw::pl_clock().cycles(costs.sg_desc_fetch_pl_cycles);
}

// Time to move `words` over the configured PS<->PL path: ACP DMA bursts at
// the PL clock, or CPU-issued GP-port beats at the PS clock.
inline SimDuration transfer_time(const hw::WaveletEngineConfig& engine,
                                 const DriverCosts& costs, int words) {
  if (costs.transfer == TransferMode::kGpPort || !engine.dma_enabled) {
    return hw::ps_clock().cycles(hw::GpPortModel{}.cycles_for_words(words));
  }
  return hw::pl_clock().cycles(hw::AcpDmaModel{}.cycles_for_words(words));
}

inline LineCost line_cost(const hw::WaveletEngineConfig& engine,
                          const DriverCosts& costs, int words_in, int words_out,
                          double compute_cycles) {
  LineCost c;
  c.driver = driver_call_time(costs);
  c.input = transfer_time(engine, costs, words_in);
  c.output = transfer_time(engine, costs, words_out);
  c.compute = hw::pl_clock().cycles(compute_cycles);
  return c;
}

// Accounts modeled time for line requests against one engine configuration.
class WaveletAccelerator {
 public:
  WaveletAccelerator(const hw::WaveletEngineConfig& engine, const DriverCosts& costs)
      : engine_(engine), costs_(costs) {}

  const hw::WaveletEngineConfig& engine() const { return engine_; }
  const DriverCosts& costs() const { return costs_; }

  // PS-visible time to process one line: `words_in` extended input words,
  // `words_out` result words, `compute_cycles` PL cycles of engine busy time.
  SimDuration line_time(int words_in, int words_out, double compute_cycles) {
    const LineCost cost = line_cost(engine_, costs_, words_in, words_out,
                                    compute_cycles);

    // Double buffering hides engine busy time behind the next line's input
    // copy; without it the PS waits out the full compute phase.
    SimDuration stall;
    if (costs_.double_buffering) {
      stall = cost.compute > cost.input ? cost.compute - cost.input
                                        : SimDuration::zero();
    } else {
      stall = cost.compute;
    }
    stall_time_ += stall;

    const SimDuration total = cost.driver + cost.input + stall + cost.output;
    busy_time_ += total;
    ++lines_;
    last_ps_time_ = cost.ps_part(costs_, engine_.dma_enabled);
    last_pl_time_ = total - last_ps_time_;
    return total;
  }

  // Accumulated PS wait-for-PL time (what double buffering removes).
  SimDuration stall_time() const { return stall_time_; }
  SimDuration busy_time() const { return busy_time_; }
  long long lines() const { return lines_; }

  // Split of the most recent line_time() between PS-resident work (driver
  // entry, GP-port word moves) and the PL-side remainder (DMA, engine,
  // stall) — what a frame-level pipeline may overlap with other PS work.
  SimDuration last_line_ps_time() const { return last_ps_time_; }
  SimDuration last_line_pl_time() const { return last_pl_time_; }

  void reset() {
    stall_time_ = SimDuration::zero();
    busy_time_ = SimDuration::zero();
    lines_ = 0;
    last_ps_time_ = SimDuration::zero();
    last_pl_time_ = SimDuration::zero();
  }

 private:
  hw::WaveletEngineConfig engine_;
  DriverCosts costs_;
  SimDuration stall_time_;
  SimDuration busy_time_;
  long long lines_ = 0;
  SimDuration last_ps_time_;
  SimDuration last_pl_time_;
};

// Transfer-granularity double buffering with batched submission.
//
// Consecutive line requests are packed into one kernel buffer (up to
// `engine.buffer_words` words and `max_lines_per_call` lines) and shipped
// with a single driver call, amortizing the ~12k-cycle user->kernel entry —
// the cost that puts the serial FPGA behind NEON below 40x40. The two
// kernel buffers ping-pong: batch i's input copy may start as soon as the
// engine has finished reading batch i-2's buffer, so the DMA fills buffer B
// while the engine processes buffer A (Fig. 5 across consecutive lines).
//
// All time lands on a caller-owned Timeline across three resources (PS
// core, DMA channel, PL engine); PS-visible completion is the last output
// transfer's end, i.e. the timeline makespan, not a sum.
class PipelinedWaveletAccelerator {
 public:
  struct Batching {
    // Cap on lines per driver call; the 2048-word buffer capacity caps the
    // batch too, whichever bites first.
    int max_lines_per_call = 16;
    // Scatter-gather descriptor chain length: one driver entry (ioctl) arms
    // up to this many batches; the rest of the chain pays only the
    // descriptor build/fetch charges (DriverCosts::sg_*). 1 = every batch
    // is a chain head, i.e. the flat per-batch driver entry — bit-identical
    // to the pre-SG schedule.
    int sg_chain_len = 1;
  };

  // One closed batch, recorded when tracing is enabled (set_trace): the
  // streaming replay (src/sched/streaming.h) re-schedules exactly these
  // requests across frame boundaries.
  struct BatchTrace {
    int lines = 0;
    int words_in = 0;
    int words_out = 0;
    double compute_cycles = 0.0;
    // True when a barrier() separates this batch from the previous one: its
    // input depends on outputs of earlier batches (row -> column pass).
    bool after_barrier = false;
  };

  PipelinedWaveletAccelerator(const hw::WaveletEngineConfig& engine,
                              const DriverCosts& costs, const Batching& batching,
                              Timeline* timeline, ResourceId ps, ResourceId dma,
                              ResourceId pl)
      : engine_(engine), costs_(costs), batching_(batching), timeline_(timeline),
        ps_(ps), dma_(dma), pl_(pl) {}

  const hw::WaveletEngineConfig& engine() const { return engine_; }
  const DriverCosts& costs() const { return costs_; }
  const Batching& batching() const { return batching_; }

  // Record every closed batch into `trace` (nullptr disables). Recording is
  // pure observation: the event schedule is unchanged.
  void set_trace(std::vector<BatchTrace>* trace) { trace_ = trace; }

  // Queues one line into the current batch, closing the batch first if the
  // line would overflow the kernel buffer or the per-call line cap.
  void submit_line(int words_in, int words_out, double compute_cycles) {
    if (words_in > engine_.buffer_words) {
      // Same policy as check_engine_fit: modeling a request the hardware
      // cannot hold would produce plausible-looking nonsense.
      std::fprintf(stderr,
                   "fatal: %d-word line request does not fit the modeled "
                   "kernel buffer (%d words)\n",
                   words_in, engine_.buffer_words);
      std::abort();
    }
    if (pending_.lines > 0 &&
        (pending_.lines >= batching_.max_lines_per_call ||
         pending_.words_in + words_in > engine_.buffer_words)) {
      close_batch();
    }
    pending_.lines += 1;
    pending_.words_in += words_in;
    pending_.words_out += words_out;
    pending_.compute_cycles += compute_cycles;
    ++lines_;
  }

  // Data-dependency fence: lines submitted after the barrier consume outputs
  // of lines before it (e.g. the column pass reads the row pass's results),
  // so their input copies may not start until those outputs have landed.
  void barrier() {
    close_batch();
    dep_ready_ = last_output_end_;
    barrier_pending_ = true;
  }

  // Closes any pending batch and returns the completion time of the last
  // output transfer (PS-visible drain point). A drain closes the armed
  // descriptor chain too: the ioctl context ends with the synchronous wait,
  // so the next batch re-enters the driver (chain head).
  SimDuration flush() {
    close_batch();
    chain_pos_ = 0;
    return last_output_end_;
  }

  long long lines() const { return lines_; }
  long long driver_calls() const { return driver_calls_; }
  // Batches that paid the full driver entry (chain heads). With
  // sg_chain_len = 1 this equals driver_calls().
  long long chain_heads() const { return chain_heads_; }
  SimDuration last_completion() const { return last_output_end_; }

 private:
  struct Pending {
    int lines = 0;
    int words_in = 0;
    int words_out = 0;
    double compute_cycles = 0.0;
  };

  void close_batch() {
    if (pending_.lines == 0) return;
    // CPU-driven GP-port transfers occupy the PS core; ACP bursts ride the
    // DMA channel and leave the PS free after the driver call.
    const bool dma_path =
        costs_.transfer == TransferMode::kAcpDma && engine_.dma_enabled;
    const ResourceId xfer = dma_path ? dma_ : ps_;

    // The driver call's copy_from_user writes this batch's kernel buffer, so
    // it must wait until the engine has drained the batch that last used it —
    // with one buffer that serializes the ~12k-cycle PS entry with the
    // engine; with two, the call overlaps the other buffer's processing
    // (Fig. 5). It also may not run before the outputs this batch's lines
    // depend on have landed (dep_ready_, see barrier()).
    //
    // Scatter-gather chaining (sg_chain_len > 1): only the chain head pays
    // the full driver entry; continuation batches append a descriptor to
    // the armed ring (small PS charge) and the DMA fetches it before the
    // input burst. Chains persist across barriers (descriptors are armed
    // ahead of the data dependency) and close at flush().
    const int chain_len = batching_.sg_chain_len < 1 ? 1 : batching_.sg_chain_len;
    const bool chain_head = chain_pos_ == 0;
    const int buf = costs_.double_buffering ? (driver_calls_ & 1) : 0;
    const SimDuration drv_ready = std::max(dep_ready_, buffer_free_[buf]);
    const Timeline::Event drv = timeline_->schedule(
        ps_, chain_head ? "drv" : "desc", drv_ready,
        chain_head ? driver_call_time(costs_) : sg_desc_build_time(costs_));
    SimDuration in_time = transfer_time(engine_, costs_, pending_.words_in);
    if (!chain_head) in_time += sg_desc_fetch_time(costs_);
    const Timeline::Event in = timeline_->schedule(xfer, "in", drv.end, in_time);
    const Timeline::Event comp = timeline_->schedule(
        pl_, "comp", in.end, hw::pl_clock().cycles(pending_.compute_cycles));
    const Timeline::Event out = timeline_->schedule(
        xfer, "out", comp.end, transfer_time(engine_, costs_, pending_.words_out));

    // The engine has consumed the input buffer once compute ends; the next
    // batch using this buffer may start filling then.
    buffer_free_[buf] = comp.end;
    last_output_end_ = out.end;
    ++driver_calls_;
    if (chain_head) ++chain_heads_;
    chain_pos_ = (chain_pos_ + 1) % chain_len;
    if (trace_) {
      trace_->push_back({pending_.lines, pending_.words_in, pending_.words_out,
                         pending_.compute_cycles, barrier_pending_});
    }
    barrier_pending_ = false;
    pending_ = Pending{};
  }

  hw::WaveletEngineConfig engine_;
  DriverCosts costs_;
  Batching batching_;
  Timeline* timeline_;
  ResourceId ps_, dma_, pl_;
  Pending pending_;
  SimDuration buffer_free_[2];
  SimDuration dep_ready_;
  SimDuration last_output_end_;
  long long lines_ = 0;
  long long driver_calls_ = 0;
  long long chain_heads_ = 0;
  int chain_pos_ = 0;
  bool barrier_pending_ = false;
  std::vector<BatchTrace>* trace_ = nullptr;
};

}  // namespace vf::driver

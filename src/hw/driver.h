// Modeled Linux driver + DMA accelerator front-end (paper §V, Fig. 5).
//
// Each wavelet line is one request to the PL engine: the driver copies the
// extended line into kernel memory, starts the engine, and either polls the
// status register or sleeps on the completion interrupt. Double buffering
// (Fig. 5) splits the kernel memory into two areas so the next line's input
// copy overlaps the engine's processing of the current line.
#pragma once

#include "src/common/sim_time.h"
#include "src/hw/axi.h"
#include "src/hw/clock.h"
#include "src/hw/resources.h"

namespace vf::driver {

enum class TransferMode { kAcpDma, kGpPort };
enum class CompletionMode { kPolling, kInterrupt };

struct DriverCosts {
  TransferMode transfer = TransferMode::kAcpDma;
  CompletionMode completion = CompletionMode::kPolling;
  bool double_buffering = true;

  // Per-line user->kernel entry: ioctl + copy_from_user + engine kick.
  // Dominates for short lines; this is exactly why the paper's FPGA loses
  // below the 35x35..40x40 break point (value calibrated against Fig. 9).
  double call_overhead_ps_cycles = 12150;
  // One status-register read across the GP port.
  double poll_ps_cycles = 120;
  double expected_polls = 3.0;
  // Sleep + IRQ + wake path when completion = kInterrupt.
  double irq_latency_ps_cycles = 5200;
};

// Accounts modeled time for line requests against one engine configuration.
class WaveletAccelerator {
 public:
  WaveletAccelerator(const hw::WaveletEngineConfig& engine, const DriverCosts& costs)
      : engine_(engine), costs_(costs) {}

  const hw::WaveletEngineConfig& engine() const { return engine_; }
  const DriverCosts& costs() const { return costs_; }

  // PS-visible time to process one line: `words_in` extended input words,
  // `words_out` result words, `compute_cycles` PL cycles of engine busy time.
  SimDuration line_time(int words_in, int words_out, double compute_cycles) {
    const hw::ClockDomain& ps = hw::ps_clock();
    const hw::ClockDomain& pl = hw::pl_clock();

    SimDuration in_time, out_time;
    if (costs_.transfer == TransferMode::kGpPort || !engine_.dma_enabled) {
      in_time = ps.cycles(gp_.cycles_for_words(words_in));
      out_time = ps.cycles(gp_.cycles_for_words(words_out));
    } else {
      in_time = pl.cycles(acp_.cycles_for_words(words_in));
      out_time = pl.cycles(acp_.cycles_for_words(words_out));
    }
    const SimDuration compute = pl.cycles(compute_cycles);

    // Double buffering hides engine busy time behind the next line's input
    // copy; without it the PS waits out the full compute phase.
    SimDuration stall;
    if (costs_.double_buffering) {
      stall = compute > in_time ? compute - in_time : SimDuration::zero();
    } else {
      stall = compute;
    }
    stall_time_ += stall;

    SimDuration driver = ps.cycles(costs_.call_overhead_ps_cycles);
    if (costs_.completion == CompletionMode::kPolling) {
      driver += ps.cycles(costs_.poll_ps_cycles * costs_.expected_polls);
    } else {
      driver += ps.cycles(costs_.irq_latency_ps_cycles);
    }

    const SimDuration total = driver + in_time + stall + out_time;
    busy_time_ += total;
    ++lines_;
    return total;
  }

  // Accumulated PS wait-for-PL time (what double buffering removes).
  SimDuration stall_time() const { return stall_time_; }
  SimDuration busy_time() const { return busy_time_; }
  long long lines() const { return lines_; }

  void reset() {
    stall_time_ = SimDuration::zero();
    busy_time_ = SimDuration::zero();
    lines_ = 0;
  }

 private:
  hw::WaveletEngineConfig engine_;
  DriverCosts costs_;
  hw::GpPortModel gp_;
  hw::AcpDmaModel acp_;
  SimDuration stall_time_;
  SimDuration busy_time_;
  long long lines_ = 0;
};

}  // namespace vf::driver

#include "src/hw/fixed_point.h"

#include <cmath>
#include <vector>

namespace vf::hw {

std::string FixedPointFormat::name() const {
  return "Q" + std::to_string(integer_bits()) + "." + std::to_string(frac_bits);
}

double FixedPointFormat::step() const { return std::ldexp(1.0, -frac_bits); }

double FixedPointFormat::max_value() const {
  return std::ldexp(1.0, integer_bits() - 1) - step();
}

double FixedPointFormat::min_value() const {
  return -std::ldexp(1.0, integer_bits() - 1);
}

double FixedPointFormat::quantize(double v) const {
  const double scaled = std::nearbyint(v / step());
  double q = scaled * step();
  if (q > max_value()) q = max_value();
  if (q < min_value()) q = min_value();
  return q;
}

namespace {

std::vector<double> quantize_all(const FixedPointFormat& fmt, const float* v, int n) {
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[i] = fmt.quantize(v[i]);
  return out;
}

}  // namespace

void FixedPointLineFilter::analyze(const float* ext, int out_len, const float* lp,
                                   const float* hp, int taps, float* lo, float* hi) {
  const auto qx = quantize_all(fmt_, ext, 2 * out_len + taps);
  const auto qlp = quantize_all(fmt_, lp, taps);
  const auto qhp = quantize_all(fmt_, hp, taps);
  for (int i = 0; i < out_len; ++i) {
    double acc_lo = 0.0;
    double acc_hi = 0.0;
    for (int t = 0; t < taps; ++t) {
      acc_lo += qlp[t] * qx[2 * i + t];
      acc_hi += qhp[t] * qx[2 * i + t];
    }
    lo[i] = static_cast<float>(fmt_.quantize(acc_lo));
    hi[i] = static_cast<float>(fmt_.quantize(acc_hi));
  }
}

void FixedPointLineFilter::synthesize(const float* ext, int pairs, const float* ca,
                                      const float* cb, int taps, float* out) {
  const auto qx = quantize_all(fmt_, ext, 2 * pairs + taps);
  const auto qca = quantize_all(fmt_, ca, taps);
  const auto qcb = quantize_all(fmt_, cb, taps);
  for (int k = 0; k < pairs; ++k) {
    double acc_a = 0.0;
    double acc_b = 0.0;
    for (int t = 0; t < taps; ++t) {
      acc_a += qca[t] * qx[2 * k + t];
      acc_b += qcb[t] * qx[2 * k + t];
    }
    out[2 * k] = static_cast<float>(fmt_.quantize(acc_a));
    out[2 * k + 1] = static_cast<float>(fmt_.quantize(acc_b));
  }
}

}  // namespace vf::hw

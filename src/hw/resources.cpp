#include "src/hw/resources.h"

#include "src/hw/fixed_point.h"

namespace vf::hw {

namespace {

// Per-slot / fixed costs of the float32 engine, solved against Table I at
// 12 slots: usage = base + slots * per_slot + dma block.
constexpr int kBaseRegisters = 9024, kPerSlotRegisters = 1024, kDmaRegisters = 2100;
constexpr int kBaseLuts = 6545, kPerSlotLuts = 780, kDmaLuts = 1500;
constexpr int kBaseSlices = 3110, kPerSlotSlices = 340, kDmaSlices = 700;
constexpr int kBufg = 3;  // PS clock, PL engine clock, DMA clock

int bram_for(const WaveletEngineConfig& config) {
  // Two ping-pong line buffers of buffer_words 32-bit words each.
  const int bytes_per_buffer = config.buffer_words * 4;
  const int bram36_bytes = 36 * 1024 / 8;
  const int per_buffer = (bytes_per_buffer + bram36_bytes - 1) / bram36_bytes;
  return 2 * per_buffer;
}

}  // namespace

WaveletEngineConfig paper_engine_config() {
  WaveletEngineConfig config;
  config.slots = 12;
  config.buffer_words = 2048;
  config.dma_enabled = true;
  return config;
}

ResourceUsage estimate_engine_resources(const WaveletEngineConfig& config) {
  ResourceUsage u;
  u.registers = kBaseRegisters + config.slots * kPerSlotRegisters +
                (config.dma_enabled ? kDmaRegisters : 0);
  u.luts =
      kBaseLuts + config.slots * kPerSlotLuts + (config.dma_enabled ? kDmaLuts : 0);
  u.slices =
      kBaseSlices + config.slots * kPerSlotSlices + (config.dma_enabled ? kDmaSlices : 0);
  u.bufg = kBufg;
  u.bram36 = bram_for(config);
  u.dsp48 = 0;  // the HLS float datapath builds its multipliers from logic
  return u;
}

ResourceUsage estimate_engine_resources_fixed(const WaveletEngineConfig& config,
                                              const FixedPointFormat& fmt) {
  ResourceUsage u;
  const int bits = fmt.total_bits;
  // Shift registers and pipeline state scale with word width; the heavy
  // float add/mul logic is gone.
  u.registers = 900 + config.slots * bits * 4 + (config.dma_enabled ? kDmaRegisters : 0);
  u.luts = 700 + config.slots * bits * 3 + (config.dma_enabled ? kDmaLuts : 0);
  u.slices = 200 + static_cast<int>(config.slots * bits * 2.5) +
             (config.dma_enabled ? kDmaSlices : 0);
  u.bufg = kBufg;
  u.bram36 = bram_for(config);
  // One DSP48E1 per MAC lane (two filter banks run in parallel); wide words
  // need a second cascaded DSP per lane (the 25x18 multiplier limit).
  const int per_lane = bits <= 25 ? 1 : 2;
  u.dsp48 = 2 * config.slots * per_lane;
  return u;
}

int max_engine_instances(const DevicePart& part, const ResourceUsage& per_engine) {
  int fit = 1 << 30;
  const auto cap = [&fit](int have, int need) {
    if (need > 0 && have / need < fit) fit = have / need;
  };
  cap(part.registers, per_engine.registers);
  cap(part.luts, per_engine.luts);
  cap(part.slices, per_engine.slices);
  cap(part.bram36, per_engine.bram36);
  cap(part.dsp48, per_engine.dsp48);
  // BUFG intentionally excluded: the clock trees are shared by all instances.
  return fit;
}

}  // namespace vf::hw

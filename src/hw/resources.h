// Fabric resource model for the PL wavelet engine on the xc7z020.
//
// Calibrated so that the paper's 12-slot float engine reproduces Table I
// exactly (Registers 23412/22%, LUTs 17405/32%, Slices 7890/59%, BUFG 3/9%);
// tests/test_resources.cpp locks those values. Other configurations
// (register depth, fixed-point datapath) extrapolate linearly from the same
// per-slot costs.
#pragma once

#include <string>

namespace vf::hw {

struct DevicePart {
  std::string name = "xc7z020clg484-1";
  int registers = 106400;
  int luts = 53200;
  int slices = 13300;
  int bufg = 32;
  int bram36 = 140;
  int dsp48 = 220;
};

struct WaveletEngineConfig {
  // Coefficient-register depth per filter (paper HLS code: 12; the standard
  // Kingsbury q-shift filters need 14 — see bench_ablation_taps).
  int slots = 14;
  // Words per kernel line buffer; two buffers when double buffering.
  int buffer_words = 2048;
  bool dma_enabled = true;  // HLS-memcpy DMA block on the ACP
};

// The exact configuration of the paper's Table I row set.
WaveletEngineConfig paper_engine_config();

struct ResourceUsage {
  int registers = 0;
  int luts = 0;
  int slices = 0;
  int bufg = 0;
  int bram36 = 0;
  int dsp48 = 0;

  // Utilization percentages truncate like the paper's table.
  int pct_registers(const DevicePart& p) const { return registers * 100 / p.registers; }
  int pct_luts(const DevicePart& p) const { return luts * 100 / p.luts; }
  int pct_slices(const DevicePart& p) const { return slices * 100 / p.slices; }
  int pct_bufg(const DevicePart& p) const { return bufg * 100 / p.bufg; }
};

// Float32 datapath (the paper's HLS engine: logic-implemented multipliers,
// no DSP48 usage).
ResourceUsage estimate_engine_resources(const WaveletEngineConfig& config);

struct FixedPointFormat;  // src/hw/fixed_point.h

// Qm.n fixed-point datapath with DSP48 multipliers (ablation A7).
ResourceUsage estimate_engine_resources_fixed(const WaveletEngineConfig& config,
                                              const FixedPointFormat& fmt);

// How many independent instances of a `per_engine` datapath fit the part:
// the minimum across resource classes the instance actually consumes. BUFG
// clock trees are shared (every instance rides the same PS/PL/DMA clocks),
// so they do not divide. The paper's float engine fits once (slice-bound at
// 59%); the Q2.16 fixed-point datapath about seven times (DSP48-bound).
int max_engine_instances(const DevicePart& part, const ResourceUsage& per_engine);

}  // namespace vf::hw

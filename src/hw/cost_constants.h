// The calibrated cost constants of the modeled ZC702, in one place.
//
// Until PR 5 these lived as magic numerals spread across the driver model
// (src/hw/driver.h) and the CPU cost model (src/sched/adaptive.h); now the
// additive-ledger path and the event-queue timeline path share one set of
// named values, so the "ledger == timeline with overlap disabled" invariant
// (DESIGN.md §2) cannot drift by one path editing a constant the other
// still hardcodes.
//
// Every value is calibrated against the paper's measured curves; the anchor
// for each is noted inline. tests/test_hw.cpp locks the driver-side values,
// tests/test_sched.cpp locks the curves they produce.
#pragma once

namespace vf::hw::cost {

// --- driver front-end (paper §V, Fig. 5) ------------------------------------

// Per driver call user->kernel entry: ioctl + copy_from_user + engine kick,
// in PS cycles. Dominates short lines; this is exactly why the paper's FPGA
// loses below the 35x35..40x40 break point (calibrated against Fig. 9).
// Batched line submission (transfer-granularity double buffering) amortizes
// this over every line sharing one 2048-word kernel buffer.
inline constexpr double kDriverCallPsCycles = 12150;

// One status-register read across the GP port, and how many the polling
// completion path expects before the engine reports done.
inline constexpr double kStatusPollPsCycles = 120;
inline constexpr double kExpectedPollsPerCall = 3.0;

// Sleep + IRQ + wake path when the driver uses interrupt completion.
inline constexpr double kIrqLatencyPsCycles = 5200;

// --- scatter-gather descriptor chain (streaming driver, ISSUE 9) ------------

// One ioctl arms a bd-ring of up to Batching::sg_chain_len descriptors;
// batches after the chain head pay only these two charges instead of the
// full kDriverCallPsCycles entry:
//
//   build: the PS appends one descriptor to the already-armed ring
//          (fill the bd, flush the cache line, bump the tail pointer) —
//          user-space writes, no kernel entry.
//   fetch: the DMA engine reads the next descriptor from memory before it
//          can start the batch's input burst (PL cycles on the DMA channel).
//
// With sg_chain_len = 1 every batch is a chain head and the schedule is
// bit-identical to the flat per-batch driver entry (locked by the PR 5
// regression tests), so the default path cannot drift.
inline constexpr double kSgDescBuildPsCycles = 360;
inline constexpr double kSgDescFetchPlCycles = 48;

// Preemption granularity of the streaming replay: PS work longer than this
// is sliced so the interrupt-driven driver can interleave descriptor
// appends (keeping the PL fed) with application work like frame prep.
// ~31 us at 533 MHz — a few batch services per slice.
inline constexpr double kStreamPsSliceCycles = 16384;

// --- PL wavelet engine ------------------------------------------------------

// The float engine retires one output pair every two PL cycles after a
// pipeline fill of one cycle per coefficient slot (HLS II=2 schedule).
inline constexpr double kEngineInitiationInterval = 2.0;

constexpr double engine_compute_cycles(int outputs, int slots) {
  return kEngineInitiationInterval * outputs + slots;
}

// --- CPU (Cortex-A9) line-cost model ----------------------------------------

// Constants reproduce the paper's absolute times — which imply roughly 70
// cycles per float MAC on the A9 (unoptimized single-thread float code with
// OS overhead, not what the core could theoretically do) — so the model is
// dominated by a per-sample constant with a weak filter-length term.
inline constexpr double kCpuLineOverheadCycles = 400;
inline constexpr double kCpuPerSampleBaseCycles = 470;
inline constexpr double kCpuPerSampleTapCycles = 2.0;
inline constexpr double kCpuMagnitudeCyclesPerSample = 110;
inline constexpr double kCpuSelectCyclesPerSample = 35;
inline constexpr double kCpuPrepCyclesPerPixel = 300;

// NEON stage factors: the paper measures -10% on the forward transform and
// -16% on the inverse (whose interleaved synthesis loop vectorizes better).
inline constexpr double kNeonAnalysisFactor = 0.90;
inline constexpr double kNeonSynthesisFactor = 0.84;

// --- adaptive router --------------------------------------------------------

// Calibrated crossover in request words (payload + filter window): lines at
// least this long go to the FPGA engine, shorter ones stay on NEON. Matches
// calibrate_adaptive_threshold's kTotalTime optimum over the paper sweep.
inline constexpr int kAdaptiveThresholdSamples = 44;

}  // namespace vf::hw::cost

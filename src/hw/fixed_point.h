// Qm.n fixed-point quantization and the fixed-point engine datapath used by
// ablation A7 (float32 vs fixed-point trade-off of the paper's HLS engine).
#pragma once

#include <string>

#include "src/fusion/dwt_fusion.h"

namespace vf::hw {

struct FixedPointFormat {
  int total_bits = 18;  // word width including sign
  int frac_bits = 15;   // fractional bits (n of Qm.n)

  int integer_bits() const { return total_bits - frac_bits; }
  std::string name() const;  // e.g. "Q3.15"

  // Round-to-nearest at 2^-frac_bits, saturating to the representable range.
  double quantize(double v) const;
  double max_value() const;
  double min_value() const;
  double step() const;
};

// LineFilter whose datapath mimics the fixed-point engine: coefficients and
// line samples are quantized to the format, products accumulate in a wide
// DSP48-style accumulator (exact), and each output is quantized on the way
// back to memory.
class FixedPointLineFilter : public dwt::LineFilter {
 public:
  explicit FixedPointLineFilter(FixedPointFormat fmt) : fmt_(fmt) {}

  void analyze(const float* ext, int out_len, const float* lp, const float* hp,
               int taps, float* lo, float* hi) override;
  void synthesize(const float* ext, int pairs, const float* ca, const float* cb,
                  int taps, float* out) override;

  // The quantizing datapath is not expressible as a KernelSet, so every
  // transform path must stay serial and call the combined overrides above.
  bool splittable() const override { return false; }

  const FixedPointFormat& format() const { return fmt_; }

 private:
  FixedPointFormat fmt_;
};

}  // namespace vf::hw

// AXI transfer models for the two PS<->PL paths the paper compares (§V).
//
//   GP port:  the CPU moves every 32-bit word itself over the general-purpose
//             port — "every transfer requires around 25 clock cycles" (PS
//             cycles, CPU blocked for all of them).
//   ACP DMA:  the HLS-memcpy DMA engine bursts 64-bit beats through the
//             Accelerator Coherency Port at the PL clock, CPU free.
#pragma once

namespace vf::hw {

struct GpPortModel {
  // PS cycles per 32-bit word with the CPU issuing each beat (paper: ~25).
  int cycles_per_word = 25;

  double cycles_for_words(int words) const {
    return static_cast<double>(words) * cycles_per_word;
  }
};

struct AcpDmaModel {
  int setup_cycles = 40;       // descriptor write + DMA start, in PL cycles
  int words_per_beat = 2;      // 64-bit data path moves two 32-bit words
  int beats_per_burst = 16;    // AXI burst length
  int burst_overhead = 2;      // address/response cycles per burst

  double cycles_for_words(int words) const {
    const int beats = (words + words_per_beat - 1) / words_per_beat;
    const int bursts = (beats + beats_per_burst - 1) / beats_per_burst;
    return static_cast<double>(setup_cycles) + beats +
           static_cast<double>(bursts) * burst_overhead;
  }
};

}  // namespace vf::hw

// PS/PL clock domains of the modeled ZC702.
//
// The paper's system runs the Cortex-A9 PS at 533 MHz and the PL wavelet
// engine at 100 MHz; every modeled duration in the repo is derived by
// converting a cycle count through one of these domains.
#pragma once

#include <string>

#include "src/common/sim_time.h"

namespace vf::hw {

class ClockDomain {
 public:
  ClockDomain(std::string name, double hz) : name_(std::move(name)), hz_(hz) {}

  const std::string& name() const { return name_; }
  double hz() const { return hz_; }
  double mhz() const { return hz_ * 1e-6; }

  SimDuration cycles(double n) const { return SimDuration::seconds(n / hz_); }
  double cycles_in(SimDuration d) const { return d.sec() * hz_; }

 private:
  std::string name_;
  double hz_;
};

// Returned by reference: these sit on per-line hot paths (every modeled
// line request converts cycles through a domain).
inline const ClockDomain& ps_clock() {
  static const ClockDomain domain("PS (Cortex-A9)", 533e6);
  return domain;
}
inline const ClockDomain& pl_clock() {
  static const ClockDomain domain("PL (wavelet engine)", 100e6);
  return domain;
}

}  // namespace vf::hw

// Band-streaming fused execution plan for the host fusion hot path.
//
// The staged path (fuse_frames under HostLayout::kTiled) runs four full-image
// passes — forward A, forward B, magnitude/select, inverse — and materializes
// two complete DtcwtPyramids in between, so every band plane crosses DRAM
// several times. The paper's PL engine wins precisely by not doing that: it
// streams lines through a fused analyze→fuse→synthesize datapath. FusionPlan
// is the host-side equivalent:
//
//   * the two frames' transforms run band-by-band, interleaved: level L of
//     frame A and frame B are produced back-to-back (per kLineBlock column
//     window) and consumed immediately by the magnitude/select rule while
//     still hot in cache — the second pyramid is never materialized;
//   * the forward column pass and the complex magnitude are one kernel
//     (KernelSet::analyze_mag_ml), and at the deepest level the select rule
//     is deferred into the inverse synthesis read (select_synth_ml), so the
//     pass count over band data drops from ~10 to ~3 per frame pair;
//   * all scratch comes from the per-thread arena; fused bands are stored
//     transposed so the inverse column pass reads them with no extra
//     transpose.
//
// Bit-identity is by construction, not by tolerance: every line flows through
// the same single-line kernel flavour with the same extended samples as the
// staged path (the fused kernels delegate per line — see kernels.h), the
// reconstruction accumulates trees in the same order, and the filter's
// account_*/barrier() bookkeeping is replayed serially afterwards in the
// exact canonical sequence the staged path emits (forward A trees 0-3,
// forward B trees 0-3, fusion pair/level/subband, inverse trees 0-3).
// StageHooks let a timed runner interleave its phase transitions with that
// replay, so every backend observes the same call stream as before.
#pragma once

#include <functional>
#include <vector>

#include "src/fusion/dwt_fusion.h"

namespace vf::dwt {

class FusionPlan {
 public:
  // Callbacks fired between the replay stages (never during the numerics,
  // which make no filter calls besides kernels()). A timed runner hangs its
  // backend phase transitions here so the modeled call sequence —
  // set_phase(forward), accounting, set_phase(fusion), ... — is identical
  // to the staged path's.
  struct StageHooks {
    std::function<void()> before_forward;
    std::function<void()> before_fusion;
    std::function<void()> before_inverse;
  };

  FusionPlan(int rows, int cols, const TransformConfig& config);

  // The plan handles splittable filters (numerics expressible as a
  // KernelSet) with at least one decomposition level; everything else stays
  // on the staged path.
  static bool applicable(const TransformConfig& config,
                         const LineFilter& filter);

  // Fuse one frame pair. Numerics first (pool-parallel over line blocks when
  // the filter has a pool), then the serial accounting replay.
  image::ImageF run(const image::ImageF& a, const image::ImageF& b,
                    LineFilter& filter, const StageHooks& hooks = {}) const;

  // Estimated DRAM traffic per frame pair, derived from the pass structure
  // (each plane-sized read/write a pass makes, x4 bytes; block scratch that
  // stays cache-resident is not charged). `staged_bytes` models the kTiled
  // layout, `fused_bytes` this plan; `flops` counts the transform MACs (x2)
  // plus the fusion-rule ops, for arithmetic-intensity reporting in
  // bench_pipeline --json.
  struct Traffic {
    double staged_bytes = 0.0;
    double fused_bytes = 0.0;
    double flops = 0.0;
  };
  Traffic estimate_traffic() const;

 private:
  struct LevelDims {
    int r, c;    // pre-padding input dims of this level
    int rp, cp;  // padded (even) dims
    int hr, hc;  // subband dims (rp/2, cp/2)
  };

  int rows_ = 0, cols_ = 0;
  TransformConfig config_;
  std::vector<LevelDims> dims_;            // [level]
  std::vector<FilterBank> row_banks_[2];   // [tree][level]
  std::vector<FilterBank> col_banks_[2];   // [tree][level]
};

}  // namespace vf::dwt

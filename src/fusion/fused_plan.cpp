#include "src/fusion/fused_plan.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/arena.h"
#include "src/common/thread_pool.h"
#include "src/simd/kernels.h"

namespace vf::dwt {
namespace {

using image::ImageF;

constexpr int kLineBlock = simd::kMaxLinesPerCall;

// tree(pair, side): trees (0,3) form the first complex pair, (1,2) the
// second; within a pair the re side is row-tree A and the im side row-tree B
// (see fuse.cpp). col_tree(pair, side) = side == 0 ? pair : 1 - pair.
constexpr int kPairRe[2] = {0, 1};
constexpr int kPairIm[2] = {3, 2};

// Extension buffers are padded to a 64-byte line boundary so consecutive
// lines in a block start aligned (matches the tiled path in dwt_fusion.cpp).
int align16(int n) { return (n + 15) & ~15; }

template <typename Fn>
void run_span(ThreadPool* pool, int n, Fn&& fn) {
  if (pool != nullptr) {
    pool->parallel_for(0, n, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

// Edge-replicating pad of an rows x cols plane into rp x cp (rp, cp each at
// most one larger) — the same pad_even semantics as the staged path.
void pad_raw(const float* src, int rows, int cols, int src_stride, int rp,
             int cp, float* out) {
  for (int r = 0; r < rp; ++r) {
    const float* s = src + static_cast<size_t>(r < rows ? r : rows - 1) * src_stride;
    float* d = out + static_cast<size_t>(r) * cp;
    std::memcpy(d, s, static_cast<size_t>(cols) * sizeof(float));
    if (cp > cols) d[cols] = s[cols - 1];
  }
}

// One forward row pass: rp lines of `src` (stride src_stride, cp samples
// each) -> rowlo/rowhi (rp x hc, stride hc). Same ext fill + kernel dispatch
// as the tiled analyze_level row pass.
void forward_row_pass(const float* src, int src_stride, int rp, int cp, int hc,
                      const FilterBank& bank, const simd::KernelSet& k,
                      ThreadPool* pool, float* rowlo, float* rowhi) {
  const int taps = bank.taps();
  const int ext_stride = align16(cp + taps);
  auto block = [&](int r0, int r1) {
    ArenaScope scratch;
    float* ext = scratch.alloc(static_cast<size_t>(kLineBlock) * ext_stride);
    for (int r = r0; r < r1; r += kLineBlock) {
      const int nb = std::min(kLineBlock, r1 - r);
      for (int l = 0; l < nb; ++l) {
        detail::fill_analysis_ext(bank, src + static_cast<size_t>(r + l) * src_stride,
                                  cp, ext + static_cast<size_t>(l) * ext_stride);
      }
      k.analyze_ml(ext, ext_stride, nb, hc, bank.lp.data(), bank.hp.data(), taps,
                   rowlo + static_cast<size_t>(r) * hc,
                   rowhi + static_cast<size_t>(r) * hc, hc);
    }
  };
  run_span(pool, rp, block);
}

}  // namespace

FusionPlan::FusionPlan(int rows, int cols, const TransformConfig& config)
    : rows_(rows), cols_(cols), config_(config) {
  assert(rows >= 1 && cols >= 1 && config.levels >= 1);
  int r = rows, c = cols;
  dims_.reserve(config.levels);
  for (int level = 0; level < config.levels; ++level) {
    LevelDims d;
    d.r = r;
    d.c = c;
    d.rp = r + (r & 1);
    d.cp = c + (c & 1);
    d.hr = d.rp / 2;
    d.hc = d.cp / 2;
    dims_.push_back(d);
    r = d.hr;
    c = d.hc;
  }
  for (int tree = 0; tree < 2; ++tree) {
    row_banks_[tree].reserve(config.levels);
    col_banks_[tree].reserve(config.levels);
    for (int level = 0; level < config.levels; ++level) {
      row_banks_[tree].push_back(detail::bank_for_level(config_, level, tree));
      col_banks_[tree].push_back(detail::bank_for_level(config_, level, tree));
    }
  }
  // analyze_mag_ml filters the re and im lines through one shared extension
  // stride/tap window, and select_synth_ml interleaves one (ca, cb) pair per
  // call. Both rely on the tree-A and tree-B banks agreeing on window widths,
  // which make_filter_bank guarantees by construction (the level-1 delay
  // shifts both window ends; the q-shift reversal stays inside the same
  // 14-tap window).
  for (int level = 0; level < config.levels; ++level) {
    assert(col_banks_[0][level].taps() == col_banks_[1][level].taps());
    assert(col_banks_[0][level].synth_taps() == col_banks_[1][level].synth_taps());
    (void)level;
  }
}

bool FusionPlan::applicable(const TransformConfig& config, const LineFilter& filter) {
  return filter.splittable() && config.levels >= 1;
}

ImageF FusionPlan::run(const ImageF& a, const ImageF& b, LineFilter& f,
                       const StageHooks& hooks) const {
  assert(a.rows() == rows_ && a.cols() == cols_);
  assert(b.rows() == rows_ && b.cols() == cols_);
  assert(f.splittable());

  const simd::KernelSet& k = f.kernels();
  ThreadPool* pool = f.pool();
  const int D = config_.levels;
  const int DL = D - 1;  // deepest level index
  const LevelDims& d0 = dims_[0];

  ArenaScope outer;

  // Padded inputs, shared by every tree of both frames.
  const float* in[2] = {a.data(), b.data()};
  for (int x = 0; x < 2; ++x) {
    if (rows_ != d0.rp || cols_ != d0.cp) {
      float* p = outer.alloc(static_cast<size_t>(d0.rp) * d0.cp);
      pad_raw(in[x], rows_, cols_, cols_, d0.rp, d0.cp, p);
      in[x] = p;
    }
  }

  // Level-0 row passes, shared across the two complex pairs: in both pairs
  // the re side is row-tree A and the im side row-tree B, so four passes
  // (frame x side) cover all eight (frame x tree) level-0 row transforms the
  // staged path runs.
  const size_t half0 = static_cast<size_t>(d0.rp) * d0.hc;
  float* row0lo[2][2];
  float* row0hi[2][2];
  for (int x = 0; x < 2; ++x) {
    for (int s = 0; s < 2; ++s) {
      row0lo[x][s] = outer.alloc(half0);
      row0hi[x][s] = outer.alloc(half0);
      forward_row_pass(in[x], d0.cp, d0.rp, d0.cp, d0.hc, row_banks_[s][0], k,
                       pool, row0lo[x][s], row0hi[x][s]);
    }
  }

  // Per-tree reconstructions, combined at the end in tree order (the staged
  // inverse_dtcwt accumulation order).
  float* recon[4];
  for (int t = 0; t < 4; ++t) {
    recon[t] = outer.alloc(static_cast<size_t>(rows_) * cols_);
  }

  for (int p = 0; p < 2; ++p) {
    ArenaScope pair;
    const int col_tree[2] = {p, 1 - p};

    // Fused band planes for levels above the deepest, stored transposed
    // (line = image column, stride hr) so the inverse column pass reads them
    // directly. fused_at(L, sb, s): sb in {0=lh, 1=hl, 2=hh}, s = side.
    std::vector<float*> fused_bands(static_cast<size_t>(DL) * 6, nullptr);
    auto fused_at = [&](int L, int sb, int s) -> float*& {
      return fused_bands[(static_cast<size_t>(L) * 3 + sb) * 2 + s];
    };
    for (int L = 0; L < DL; ++L) {
      const size_t q = static_cast<size_t>(dims_[L].hr) * dims_[L].hc;
      for (int sb = 0; sb < 3; ++sb) {
        for (int s = 0; s < 2; ++s) fused_at(L, sb, s) = pair.alloc(q);
      }
    }
    // At the deepest level both frames' candidate bands and their magnitudes
    // are kept (transposed) so the select rule can run fused into the inverse
    // synthesis read. deep_band[sb][side][frame]; deep_mag[sb][frame].
    const LevelDims& dd = dims_[DL];
    const size_t qd = static_cast<size_t>(dd.hr) * dd.hc;
    float* deep_band[3][2][2];
    float* deep_mag[3][2];
    for (int sb = 0; sb < 3; ++sb) {
      for (int s = 0; s < 2; ++s) {
        for (int x = 0; x < 2; ++x) deep_band[sb][s][x] = pair.alloc(qd);
      }
      for (int x = 0; x < 2; ++x) deep_mag[sb][x] = pair.alloc(qd);
    }
    float* t_ll_fused[2] = {pair.alloc(qd), pair.alloc(qd)};

    // --- forward: both frames interleaved, band-by-band -----------------
    const float* cur[2][2] = {{nullptr, nullptr}, {nullptr, nullptr}};
    for (int L = 0; L < D; ++L) {
      const LevelDims& dl = dims_[L];
      const size_t half = static_cast<size_t>(dl.rp) * dl.hc;
      const size_t q = static_cast<size_t>(dl.hr) * dl.hc;

      // Outputs that must survive this level (allocated below the transient
      // scope's mark): the transposed lowpass residues, and — above the
      // deepest level — their transpose back into row-major for level L+1.
      float* tll[2][2];
      float* ll_next[2][2] = {{nullptr, nullptr}, {nullptr, nullptr}};
      for (int x = 0; x < 2; ++x) {
        for (int s = 0; s < 2; ++s) {
          tll[x][s] = pair.alloc(q);
          if (L < DL) ll_next[x][s] = pair.alloc(q);
        }
      }

      {
        ArenaScope level;

        // Row passes (level 0's were shared and precomputed above).
        float* rowlo[2][2];
        float* rowhi[2][2];
        for (int x = 0; x < 2; ++x) {
          for (int s = 0; s < 2; ++s) {
            if (L == 0) {
              rowlo[x][s] = row0lo[x][s];
              rowhi[x][s] = row0hi[x][s];
              continue;
            }
            rowlo[x][s] = level.alloc(half);
            rowhi[x][s] = level.alloc(half);
            const float* src = cur[x][s];
            int src_stride = dl.c;
            if (dl.rp != dl.r || dl.cp != dl.c) {
              float* pp = level.alloc(static_cast<size_t>(dl.rp) * dl.cp);
              pad_raw(src, dl.r, dl.c, src_stride, dl.rp, dl.cp, pp);
              src = pp;
              src_stride = dl.cp;
            }
            forward_row_pass(src, src_stride, dl.rp, dl.cp, dl.hc,
                             row_banks_[s][L], k, pool, rowlo[x][s], rowhi[x][s]);
          }
        }

        // Column pass: analysis + magnitude fused per frame, then — above
        // the deepest level — the select rule immediately, while the block's
        // bands are hot. All outputs are transposed (stride hr).
        const FilterBank& cb0 = col_banks_[col_tree[0]][L];
        const FilterBank& cb1 = col_banks_[col_tree[1]][L];
        const int taps = cb0.taps();
        const int ext_stride = align16(dl.rp + taps);
        auto col_block = [&](int c0, int c1) {
          ArenaScope scratch;
          float* slab_lo[2];
          float* slab_hi[2];
          for (int s = 0; s < 2; ++s) {
            slab_lo[s] = scratch.alloc(static_cast<size_t>(kLineBlock) * dl.rp);
            slab_hi[s] = scratch.alloc(static_cast<size_t>(kLineBlock) * dl.rp);
          }
          float* ext_re = scratch.alloc(static_cast<size_t>(kLineBlock) * ext_stride);
          float* ext_im = scratch.alloc(static_cast<size_t>(kLineBlock) * ext_stride);
          // Block-local band planes for the in-cache select at shallow
          // levels: blk[frame][sb][0=re, 1=im, 2=mag].
          float* blk[2][3][3];
          if (L < DL) {
            for (int x = 0; x < 2; ++x) {
              for (int sb = 0; sb < 3; ++sb) {
                for (int j = 0; j < 3; ++j) {
                  blk[x][sb][j] = scratch.alloc(static_cast<size_t>(kLineBlock) * dl.hr);
                }
              }
            }
          }
          for (int c = c0; c < c1; c += kLineBlock) {
            const int nb = std::min(kLineBlock, c1 - c);
            const size_t off = static_cast<size_t>(c) * dl.hr;
            for (int x = 0; x < 2; ++x) {
              for (int s = 0; s < 2; ++s) {
                simd::transpose_f32(rowlo[x][s] + c, dl.rp, nb, dl.hc, slab_lo[s], dl.rp);
                simd::transpose_f32(rowhi[x][s] + c, dl.rp, nb, dl.hc, slab_hi[s], dl.rp);
              }
              // Row-lo columns -> ll (both sides) + lh (+ |lh|).
              for (int l = 0; l < nb; ++l) {
                detail::fill_analysis_ext(cb0, slab_lo[0] + static_cast<size_t>(l) * dl.rp,
                                          dl.rp, ext_re + static_cast<size_t>(l) * ext_stride);
                detail::fill_analysis_ext(cb1, slab_lo[1] + static_cast<size_t>(l) * dl.rp,
                                          dl.rp, ext_im + static_cast<size_t>(l) * ext_stride);
              }
              const bool deep = L == DL;
              k.analyze_mag_ml(ext_re, ext_im, ext_stride, nb, dl.hr,
                               cb0.lp.data(), cb0.hp.data(), cb1.lp.data(),
                               cb1.hp.data(), taps, tll[x][0] + off,
                               deep ? deep_band[0][0][x] + off : blk[x][0][0],
                               tll[x][1] + off,
                               deep ? deep_band[0][1][x] + off : blk[x][0][1],
                               nullptr,
                               deep ? deep_mag[0][x] + off : blk[x][0][2], dl.hr);
              // Row-hi columns -> hl + hh (+ magnitudes of both).
              for (int l = 0; l < nb; ++l) {
                detail::fill_analysis_ext(cb0, slab_hi[0] + static_cast<size_t>(l) * dl.rp,
                                          dl.rp, ext_re + static_cast<size_t>(l) * ext_stride);
                detail::fill_analysis_ext(cb1, slab_hi[1] + static_cast<size_t>(l) * dl.rp,
                                          dl.rp, ext_im + static_cast<size_t>(l) * ext_stride);
              }
              k.analyze_mag_ml(ext_re, ext_im, ext_stride, nb, dl.hr,
                               cb0.lp.data(), cb0.hp.data(), cb1.lp.data(),
                               cb1.hp.data(), taps,
                               deep ? deep_band[1][0][x] + off : blk[x][1][0],
                               deep ? deep_band[2][0][x] + off : blk[x][2][0],
                               deep ? deep_band[1][1][x] + off : blk[x][1][1],
                               deep ? deep_band[2][1][x] + off : blk[x][2][1],
                               deep ? deep_mag[1][x] + off : blk[x][1][2],
                               deep ? deep_mag[2][x] + off : blk[x][2][2], dl.hr);
            }
            if (L < DL) {
              for (int sb = 0; sb < 3; ++sb) {
                k.select_ml(blk[0][sb][0], blk[0][sb][1], blk[1][sb][0],
                            blk[1][sb][1], blk[0][sb][2], blk[1][sb][2], nb,
                            dl.hr, dl.hr, fused_at(L, sb, 0) + off,
                            fused_at(L, sb, 1) + off, dl.hr);
              }
            }
          }
        };
        run_span(pool, dl.hc, col_block);
      }  // transient level scope

      if (L < DL) {
        for (int x = 0; x < 2; ++x) {
          for (int s = 0; s < 2; ++s) {
            simd::transpose_f32(tll[x][s], dl.hc, dl.hr, dl.hr, ll_next[x][s], dl.hc);
            cur[x][s] = ll_next[x][s];
          }
        }
      } else {
        // Lowpass residue fusion (not time-accounted, matching average()).
        for (int s = 0; s < 2; ++s) {
          k.average(tll[0][s], tll[1][s], static_cast<int>(qd), t_ll_fused[s]);
        }
      }
    }

    // --- inverse: fused bands stream straight into synthesis ------------
    for (int s = 0; s < 2; ++s) {
      const FilterBank* rowb = &row_banks_[s][0];  // reassigned per level
      const float* t_cur = t_ll_fused[s];
      for (int L = DL; L >= 0; --L) {
        const LevelDims& dl = dims_[L];
        const int rp2 = dl.hr;  // synthesis pair count per column line
        const int cp2 = dl.hc;
        const FilterBank& colb = col_banks_[col_tree[s]][L];
        rowb = &row_banks_[s][L];

        float* rowlo = pair.alloc(static_cast<size_t>(dl.rp) * cp2);
        float* rowhi = pair.alloc(static_cast<size_t>(dl.rp) * cp2);
        float* padded = pair.alloc(static_cast<size_t>(dl.rp) * dl.cp);
        float* t_next =
            L > 0 ? pair.alloc(static_cast<size_t>(dl.c) * dl.r) : nullptr;

        // Column synthesis; at the deepest level the select rule runs fused
        // into the synthesis read of the candidate bands.
        auto col_block = [&](int c0, int c1) {
          ArenaScope scratch;
          float* tslab_lo = scratch.alloc(static_cast<size_t>(kLineBlock) * dl.rp);
          float* tslab_hi = scratch.alloc(static_cast<size_t>(kLineBlock) * dl.rp);
          for (int c = c0; c < c1; c += kLineBlock) {
            const int nb = std::min(kLineBlock, c1 - c);
            const size_t off = static_cast<size_t>(c) * rp2;
            if (L == DL) {
              k.select_synth_ml(t_cur + off, nullptr, nullptr, nullptr,
                                deep_band[0][s][0] + off, deep_band[0][s][1] + off,
                                deep_mag[0][0] + off, deep_mag[0][1] + off, rp2,
                                nb, rp2, colb.ca.data(), colb.cb.data(),
                                colb.synth_taps(), colb.synthesis_offset,
                                tslab_lo, dl.rp);
              k.select_synth_ml(deep_band[1][s][0] + off, deep_band[1][s][1] + off,
                                deep_mag[1][0] + off, deep_mag[1][1] + off,
                                deep_band[2][s][0] + off, deep_band[2][s][1] + off,
                                deep_mag[2][0] + off, deep_mag[2][1] + off, rp2,
                                nb, rp2, colb.ca.data(), colb.cb.data(),
                                colb.synth_taps(), colb.synthesis_offset,
                                tslab_hi, dl.rp);
            } else {
              k.select_synth_ml(t_cur + off, nullptr, nullptr, nullptr,
                                fused_at(L, 0, s) + off, nullptr, nullptr,
                                nullptr, rp2, nb, rp2, colb.ca.data(),
                                colb.cb.data(), colb.synth_taps(),
                                colb.synthesis_offset, tslab_lo, dl.rp);
              k.select_synth_ml(fused_at(L, 1, s) + off, nullptr, nullptr,
                                nullptr, fused_at(L, 2, s) + off, nullptr,
                                nullptr, nullptr, rp2, nb, rp2, colb.ca.data(),
                                colb.cb.data(), colb.synth_taps(),
                                colb.synthesis_offset, tslab_hi, dl.rp);
            }
            simd::transpose_f32(tslab_lo, nb, dl.rp, dl.rp, rowlo + c, cp2);
            simd::transpose_f32(tslab_hi, nb, dl.rp, dl.rp, rowhi + c, cp2);
          }
        };
        run_span(pool, cp2, col_block);

        // Row synthesis back to the padded plane of this level.
        auto row_block = [&](int r0, int r1) {
          for (int r = r0; r < r1; r += kLineBlock) {
            const int nb = std::min(kLineBlock, r1 - r);
            k.select_synth_ml(rowlo + static_cast<size_t>(r) * cp2, nullptr,
                              nullptr, nullptr,
                              rowhi + static_cast<size_t>(r) * cp2, nullptr,
                              nullptr, nullptr, cp2, nb, cp2, rowb->ca.data(),
                              rowb->cb.data(), rowb->synth_taps(),
                              rowb->synthesis_offset,
                              padded + static_cast<size_t>(r) * dl.cp, dl.cp);
          }
        };
        run_span(pool, dl.rp, row_block);

        if (L > 0) {
          // Crop to this level's pre-padding dims and transpose so the next
          // (shallower) level's column pass reads contiguous lines.
          simd::transpose_f32(padded, dl.r, dl.c, dl.cp, t_next, dl.r);
          t_cur = t_next;
        } else {
          float* dst = recon[s == 0 ? kPairRe[p] : kPairIm[p]];
          for (int r = 0; r < rows_; ++r) {
            std::memcpy(dst + static_cast<size_t>(r) * cols_,
                        padded + static_cast<size_t>(r) * dl.cp,
                        static_cast<size_t>(cols_) * sizeof(float));
          }
        }
      }
    }
  }  // pair scope

  // Combine the four trees in the staged accumulation order:
  // recs[0] += recs[1..3], then x 0.25f.
  ImageF out(rows_, cols_);
  float* acc = out.data();
  const size_t n = out.size();
  std::memcpy(acc, recon[0], n * sizeof(float));
  for (int t = 1; t < 4; ++t) {
    const float* r = recon[t];
    for (size_t i = 0; i < n; ++i) acc[i] += r[i];
  }
  for (size_t i = 0; i < n; ++i) acc[i] *= 0.25f;

  // --- serial accounting replay, in the staged path's canonical order ----
  if (hooks.before_forward) hooks.before_forward();
  for (int x = 0; x < 2; ++x) {
    for (int t = 0; t < 4; ++t) {
      detail::account_forward_tree(rows_, cols_, config_,
                                   row_banks_[t >> 1].data(),
                                   col_banks_[t & 1].data(), f);
    }
    (void)x;
  }
  if (hooks.before_fusion) hooks.before_fusion();
  for (int p = 0; p < 2; ++p) {
    for (int L = 0; L < D; ++L) {
      const int nb = dims_[L].hr * dims_[L].hc;
      for (int sb = 0; sb < 3; ++sb) {
        f.account_magnitude(nb);
        f.account_magnitude(nb);
        f.account_select(nb);
      }
    }
    (void)p;
  }
  if (hooks.before_inverse) hooks.before_inverse();
  for (int t = 0; t < 4; ++t) {
    detail::account_inverse_tree(rows_, cols_, config_,
                                 row_banks_[t >> 1].data(),
                                 col_banks_[t & 1].data(), f);
  }
  return out;
}

FusionPlan::Traffic FusionPlan::estimate_traffic() const {
  Traffic t;
  const int D = config_.levels;
  const int DL = D - 1;
  for (int L = 0; L < D; ++L) {
    const LevelDims& d = dims_[L];
    const double P = static_cast<double>(d.rp) * d.cp;  // padded plane elems
    const double Q = P / 4.0;                           // one band plane
    const double rc = static_cast<double>(d.r) * d.c;
    const int row_taps = row_banks_[0][L].taps();
    const int col_taps = col_banks_[0][L].taps();
    const int row_staps = row_banks_[0][L].synth_taps();
    const int col_staps = col_banks_[0][L].synth_taps();

    // FLOPs are layout-independent: 2 per MAC over 8 forward and 4 inverse
    // tree-level transforms, plus the fusion rule (4 per magnitude element,
    // 1 per select, 2 per residue average).
    t.flops += 8.0 * (P * 2.0 * row_taps + P * 2.0 * col_taps);
    t.flops += 4.0 * (P * 2.0 * col_staps + P * 2.0 * row_staps);
    t.flops += 2.0 * 3.0 * (2.0 * 4.0 * Q + Q);
    if (L == DL) t.flops += 4.0 * 2.0 * Q;

    // Staged (kTiled): per tree-level, forward = row pass (r+w) + transpose
    // of both half-planes (r+w) + column pass (r+w) + transpose of the four
    // quarter planes back (r+w) = 8P element moves; x8 trees. Inverse
    // mirrors it with 4 transposes of quarter/half planes = 8P; x4 trees.
    // Fusion: per band, two magnitude passes (2r+1w each over Q) and one
    // select (6r+2w over Q); x3 bands x2 pairs; + residue average x4 trees.
    double staged = 8.0 * 8.0 * P + 4.0 * 8.0 * P;
    staged += 2.0 * 3.0 * (2.0 * 3.0 * Q + 8.0 * Q);
    if (L == DL) staged += 4.0 * 3.0 * Q;
    t.staged_bytes += 4.0 * staged;

    // Fused: level-0 row passes are shared across pairs (4 instead of 8);
    // the column pass reads the half planes once and writes bands once (the
    // magnitude and shallow-level select happen in cache); the inverse reads
    // each fused band exactly once. Per pair and level:
    //   rows: 4 passes x (r+w) = 8P (only levels > 0; level 0 shared = 4P
    //         across BOTH pairs, charged once below)
    //   cols: read 4 half planes (4P) + write 4 tll (P) + band writes
    //         (6Q shallow / 18Q deep incl. mags)
    //   ll:   shallow transpose back 4 x (r+w over Q) = 2P; deep average
    //         2 x (2r+1w over Q) = 6Q
    //   inv:  col pass reads (Q ll + 3Q bands shallow / Q + 12Q deep) +
    //         writes half planes (P) + row pass (r+w = 2P) + transpose or
    //         crop to next level (2 x rc).
    double fused = L == 0 ? 4.0 * P : 2.0 * 8.0 * P;
    fused += 2.0 * (4.0 * P + P);
    fused += 2.0 * (L == DL ? 18.0 * Q : 6.0 * Q);
    fused += L == DL ? 2.0 * 6.0 * Q : 2.0 * 2.0 * P;
    fused += 2.0 * 2.0 * ((L == DL ? 13.0 * Q : 4.0 * Q) + P + 2.0 * P + 2.0 * rc);
    t.fused_bytes += 4.0 * fused;
  }
  return t;
}

}  // namespace vf::dwt

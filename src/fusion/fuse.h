// Coefficient-domain fusion of two frames (visible + thermal).
//
// The rule is the paper's maximum-magnitude selection: for every complex
// DT-CWT coefficient pair, keep the coefficient from whichever input frame
// has the larger magnitude (salient features win), and average the coarse
// lowpass residuals. The plain-DWT variant applies the same rule to real
// coefficients and exists for the algorithms ablation.
#pragma once

#include "src/fusion/dwt_fusion.h"
#include "src/image/metrics.h"

namespace vf::fusion {

struct FuseConfig {
  dwt::TransformConfig transform;
};

struct DwtFuseConfig {
  dwt::TransformConfig transform;
};

struct FusionOutcome {
  image::ImageF fused;
  image::FusionQuality quality;
};

// DT-CWT max-magnitude fusion (the paper's pipeline). All transform lines and
// fusion-rule kernels execute through `filter`, so backends can account
// modeled time and MACs.
image::ImageF fuse_frames(const image::ImageF& a, const image::ImageF& b,
                          const FuseConfig& config, dwt::LineFilter& filter);

FusionOutcome fuse_frames_with_quality(const image::ImageF& a, const image::ImageF& b,
                                       const FuseConfig& config,
                                       dwt::LineFilter& filter);

// Critically sampled single-tree DWT baseline.
image::ImageF fuse_frames_dwt(const image::ImageF& a, const image::ImageF& b,
                              const DwtFuseConfig& config, dwt::LineFilter& filter);

// Fuses an already-computed pyramid pair in place (used by the scheduler's
// timed runner so the transform and fusion phases can be clocked separately).
void fuse_pyramids(const dwt::DtcwtPyramid& a, const dwt::DtcwtPyramid& b,
                   dwt::DtcwtPyramid* out, dwt::LineFilter& filter);

}  // namespace vf::fusion

// Laplacian-pyramid fusion baseline (Burt–Adelson) for the algorithms
// ablation. Deliberately self-contained: it does not run through a
// LineFilter backend, mirroring how a pyramid scheme would bypass the
// wavelet engine entirely.
#pragma once

#include "src/image/metrics.h"

namespace vf::fusion {

struct LaplacianFuseConfig {
  int levels = 3;
};

image::ImageF fuse_frames_laplacian(const image::ImageF& a, const image::ImageF& b,
                                    const LaplacianFuseConfig& config);

}  // namespace vf::fusion

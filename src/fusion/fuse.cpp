#include "src/fusion/fuse.h"

#include <vector>

#include "src/common/arena.h"
#include "src/fusion/fused_plan.h"

namespace vf::fusion {

namespace {

using image::ImageF;

// Max-magnitude selection on one complex coefficient plane. The pair
// (re_tree, im_tree) indexes the two trees whose coefficients are combined
// into one complex subband (AA+jBB and AB+jBA). Magnitude scratch comes from
// the per-thread arena: this runs once per (pair, level, subband) per frame,
// and the deeper subbands are small enough that two vector constructions per
// call used to rival the arithmetic.
void select_band(const ImageF& a_re, const ImageF& a_im, const ImageF& b_re,
                 const ImageF& b_im, ImageF* out_re, ImageF* out_im,
                 dwt::LineFilter& filter) {
  const int n = static_cast<int>(a_re.size());
  ArenaScope scratch;
  float* mag_a = scratch.alloc(n);
  float* mag_b = scratch.alloc(n);
  filter.magnitude(a_re.data(), a_im.data(), n, mag_a);
  filter.magnitude(b_re.data(), b_im.data(), n, mag_b);
  *out_re = ImageF(a_re.rows(), a_re.cols());
  *out_im = ImageF(a_im.rows(), a_im.cols());
  filter.select(a_re.data(), a_im.data(), b_re.data(), b_im.data(), mag_a,
                mag_b, n, out_re->data(), out_im->data());
}

void average_into(const ImageF& a, const ImageF& b, ImageF* out,
                  dwt::LineFilter& filter) {
  *out = ImageF(a.rows(), a.cols());
  filter.average(a.data(), b.data(), static_cast<int>(a.size()), out->data());
}

const ImageF& band(const dwt::LevelBands& lv, int which) {
  return which == 0 ? lv.lh : which == 1 ? lv.hl : lv.hh;
}
ImageF& band(dwt::LevelBands& lv, int which) {
  return which == 0 ? lv.lh : which == 1 ? lv.hl : lv.hh;
}

}  // namespace

void fuse_pyramids(const dwt::DtcwtPyramid& a, const dwt::DtcwtPyramid& b,
                   dwt::DtcwtPyramid* out, dwt::LineFilter& filter) {
  const int levels = static_cast<int>(a.tree[0].levels.size());
  for (int t = 0; t < 4; ++t) {
    out->tree[t].levels.resize(levels);
    for (int lv = 0; lv < levels; ++lv) {
      out->tree[t].levels[lv].in_rows = a.tree[t].levels[lv].in_rows;
      out->tree[t].levels[lv].in_cols = a.tree[t].levels[lv].in_cols;
    }
  }
  // Complex pairs: (AA, BB) and (AB, BA) — trees 0&3 and 1&2.
  const int pair_re[2] = {0, 1};
  const int pair_im[2] = {3, 2};
  for (int p = 0; p < 2; ++p) {
    const int tr = pair_re[p];
    const int ti = pair_im[p];
    for (int lv = 0; lv < levels; ++lv) {
      for (int sb = 0; sb < 3; ++sb) {
        select_band(band(a.tree[tr].levels[lv], sb), band(a.tree[ti].levels[lv], sb),
                    band(b.tree[tr].levels[lv], sb), band(b.tree[ti].levels[lv], sb),
                    &band(out->tree[tr].levels[lv], sb),
                    &band(out->tree[ti].levels[lv], sb), filter);
      }
    }
  }
  for (int t = 0; t < 4; ++t) {
    average_into(a.tree[t].ll, b.tree[t].ll, &out->tree[t].ll, filter);
  }
}

image::ImageF fuse_frames(const image::ImageF& a, const image::ImageF& b,
                          const FuseConfig& config, dwt::LineFilter& filter) {
  if (dwt::host_layout() == dwt::HostLayout::kFused &&
      dwt::FusionPlan::applicable(config.transform, filter)) {
    const dwt::FusionPlan plan(a.rows(), a.cols(), config.transform);
    return plan.run(a, b, filter);
  }
  const dwt::DtcwtPyramid pa = dwt::forward_dtcwt(a, config.transform, filter);
  const dwt::DtcwtPyramid pb = dwt::forward_dtcwt(b, config.transform, filter);
  dwt::DtcwtPyramid fused;
  fuse_pyramids(pa, pb, &fused, filter);
  return dwt::inverse_dtcwt(fused, config.transform, filter);
}

FusionOutcome fuse_frames_with_quality(const image::ImageF& a, const image::ImageF& b,
                                       const FuseConfig& config,
                                       dwt::LineFilter& filter) {
  FusionOutcome outcome;
  outcome.fused = fuse_frames(a, b, config, filter);
  outcome.quality = image::evaluate_fusion(a, b, outcome.fused);
  return outcome;
}

image::ImageF fuse_frames_dwt(const image::ImageF& a, const image::ImageF& b,
                              const DwtFuseConfig& config, dwt::LineFilter& filter) {
  dwt::TreePyramid pa = dwt::forward_tree(a, config.transform, 0, 0, filter);
  dwt::TreePyramid pb = dwt::forward_tree(b, config.transform, 0, 0, filter);
  dwt::TreePyramid fused;
  const int levels = static_cast<int>(pa.levels.size());
  fused.levels.resize(levels);
  // Scratch sized for the largest (level-1) subband, reused across bands.
  const std::size_t max_n = levels > 0 ? pa.levels[0].lh.size() : 0;
  const std::vector<float> zeros(max_n, 0.0f);
  std::vector<float> mag_a(max_n), mag_b(max_n), out_im(max_n);
  for (int lv = 0; lv < levels; ++lv) {
    fused.levels[lv].in_rows = pa.levels[lv].in_rows;
    fused.levels[lv].in_cols = pa.levels[lv].in_cols;
    for (int sb = 0; sb < 3; ++sb) {
      const ImageF& ba = band(pa.levels[lv], sb);
      const ImageF& bb = band(pb.levels[lv], sb);
      const int n = static_cast<int>(ba.size());
      // Real coefficients: magnitude of (c, 0) is |c|.
      filter.magnitude(ba.data(), zeros.data(), n, mag_a.data());
      filter.magnitude(bb.data(), zeros.data(), n, mag_b.data());
      ImageF& out = band(fused.levels[lv], sb);
      out = ImageF(ba.rows(), ba.cols());
      filter.select(ba.data(), zeros.data(), bb.data(), zeros.data(), mag_a.data(),
                    mag_b.data(), n, out.data(), out_im.data());
    }
  }
  average_into(pa.ll, pb.ll, &fused.ll, filter);
  return dwt::inverse_tree(fused, config.transform, 0, 0, filter);
}

}  // namespace vf::fusion

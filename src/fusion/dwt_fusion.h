// Multi-level DT-CWT analysis/synthesis built on the decimating
// dual-correlation kernels.
//
// Layering: this file depends only on src/common and src/simd (plus ImageF).
// Filter banks are stored pre-baked in the exact array form the kernels (and
// the modeled FPGA wavelet engine) consume:
//
//   analysis:  lo[i] = sum_t lp[t] * ext[2i + t]   with ext[k] = x[(k-E) mod N]
//   synthesis: y[2m]   = sum_t ca[t] * extu[2m + t]
//              y[2m+1] = sum_t cb[t] * extu[2m + t]
//   where extu is the periodically extended interleaved lo/hi stream.
//
// Banks are constructed from a biorthogonal prototype (h0, g0) via the
// quadrature pairing H1(z) = z^-k G0(-z), G1(z) = z^k H0(-z) with odd k,
// which cancels aliasing exactly, so a single analysis+synthesis level is a
// zero-delay identity on periodic signals (tests/test_dwt.cpp locks < 1e-4
// over random frames). The dual tree doubles this per dimension: tree B is
// the one-sample-delayed bank at level 1 and the reversed q-shift filter at
// levels >= 2 (Kingsbury's construction).
#pragma once

#include <string>
#include <vector>

#include "src/image/metrics.h"

namespace vf::dwt {

enum class Wavelet {
  kLeGall53,   // 5/3 biorthogonal — level-1 default, fits a 5-slot engine
  kCdf97,      // 9/7 biorthogonal — higher-quality level-1 alternative
  kQshift14A,  // Kingsbury q-shift 14-tap, tree A (levels >= 2)
  kQshift14B,  // time-reverse of A, tree B
};

const char* wavelet_name(Wavelet w);

struct FilterBank {
  Wavelet wavelet = Wavelet::kLeGall53;
  // Analysis pair, padded to one shared window of `taps()` samples.
  std::vector<float> lp, hp;
  int analysis_offset = 0;  // E in ext[k] = x[(k - E) mod N]
  // Synthesis pair over the interleaved stream.
  std::vector<float> ca, cb;
  int synthesis_offset = 0;  // S in extu[k] = u[(k - S) mod N]

  int taps() const { return static_cast<int>(lp.size()); }
  int synth_taps() const { return static_cast<int>(ca.size()); }
};

// `delay` shifts the analysis filters by +delay samples (and the synthesis
// filters by -delay) — used to build the level-1 tree-B bank.
FilterBank make_filter_bank(Wavelet w, int delay = 0);

// Coefficient-register depth the modeled FPGA engine needs to run this bank
// (= the analysis window width; see bench_ablation_taps).
int required_slots(const FilterBank& bank);

// --- execution backends -----------------------------------------------------

struct FilterStats {
  long long analysis_macs = 0;
  long long synthesis_macs = 0;
  long long analysis_lines = 0;
  long long synthesis_lines = 0;
  long long total_macs() const { return analysis_macs + synthesis_macs; }
};

// A LineFilter executes one line-sized kernel request at a time — the same
// granularity at which the paper's driver feeds the PL engine. Subclasses
// pick the implementation (scalar / 4-lane SIMD / fixed-point datapath /
// time-accounted engine models in src/sched).
class LineFilter {
 public:
  virtual ~LineFilter() = default;

  // Data-dependency fence between line batches: lines issued after the
  // barrier read outputs of lines issued before it (row pass -> column
  // pass, level L -> level L+1). Synchronous filters need nothing — the
  // default is a no-op — but pipelined engine models (which overlap
  // consecutive line requests) must not start a dependent input transfer
  // before the producing outputs have landed.
  virtual void barrier() {}

  virtual void analyze(const float* ext, int out_len, const float* lp, const float* hp,
                       int taps, float* lo, float* hi) = 0;
  virtual void synthesize(const float* ext, int pairs, const float* ca, const float* cb,
                          int taps, float* out) = 0;
  // Fusion-rule kernels; scalar by default, backends may re-route/account.
  virtual void magnitude(const float* re, const float* im, int n, float* mag);
  virtual void select(const float* a_re, const float* a_im, const float* b_re,
                      const float* b_im, const float* mag_a, const float* mag_b, int n,
                      float* out_re, float* out_im);
};

class ScalarLineFilter : public LineFilter {
 public:
  void analyze(const float* ext, int out_len, const float* lp, const float* hp, int taps,
               float* lo, float* hi) override;
  void synthesize(const float* ext, int pairs, const float* ca, const float* cb,
                  int taps, float* out) override;

  void reset_stats() { stats_ = {}; }
  const FilterStats& stats() const { return stats_; }

 private:
  FilterStats stats_;
};

class SimdLineFilter : public LineFilter {
 public:
  void analyze(const float* ext, int out_len, const float* lp, const float* hp, int taps,
               float* lo, float* hi) override;
  void synthesize(const float* ext, int pairs, const float* ca, const float* cb,
                  int taps, float* out) override;

  void reset_stats() { stats_ = {}; }
  const FilterStats& stats() const { return stats_; }

 private:
  FilterStats stats_;
};

// --- 1-D line transforms ----------------------------------------------------

// x has n samples (n even); lo/hi receive n/2 each. `scratch` avoids
// reallocating the extension buffer across the thousands of line calls.
void analyze_line(LineFilter& f, const FilterBank& bank, const float* x, int n,
                  float* lo, float* hi, std::vector<float>& scratch);
void synthesize_line(LineFilter& f, const FilterBank& bank, const float* lo,
                     const float* hi, int n, float* y, std::vector<float>& scratch);

// --- 2-D multi-level transform ----------------------------------------------

struct TransformConfig {
  int levels = 3;
  Wavelet level1 = Wavelet::kLeGall53;
  Wavelet higher = Wavelet::kQshift14A;  // tree A; tree B is its reverse
};

struct LevelBands {
  image::ImageF lh, hl, hh;  // row-lo/col-hi, row-hi/col-lo, row-hi/col-hi
  int in_rows = 0, in_cols = 0;  // pre-padding input dims (crop on inverse)
};

// One critically sampled wavelet decomposition (one tree of the dual tree,
// or the whole transform for the plain-DWT baseline).
struct TreePyramid {
  std::vector<LevelBands> levels;
  image::ImageF ll;
};

// `row_tree`/`col_tree`: 0 = tree A, 1 = tree B (one-sample level-1 delay +
// reversed q-shift filters at levels >= 2) applied along that dimension.
TreePyramid forward_tree(const image::ImageF& img, const TransformConfig& config,
                         int row_tree, int col_tree, LineFilter& filter);
image::ImageF inverse_tree(const TreePyramid& pyr, const TransformConfig& config,
                           int row_tree, int col_tree, LineFilter& filter);

// The full 4x-redundant 2-D DT-CWT: trees indexed by (row_tree, col_tree) in
// {A,B}^2, i.e. tree[0]=AA, tree[1]=AB, tree[2]=BA, tree[3]=BB.
struct DtcwtPyramid {
  TreePyramid tree[4];
};

DtcwtPyramid forward_dtcwt(const image::ImageF& img, const TransformConfig& config,
                           LineFilter& filter);
// Averages the four trees' reconstructions.
image::ImageF inverse_dtcwt(const DtcwtPyramid& pyr, const TransformConfig& config,
                            LineFilter& filter);

}  // namespace vf::dwt

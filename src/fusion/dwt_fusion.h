// Multi-level DT-CWT analysis/synthesis built on the decimating
// dual-correlation kernels.
//
// Layering: this file depends only on src/common and src/simd (plus ImageF).
// Filter banks are stored pre-baked in the exact array form the kernels (and
// the modeled FPGA wavelet engine) consume:
//
//   analysis:  lo[i] = sum_t lp[t] * ext[2i + t]   with ext[k] = x[(k-E) mod N]
//   synthesis: y[2m]   = sum_t ca[t] * extu[2m + t]
//              y[2m+1] = sum_t cb[t] * extu[2m + t]
//   where extu is the periodically extended interleaved lo/hi stream.
//
// Banks are constructed from a biorthogonal prototype (h0, g0) via the
// quadrature pairing H1(z) = z^-k G0(-z), G1(z) = z^k H0(-z) with odd k,
// which cancels aliasing exactly, so a single analysis+synthesis level is a
// zero-delay identity on periodic signals (tests/test_dwt.cpp locks < 1e-4
// over random frames). The dual tree doubles this per dimension: tree B is
// the one-sample-delayed bank at level 1 and the reversed q-shift filter at
// levels >= 2 (Kingsbury's construction).
#pragma once

#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/image/metrics.h"
#include "src/simd/dispatch.h"

namespace vf::dwt {

enum class Wavelet {
  kLeGall53,   // 5/3 biorthogonal — level-1 default, fits a 5-slot engine
  kCdf97,      // 9/7 biorthogonal — higher-quality level-1 alternative
  kQshift14A,  // Kingsbury q-shift 14-tap, tree A (levels >= 2)
  kQshift14B,  // time-reverse of A, tree B
};

const char* wavelet_name(Wavelet w);

struct FilterBank {
  Wavelet wavelet = Wavelet::kLeGall53;
  // Analysis pair, padded to one shared window of `taps()` samples.
  std::vector<float> lp, hp;
  int analysis_offset = 0;  // E in ext[k] = x[(k - E) mod N]
  // Synthesis pair over the interleaved stream.
  std::vector<float> ca, cb;
  int synthesis_offset = 0;  // S in extu[k] = u[(k - S) mod N]

  int taps() const { return static_cast<int>(lp.size()); }
  int synth_taps() const { return static_cast<int>(ca.size()); }
};

// `delay` shifts the analysis filters by +delay samples (and the synthesis
// filters by -delay) — used to build the level-1 tree-B bank.
FilterBank make_filter_bank(Wavelet w, int delay = 0);

// Coefficient-register depth the modeled FPGA engine needs to run this bank
// (= the analysis window width; see bench_ablation_taps).
int required_slots(const FilterBank& bank);

// --- execution backends -----------------------------------------------------

struct FilterStats {
  long long analysis_macs = 0;
  long long synthesis_macs = 0;
  long long analysis_lines = 0;
  long long synthesis_lines = 0;
  long long total_macs() const { return analysis_macs + synthesis_macs; }
};

// A LineFilter executes one line-sized kernel request at a time — the same
// granularity at which the paper's driver feeds the PL engine. Subclasses
// pick the implementation (scalar / SIMD / fixed-point datapath /
// time-accounted engine models in src/sched).
//
// The interface is split into two halves so host execution can parallelize
// without perturbing modeled time:
//
//   kernels()    pure numeric implementations (a simd::KernelSet). Thread-
//                safe by construction — the transform's parallel paths call
//                them from pool workers.
//   account_*()  modeled-time / statistics bookkeeping: exactly one call per
//                line, in canonical line order, always on the caller thread.
//                Accounting is inherently order-dependent (double-precision
//                ledgers, accelerator double-buffer state, event-queue
//                scheduling), so it is never fanned out; parallel paths run
//                the numerics first and then replay the account_*/barrier()
//                sequence serially — which is why modeled output is
//                bit-identical at any thread count.
//
// The combined entry points (analyze/synthesize/magnitude/select) default to
// kernels() + account_*() and are what the serial path calls; filters whose
// numerics are not expressible as a KernelSet (the fixed-point datapath)
// override them and return splittable() == false so every path stays serial
// and combined.
class LineFilter {
 public:
  virtual ~LineFilter() = default;

  // Data-dependency fence between line batches: lines issued after the
  // barrier read outputs of lines issued before it (row pass -> column
  // pass, level L -> level L+1). Synchronous filters need nothing — the
  // default is a no-op — but pipelined engine models (which overlap
  // consecutive line requests) must not start a dependent input transfer
  // before the producing outputs have landed.
  virtual void barrier() {}

  // --- split half: pure numerics + serial accounting -----------------------
  virtual const simd::KernelSet& kernels() const;  // default: active_kernels()
  virtual void account_analyze(int out_len, int taps) {
    (void)out_len;
    (void)taps;
  }
  virtual void account_synthesize(int pairs, int taps) {
    (void)pairs;
    (void)taps;
  }
  virtual void account_magnitude(int n) { (void)n; }
  virtual void account_select(int n) { (void)n; }

  // False when the combined entry points do more than kernels()+account_*()
  // (fixed-point quantizing datapath); such filters always run serial.
  virtual bool splittable() const { return true; }
  // Host pool for data-parallel numeric work; nullptr = serial execution.
  // Modeled time is unaffected by the pool (see account_* above).
  virtual ThreadPool* pool() const { return nullptr; }

  // --- combined entry points (kernels + accounting) -------------------------
  virtual void analyze(const float* ext, int out_len, const float* lp, const float* hp,
                       int taps, float* lo, float* hi);
  virtual void synthesize(const float* ext, int pairs, const float* ca, const float* cb,
                          int taps, float* out);
  // Fusion-rule kernels; whole-subband requests, chunked over pool().
  virtual void magnitude(const float* re, const float* im, int n, float* mag);
  virtual void select(const float* a_re, const float* a_im, const float* b_re,
                      const float* b_im, const float* mag_a, const float* mag_b, int n,
                      float* out_re, float* out_im);
  // Lowpass-residual averaging. Not time-accounted: the paper folds it into
  // the fusion rule's bookkeeping, and no backend ever charged for it.
  virtual void average(const float* a, const float* b, int n, float* out);
};

// Pure numeric filter over a fixed KernelSet: no accounting, no pool, no
// barriers. The per-worker execution vehicle of the tree-parallel paths in
// forward_dtcwt/inverse_dtcwt (numerics fan out through this; the real
// filter's accounting is replayed serially afterwards).
class KernelLineFilter : public LineFilter {
 public:
  KernelLineFilter() : kernels_(&simd::active_kernels()) {}
  explicit KernelLineFilter(const simd::KernelSet& kernels) : kernels_(&kernels) {}
  const simd::KernelSet& kernels() const override { return *kernels_; }

 private:
  const simd::KernelSet* kernels_;
};

class ScalarLineFilter : public LineFilter {
 public:
  ScalarLineFilter() = default;
  explicit ScalarLineFilter(const HostConfig& host) : pool_(host::pool(host)) {}

  const simd::KernelSet& kernels() const override { return simd::scalar_kernels(); }
  ThreadPool* pool() const override { return pool_; }
  void account_analyze(int out_len, int taps) override {
    stats_.analysis_macs += 2LL * out_len * taps;
    stats_.analysis_lines += 1;
  }
  void account_synthesize(int pairs, int taps) override {
    stats_.synthesis_macs += 2LL * pairs * taps;
    stats_.synthesis_lines += 1;
  }

  void reset_stats() { stats_ = {}; }
  const FilterStats& stats() const { return stats_; }

 private:
  FilterStats stats_;
  ThreadPool* pool_ = nullptr;
};

class SimdLineFilter : public LineFilter {
 public:
  SimdLineFilter() = default;
  explicit SimdLineFilter(const HostConfig& host) : pool_(host::pool(host)) {}

  const simd::KernelSet& kernels() const override { return simd::simd_kernels(); }
  ThreadPool* pool() const override { return pool_; }
  void account_analyze(int out_len, int taps) override {
    stats_.analysis_macs += 2LL * out_len * taps;
    stats_.analysis_lines += 1;
  }
  void account_synthesize(int pairs, int taps) override {
    stats_.synthesis_macs += 2LL * pairs * taps;
    stats_.synthesis_lines += 1;
  }

  void reset_stats() { stats_ = {}; }
  const FilterStats& stats() const { return stats_; }

 private:
  FilterStats stats_;
  ThreadPool* pool_ = nullptr;
};

// --- 1-D line transforms ----------------------------------------------------

// x has n samples (n even); lo/hi receive n/2 each. `scratch` avoids
// reallocating the extension buffer across the thousands of line calls.
void analyze_line(LineFilter& f, const FilterBank& bank, const float* x, int n,
                  float* lo, float* hi, std::vector<float>& scratch);
void synthesize_line(LineFilter& f, const FilterBank& bank, const float* lo,
                     const float* hi, int n, float* y, std::vector<float>& scratch);

// --- 2-D multi-level transform ----------------------------------------------

// Memory layout of the 2-D passes for splittable filters:
//
//   kFused  (default) — the band-streaming execution plan
//           (src/fusion/fused_plan.h): fuse_frames and the timed runners
//           interleave the two frames' transforms band-by-band and consume
//           each band with the magnitude/select rule while it is hot in
//           cache, streaming fused bands straight into inverse synthesis —
//           the second pyramid is never materialized. Standalone
//           forward_tree/forward_dtcwt calls (no frame pair to fuse against)
//           execute the tiled layout below.
//   kTiled  — PR 8's staged path: per-thread arena scratch
//           (src/common/arena.h), run-based periodic extension (memcpy runs
//           instead of a per-sample modulo), and a cache-blocked transpose so
//           the column pass filters contiguous rows through the multi-line
//           kernels (KernelSet::analyze_ml/synthesize_ml, up to
//           simd::kMaxLinesPerCall lines per dispatch).
//   kNaive  — the historical per-line path: stride-W column gathers into
//           std::vector scratch, one kernel dispatch per line.
//
// All layouts feed every line the same extended samples through the same
// per-line kernel flavour and replay the same account_*/barrier() sequence,
// so fused bits and modeled time/energy are bit-identical (locked by
// tests/test_host_parallel.cpp); the toggle exists for the bench_pipeline
// layout sweep and the equivalence tests. Process-wide, like
// set_active_kernels: select at startup, before spawning parallel work.
// Non-splittable filters (the fixed-point datapath) always run the naive
// combined path regardless of this setting.
enum class HostLayout { kFused, kTiled, kNaive };
HostLayout host_layout();
void set_host_layout(HostLayout layout);
const char* host_layout_name(HostLayout layout);

struct TransformConfig {
  int levels = 3;
  Wavelet level1 = Wavelet::kLeGall53;
  Wavelet higher = Wavelet::kQshift14A;  // tree A; tree B is its reverse
};

struct LevelBands {
  image::ImageF lh, hl, hh;  // row-lo/col-hi, row-hi/col-lo, row-hi/col-hh
  int in_rows = 0, in_cols = 0;  // pre-padding input dims (crop on inverse)
};

// One critically sampled wavelet decomposition (one tree of the dual tree,
// or the whole transform for the plain-DWT baseline).
struct TreePyramid {
  std::vector<LevelBands> levels;
  image::ImageF ll;
};

// `row_tree`/`col_tree`: 0 = tree A, 1 = tree B (one-sample level-1 delay +
// reversed q-shift filters at levels >= 2) applied along that dimension.
// When `filter` is splittable and has a pool, the per-row/per-column numeric
// loops fan out over the pool (accounting replayed serially per pass).
TreePyramid forward_tree(const image::ImageF& img, const TransformConfig& config,
                         int row_tree, int col_tree, LineFilter& filter);
image::ImageF inverse_tree(const TreePyramid& pyr, const TransformConfig& config,
                           int row_tree, int col_tree, LineFilter& filter);

// The full 4x-redundant 2-D DT-CWT: trees indexed by (row_tree, col_tree) in
// {A,B}^2, i.e. tree[0]=AA, tree[1]=AB, tree[2]=BA, tree[3]=BB.
struct DtcwtPyramid {
  TreePyramid tree[4];
};

// When `filter` is splittable and has a pool, the four independent trees run
// their numerics in parallel (through KernelLineFilter) and the filter's
// account_*/barrier() sequence is replayed serially in tree order — modeled
// time is bit-identical to the serial path at any thread count.
DtcwtPyramid forward_dtcwt(const image::ImageF& img, const TransformConfig& config,
                           LineFilter& filter);
// Averages the four trees' reconstructions.
image::ImageF inverse_dtcwt(const DtcwtPyramid& pyr, const TransformConfig& config,
                            LineFilter& filter);

// --- shared transform internals ---------------------------------------------
// Used by the band-streaming fused plan (src/fusion/fused_plan.cpp), which
// must produce the exact per-line inputs and the exact account_*/barrier()
// sequence of the staged path above.
namespace detail {

// The bank a given tree applies at a given level (tree B = one-sample delay
// at level 1, reversed q-shift at levels >= 2).
FilterBank bank_for_level(const TransformConfig& config, int level, int tree);

// Run-based periodic extension of one analysis line (ext needs
// n + bank.taps() floats).
void fill_analysis_ext(const FilterBank& bank, const float* x, int n, float* ext);

// Replay one tree's forward / inverse account_*/barrier() sequence for an
// input of the given pre-padding dims — the exact sequence the staged
// forward_tree/inverse_tree emit, derived from shapes alone (accounting
// never reads sample values).
void account_forward_tree(int rows, int cols, const TransformConfig& config,
                          int row_tree, int col_tree, LineFilter& f);
void account_inverse_tree(int rows, int cols, const TransformConfig& config,
                          int row_tree, int col_tree, LineFilter& f);

// Bank-cached variants: identical account/barrier sequences, but taking the
// per-level banks (row_banks[level] / col_banks[level], config.levels each)
// from the caller instead of rebuilding them per tree. The fused plan replays
// twelve tree accountings per frame pair; rebuilding the banks dominated the
// replay cost.
void account_forward_tree(int rows, int cols, const TransformConfig& config,
                          const FilterBank* row_banks,
                          const FilterBank* col_banks, LineFilter& f);
void account_inverse_tree(int rows, int cols, const TransformConfig& config,
                          const FilterBank* row_banks,
                          const FilterBank* col_banks, LineFilter& f);

}  // namespace detail

}  // namespace vf::dwt

#include "src/fusion/laplacian.h"

#include <cmath>
#include <vector>

namespace vf::fusion {

namespace {

using image::ImageF;

// 5-tap binomial kernel [1 4 6 4 1]/16 with clamped borders.
const float kKernel[5] = {1.0f / 16, 4.0f / 16, 6.0f / 16, 4.0f / 16, 1.0f / 16};

ImageF blur(const ImageF& img) {
  const int rows = img.rows();
  const int cols = img.cols();
  ImageF tmp(rows, cols);
  auto clampi = [](int v, int hi) { return v < 0 ? 0 : (v > hi ? hi : v); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      float acc = 0.0f;
      for (int t = -2; t <= 2; ++t) {
        acc += kKernel[t + 2] * img(r, clampi(c + t, cols - 1));
      }
      tmp(r, c) = acc;
    }
  }
  ImageF out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      float acc = 0.0f;
      for (int t = -2; t <= 2; ++t) {
        acc += kKernel[t + 2] * tmp(clampi(r + t, rows - 1), c);
      }
      out(r, c) = acc;
    }
  }
  return out;
}

ImageF pyr_down(const ImageF& img) {
  const ImageF smooth = blur(img);
  ImageF out((img.rows() + 1) / 2, (img.cols() + 1) / 2);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out(r, c) = smooth(2 * r, 2 * c);
    }
  }
  return out;
}

// Upsamples to exactly (rows, cols): zero-stuff, blur, scale by 4 to restore
// the DC gain lost to the inserted zeros.
ImageF pyr_up(const ImageF& img, int rows, int cols) {
  ImageF stuffed(rows, cols, 0.0f);
  for (int r = 0; r < img.rows(); ++r) {
    for (int c = 0; c < img.cols(); ++c) {
      if (2 * r < rows && 2 * c < cols) stuffed(2 * r, 2 * c) = img(r, c);
    }
  }
  ImageF out = blur(stuffed);
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= 4.0f;
  return out;
}

struct Pyramid {
  std::vector<ImageF> detail;  // Laplacian levels, fine to coarse
  ImageF base;
};

Pyramid build(const ImageF& img, int levels) {
  Pyramid pyr;
  ImageF current = img;
  for (int lv = 0; lv < levels; ++lv) {
    ImageF down = pyr_down(current);
    ImageF up = pyr_up(down, current.rows(), current.cols());
    ImageF detail(current.rows(), current.cols());
    for (std::size_t i = 0; i < detail.size(); ++i) {
      detail.data()[i] = current.data()[i] - up.data()[i];
    }
    pyr.detail.push_back(std::move(detail));
    current = std::move(down);
  }
  pyr.base = std::move(current);
  return pyr;
}

ImageF collapse(const Pyramid& pyr) {
  ImageF current = pyr.base;
  for (int lv = static_cast<int>(pyr.detail.size()) - 1; lv >= 0; --lv) {
    const ImageF& detail = pyr.detail[lv];
    ImageF up = pyr_up(current, detail.rows(), detail.cols());
    for (std::size_t i = 0; i < up.size(); ++i) up.data()[i] += detail.data()[i];
    current = std::move(up);
  }
  return current;
}

}  // namespace

image::ImageF fuse_frames_laplacian(const image::ImageF& a, const image::ImageF& b,
                                    const LaplacianFuseConfig& config) {
  const Pyramid pa = build(a, config.levels);
  const Pyramid pb = build(b, config.levels);
  Pyramid fused;
  for (std::size_t lv = 0; lv < pa.detail.size(); ++lv) {
    const ImageF& da = pa.detail[lv];
    const ImageF& db = pb.detail[lv];
    ImageF out(da.rows(), da.cols());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = std::fabs(da.data()[i]) >= std::fabs(db.data()[i])
                          ? da.data()[i]
                          : db.data()[i];
    }
    fused.detail.push_back(std::move(out));
  }
  fused.base = ImageF(pa.base.rows(), pa.base.cols());
  for (std::size_t i = 0; i < fused.base.size(); ++i) {
    fused.base.data()[i] = 0.5f * (pa.base.data()[i] + pb.base.data()[i]);
  }
  return collapse(fused);
}

}  // namespace vf::fusion

#include "src/fusion/dwt_fusion.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/arena.h"
#include "src/simd/kernels.h"

namespace vf::dwt {

namespace {

// A convolution filter with explicit support: coefficient of z^-n is
// coeffs[n - first] for n in [first, first + size - 1].
struct ConvFilter {
  std::vector<double> coeffs;
  int first = 0;
  int last() const { return first + static_cast<int>(coeffs.size()) - 1; }
  double at(int n) const {
    const int i = n - first;
    return (i >= 0 && i < static_cast<int>(coeffs.size())) ? coeffs[i] : 0.0;
  }
};

struct Prototype {
  ConvFilter h0;      // analysis lowpass
  ConvFilter g0;      // synthesis lowpass (already gain-normalized so that
                      // G0(1)H0(1) + G0(-1)H0(-1) = 2)
  int quadrature_k;   // odd shift in H1(z) = z^-k G0(-z), G1(z) = z^k H0(-z)
};

// Kingsbury q-shift 14-tap orthonormal lowpass (tree A), DC gain sqrt(2).
const double kQshift14[14] = {
    0.00325314, -0.00388321, 0.03466035, -0.03887280, -0.11720389,
    0.27529538, 0.75614564,  0.56881042, 0.01186609,  -0.10671180,
    0.02382538, 0.01702522,  -0.00543948, -0.00455690};

Prototype make_prototype(Wavelet w) {
  Prototype p;
  switch (w) {
    case Wavelet::kLeGall53:
      p.h0 = {{-0.125, 0.25, 0.75, 0.25, -0.125}, -2};
      p.g0 = {{0.5, 1.0, 0.5}, -1};
      p.quadrature_k = 1;
      return p;
    case Wavelet::kCdf97:
      p.h0 = {{0.026748757411, -0.016864118443, -0.078223266529, 0.266864118443,
               0.602949018236, 0.266864118443, -0.078223266529, -0.016864118443,
               0.026748757411},
              -4};
      // Standard CDF 9/7 synthesis lowpass, scaled by 2 for the PR gain
      // convention used here.
      p.g0 = {{2 * -0.045635881557, 2 * -0.028771763114, 2 * 0.295635881557,
               2 * 0.557543526229, 2 * 0.295635881557, 2 * -0.028771763114,
               2 * -0.045635881557},
              -3};
      p.quadrature_k = 1;
      return p;
    case Wavelet::kQshift14A:
    case Wavelet::kQshift14B: {
      ConvFilter h0;
      h0.first = -7;
      h0.coeffs.assign(kQshift14, kQshift14 + 14);
      if (w == Wavelet::kQshift14B) {
        // Tree B is the time reverse of tree A: b[n] = a[-1-n].
        std::vector<double> rev(14);
        for (int i = 0; i < 14; ++i) rev[i] = h0.coeffs[13 - i];
        h0.coeffs = rev;
      }
      p.h0 = h0;
      // Orthonormal: G0(z) = H0(1/z).
      ConvFilter g0;
      g0.first = -p.h0.last();
      g0.coeffs.assign(14, 0.0);
      for (int n = p.h0.first; n <= p.h0.last(); ++n) {
        g0.coeffs[-n - g0.first] = p.h0.at(n);
      }
      p.g0 = g0;
      // k = -1 keeps the quadrature filters inside the same 14-tap window.
      p.quadrature_k = -1;
      return p;
    }
  }
  return p;
}

}  // namespace

const char* wavelet_name(Wavelet w) {
  switch (w) {
    case Wavelet::kLeGall53:
      return "LeGall 5/3";
    case Wavelet::kCdf97:
      return "CDF 9/7";
    case Wavelet::kQshift14A:
      return "q-shift 14 (A)";
    case Wavelet::kQshift14B:
      return "q-shift 14 (B)";
  }
  return "?";
}

FilterBank make_filter_bank(Wavelet w, int delay) {
  Prototype p = make_prototype(w);
  const int k = p.quadrature_k;

  // H1(z) = z^-k G0(-z):  h1[n] = (-1)^(n-k) g0[n-k]
  ConvFilter h1;
  h1.first = p.g0.first + k;
  h1.coeffs.resize(p.g0.coeffs.size());
  for (int n = h1.first; n <= h1.last(); ++n) {
    const int parity = ((n - k) % 2 + 2) % 2;
    h1.coeffs[n - h1.first] = (parity ? -1.0 : 1.0) * p.g0.at(n - k);
  }
  // G1(z) = z^k H0(-z):  g1[n] = (-1)^(n+k) h0[n+k]
  ConvFilter g1;
  g1.first = p.h0.first - k;
  g1.coeffs.resize(p.h0.coeffs.size());
  for (int n = g1.first; n <= g1.last(); ++n) {
    const int parity = ((n + k) % 2 + 2) % 2;
    g1.coeffs[n - g1.first] = (parity ? -1.0 : 1.0) * p.h0.at(n + k);
  }

  // Tree delay: analysis filters gain z^-delay, synthesis filters z^+delay,
  // keeping the product (and thus PR) unchanged.
  ConvFilter h0 = p.h0;
  ConvFilter g0 = p.g0;
  h0.first += delay;
  h1.first += delay;
  g0.first -= delay;
  g1.first -= delay;

  FilterBank bank;
  bank.wavelet = w;

  // Analysis window: lp[t] = h0[E - t], hp[t] = h1[E - t].
  const int e = std::max(h0.last(), h1.last());
  const int nmin = std::min(h0.first, h1.first);
  const int taps = e - nmin + 1;
  bank.analysis_offset = e;
  bank.lp.assign(taps, 0.0f);
  bank.hp.assign(taps, 0.0f);
  for (int t = 0; t < taps; ++t) {
    bank.lp[t] = static_cast<float>(h0.at(e - t));
    bank.hp[t] = static_cast<float>(h1.at(e - t));
  }

  // Synthesis over the interleaved stream. From
  //   y[2m]   = sum_j u[2m-2j] g0[2j]   + u[2m-2j+1] g1[2j]
  //   y[2m+1] = sum_j u[2m-2j] g0[2j+1] + u[2m-2j+1] g1[2j+1]
  // the kernel arrays are (S = max filter end):
  //   g0[n] even -> ca[S-n]      g0[n] odd -> cb[S-n+1]
  //   g1[n] even -> ca[S-n+1]    g1[n] odd -> cb[S-n+2]
  const int s = std::max(g0.last(), g1.last());
  const int smin = std::min(g0.first, g1.first);
  const int width = s - smin + 3;
  bank.synthesis_offset = s;
  bank.ca.assign(width, 0.0f);
  bank.cb.assign(width, 0.0f);
  for (int n = g0.first; n <= g0.last(); ++n) {
    const bool even = ((n % 2) + 2) % 2 == 0;
    if (even) {
      bank.ca[s - n] += static_cast<float>(g0.at(n));
    } else {
      bank.cb[s - n + 1] += static_cast<float>(g0.at(n));
    }
  }
  for (int n = g1.first; n <= g1.last(); ++n) {
    const bool even = ((n % 2) + 2) % 2 == 0;
    if (even) {
      bank.ca[s - n + 1] += static_cast<float>(g1.at(n));
    } else {
      bank.cb[s - n + 2] += static_cast<float>(g1.at(n));
    }
  }
  return bank;
}

int required_slots(const FilterBank& bank) { return bank.taps(); }

// --- LineFilter implementations ---------------------------------------------

const simd::KernelSet& LineFilter::kernels() const { return simd::active_kernels(); }

void LineFilter::analyze(const float* ext, int out_len, const float* lp,
                         const float* hp, int taps, float* lo, float* hi) {
  kernels().analyze(ext, out_len, lp, hp, taps, lo, hi);
  account_analyze(out_len, taps);
}

void LineFilter::synthesize(const float* ext, int pairs, const float* ca,
                            const float* cb, int taps, float* out) {
  kernels().synthesize(ext, pairs, ca, cb, taps, out);
  account_synthesize(pairs, taps);
}

// The three fusion-rule kernels are elementwise, so chunking over the pool
// cannot change any output bit: every flavour computes element i identically
// whether it lands in a vector body or a scalar tail. The single account_*
// call stays on the caller thread either way.
void LineFilter::magnitude(const float* re, const float* im, int n, float* mag) {
  const simd::KernelSet& k = kernels();
  ThreadPool* p = splittable() ? pool() : nullptr;
  if (p != nullptr) {
    parallel_chunks(p, 0, n,
                    [&](int b, int e) { k.magnitude(re + b, im + b, e - b, mag + b); });
  } else {
    k.magnitude(re, im, n, mag);
  }
  account_magnitude(n);
}

void LineFilter::select(const float* a_re, const float* a_im, const float* b_re,
                        const float* b_im, const float* mag_a, const float* mag_b,
                        int n, float* out_re, float* out_im) {
  const simd::KernelSet& k = kernels();
  ThreadPool* p = splittable() ? pool() : nullptr;
  if (p != nullptr) {
    parallel_chunks(p, 0, n, [&](int b, int e) {
      k.select(a_re + b, a_im + b, b_re + b, b_im + b, mag_a + b, mag_b + b, e - b,
               out_re + b, out_im + b);
    });
  } else {
    k.select(a_re, a_im, b_re, b_im, mag_a, mag_b, n, out_re, out_im);
  }
  account_select(n);
}

void LineFilter::average(const float* a, const float* b, int n, float* out) {
  const simd::KernelSet& k = kernels();
  ThreadPool* p = splittable() ? pool() : nullptr;
  if (p != nullptr) {
    parallel_chunks(p, 0, n,
                    [&](int b0, int e) { k.average(a + b0, b + b0, e - b0, out + b0); });
  } else {
    k.average(a, b, n, out);
  }
}

// --- 1-D line transforms ----------------------------------------------------

namespace {

inline int wrap(int k, int n) {
  k %= n;
  return k < 0 ? k + n : k;
}

// Periodic extension for one analysis line; returns scratch.data().
const float* extend_analysis(const FilterBank& bank, const float* x, int n,
                             std::vector<float>& scratch) {
  const int ext_len = n + bank.taps();
  if (static_cast<int>(scratch.size()) < ext_len) scratch.resize(ext_len);
  for (int k = 0; k < ext_len; ++k) {
    scratch[k] = x[wrap(k - bank.analysis_offset, n)];
  }
  return scratch.data();
}

// Periodic extension of the interleaved lo/hi stream for one synthesis line.
const float* extend_synthesis(const FilterBank& bank, const float* lo,
                              const float* hi, int n, std::vector<float>& scratch) {
  const int ext_len = n + bank.synth_taps();
  if (static_cast<int>(scratch.size()) < ext_len) scratch.resize(ext_len);
  for (int k = 0; k < ext_len; ++k) {
    const int src = wrap(k - bank.synthesis_offset, n);
    scratch[k] = (src & 1) ? hi[src / 2] : lo[src / 2];
  }
  return scratch.data();
}

// Run-based forms of the two extensions for the tiled path: same values as
// extend_analysis/extend_synthesis (ext[k] = x[(k - offset) mod n]), but the
// analysis fill is a handful of memcpy runs instead of a per-sample modulo,
// and the synthesis fill keeps the wrap as an increment-and-reset counter.
// On the 5..16-tap banks the extension is rebuilt once per line, so this is
// one of the three host hot spots (with the column stride and the per-line
// dispatch).
void fill_synthesis_ext(const FilterBank& bank, const float* lo, const float* hi,
                        int n, float* ext) {
  const int ext_len = n + bank.synth_taps();
  int src = wrap(-bank.synthesis_offset, n);
  for (int k = 0; k < ext_len; ++k) {
    ext[k] = (src & 1) ? hi[src >> 1] : lo[src >> 1];
    if (++src == n) src = 0;
  }
}

}  // namespace

void detail::fill_analysis_ext(const FilterBank& bank, const float* x, int n,
                               float* ext) {
  const int ext_len = n + bank.taps();
  int src = wrap(-bank.analysis_offset, n);
  int k = 0;
  while (k < ext_len) {
    const int run = std::min(n - src, ext_len - k);
    std::memcpy(ext + k, x + src, static_cast<std::size_t>(run) * sizeof(float));
    k += run;
    src = 0;
  }
}

void analyze_line(LineFilter& f, const FilterBank& bank, const float* x, int n,
                  float* lo, float* hi, std::vector<float>& scratch) {
  assert(n % 2 == 0);
  const float* ext = extend_analysis(bank, x, n, scratch);
  f.analyze(ext, n / 2, bank.lp.data(), bank.hp.data(), bank.taps(), lo, hi);
}

void synthesize_line(LineFilter& f, const FilterBank& bank, const float* lo,
                     const float* hi, int n, float* y, std::vector<float>& scratch) {
  assert(n % 2 == 0);
  const float* ext = extend_synthesis(bank, lo, hi, n, scratch);
  f.synthesize(ext, n / 2, bank.ca.data(), bank.cb.data(), bank.synth_taps(), y);
}

// --- 2-D transform ----------------------------------------------------------

namespace {
HostLayout g_host_layout = HostLayout::kFused;
}  // namespace

HostLayout host_layout() { return g_host_layout; }
void set_host_layout(HostLayout layout) { g_host_layout = layout; }
const char* host_layout_name(HostLayout layout) {
  switch (layout) {
    case HostLayout::kFused:
      return "fused";
    case HostLayout::kTiled:
      return "tiled";
    case HostLayout::kNaive:
      return "naive";
  }
  return "?";
}

namespace {

using detail::fill_analysis_ext;
using image::ImageF;

// Lines per multi-line kernel dispatch, and the alignment that keeps every
// arena-resident extension line on its own 64-byte boundary.
constexpr int kLineBlock = simd::kMaxLinesPerCall;
inline int align16(int n) { return (n + 15) & ~15; }

// Pads to even dimensions by replicating the last row/column. Callers must
// check needs_padding() first; this always allocates.
bool needs_padding(const ImageF& img) {
  return ((img.rows() | img.cols()) & 1) != 0;
}

ImageF pad_even(const ImageF& img) {
  const int rp = img.rows() + (img.rows() & 1);
  const int cp = img.cols() + (img.cols() & 1);
  ImageF out(rp, cp);
  for (int r = 0; r < rp; ++r) {
    const int sr = r < img.rows() ? r : img.rows() - 1;
    for (int c = 0; c < cp; ++c) {
      const int sc = c < img.cols() ? c : img.cols() - 1;
      out(r, c) = img(sr, sc);
    }
  }
  return out;
}

struct LevelOut {
  ImageF ll, lh, hl, hh;
};

// Cache-aware analysis level for splittable filters (HostLayout::kTiled).
//
// Memory story: every intermediate lives in the per-thread arena. The row
// pass filters blocks of kLineBlock contiguous rows through analyze_ml; the
// column pass transposes the row outputs once (8x8 blocked, simd::
// transpose_f32) so each column is a contiguous line, filters blocks of
// columns through the same multi-line kernel, and transposes the four
// subband planes back. Per line the extended samples and the kernel flavour
// are exactly the naive path's, and the account_*/barrier() replay below is
// the same canonical sequence, so every output bit — fused image, modeled
// time, energy — matches HostLayout::kNaive (tests/test_host_parallel.cpp).
LevelOut analyze_level_tiled(const ImageF& padded, const FilterBank& row_bank,
                             const FilterBank& col_bank, LineFilter& f) {
  ThreadPool* pool = f.pool();
  const simd::KernelSet& k = f.kernels();
  const int rp = padded.rows();
  const int cp = padded.cols();
  const int hr = rp / 2;
  const int hc = cp / 2;
  const std::size_t plane = static_cast<std::size_t>(rp) * hc;

  // Caller-thread scope: planes shared across pool chunks. Worker-local
  // extension scratch comes from each worker's own arena inside the lambdas.
  ArenaScope planes;
  float* rowlo = planes.alloc(plane);
  float* rowhi = planes.alloc(plane);

  const int row_ext_stride = align16(cp + row_bank.taps());
  auto row_block = [&](int r0, int r1) {
    ArenaScope scratch;
    float* ext = scratch.alloc(static_cast<std::size_t>(kLineBlock) * row_ext_stride);
    for (int r = r0; r < r1; r += kLineBlock) {
      const int nb = std::min(kLineBlock, r1 - r);
      for (int l = 0; l < nb; ++l) {
        fill_analysis_ext(row_bank, padded.row(r + l), cp, ext + l * row_ext_stride);
      }
      k.analyze_ml(ext, row_ext_stride, nb, hc, row_bank.lp.data(),
                   row_bank.hp.data(), row_bank.taps(),
                   rowlo + static_cast<std::size_t>(r) * hc,
                   rowhi + static_cast<std::size_t>(r) * hc, hc);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, rp, row_block);
  } else {
    row_block(0, rp);
  }
  for (int r = 0; r < rp; ++r) f.account_analyze(hc, row_bank.taps());
  f.barrier();  // the column pass reads the row pass's outputs

  float* tlo = planes.alloc(plane);
  float* thi = planes.alloc(plane);
  simd::transpose_f32(rowlo, rp, hc, hc, tlo, rp);
  simd::transpose_f32(rowhi, rp, hc, hc, thi, rp);
  const std::size_t half_plane = static_cast<std::size_t>(hr) * hc;
  float* tll = planes.alloc(half_plane);
  float* tlh = planes.alloc(half_plane);
  float* thl = planes.alloc(half_plane);
  float* thh = planes.alloc(half_plane);
  const int col_ext_stride = align16(rp + col_bank.taps());
  auto col_block = [&](int c0, int c1) {
    ArenaScope scratch;
    float* ext = scratch.alloc(static_cast<std::size_t>(kLineBlock) * col_ext_stride);
    for (int c = c0; c < c1; c += kLineBlock) {
      const int nb = std::min(kLineBlock, c1 - c);
      for (int l = 0; l < nb; ++l) {
        fill_analysis_ext(col_bank, tlo + static_cast<std::size_t>(c + l) * rp, rp,
                          ext + l * col_ext_stride);
      }
      k.analyze_ml(ext, col_ext_stride, nb, hr, col_bank.lp.data(),
                   col_bank.hp.data(), col_bank.taps(),
                   tll + static_cast<std::size_t>(c) * hr,
                   tlh + static_cast<std::size_t>(c) * hr, hr);
      for (int l = 0; l < nb; ++l) {
        fill_analysis_ext(col_bank, thi + static_cast<std::size_t>(c + l) * rp, rp,
                          ext + l * col_ext_stride);
      }
      k.analyze_ml(ext, col_ext_stride, nb, hr, col_bank.lp.data(),
                   col_bank.hp.data(), col_bank.taps(),
                   thl + static_cast<std::size_t>(c) * hr,
                   thh + static_cast<std::size_t>(c) * hr, hr);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, hc, col_block);
  } else {
    col_block(0, hc);
  }
  for (int c = 0; c < hc; ++c) {
    f.account_analyze(hr, col_bank.taps());
    f.account_analyze(hr, col_bank.taps());
  }
  LevelOut out;
  out.ll = ImageF(hr, hc);
  out.lh = ImageF(hr, hc);
  out.hl = ImageF(hr, hc);
  out.hh = ImageF(hr, hc);
  simd::transpose_f32(tll, hc, hr, hr, out.ll.data(), hc);
  simd::transpose_f32(tlh, hc, hr, hr, out.lh.data(), hc);
  simd::transpose_f32(thl, hc, hr, hr, out.hl.data(), hc);
  simd::transpose_f32(thh, hc, hr, hr, out.hh.data(), hc);
  f.barrier();  // the next level (or consumer) reads this level's outputs
  return out;
}

// One separable analysis level: rows with `row_bank`, columns with `col_bank`.
//
// The parallel path fans the numeric line loops out over the filter's pool
// (rows, then columns — lines within a pass are independent) and then runs
// the accounting loop serially in the same canonical order the serial path
// interleaves it. Barrier positions are identical in both paths: the modeled
// engine sees the exact same request sequence either way.
LevelOut analyze_level(const ImageF& padded, const FilterBank& row_bank,
                       const FilterBank& col_bank, LineFilter& f,
                       std::vector<float>& scratch) {
  // kFused steers the frame-pair entry points (fuse_frames, the timed
  // runners) into the band-streaming plan before they reach these standalone
  // per-tree passes; a transform invoked outside a fusion pair under kFused
  // still deserves the cache-aware layout, so only kNaive opts out here.
  if (f.splittable() && g_host_layout != HostLayout::kNaive) {
    return analyze_level_tiled(padded, row_bank, col_bank, f);
  }
  ThreadPool* pool = f.splittable() ? f.pool() : nullptr;
  const int rp = padded.rows();
  const int cp = padded.cols();
  ImageF rowlo(rp, cp / 2), rowhi(rp, cp / 2);
  if (pool != nullptr) {
    const simd::KernelSet& k = f.kernels();
    pool->parallel_for(0, rp, [&](int r0, int r1) {
      std::vector<float> local;
      for (int r = r0; r < r1; ++r) {
        const float* ext = extend_analysis(row_bank, padded.row(r), cp, local);
        k.analyze(ext, cp / 2, row_bank.lp.data(), row_bank.hp.data(),
                  row_bank.taps(), rowlo.row(r), rowhi.row(r));
      }
    });
    for (int r = 0; r < rp; ++r) f.account_analyze(cp / 2, row_bank.taps());
  } else {
    for (int r = 0; r < rp; ++r) {
      analyze_line(f, row_bank, padded.row(r), cp, rowlo.row(r), rowhi.row(r),
                   scratch);
    }
  }
  f.barrier();  // the column pass reads the row pass's outputs
  LevelOut out;
  out.ll = ImageF(rp / 2, cp / 2);
  out.lh = ImageF(rp / 2, cp / 2);
  out.hl = ImageF(rp / 2, cp / 2);
  out.hh = ImageF(rp / 2, cp / 2);
  if (pool != nullptr) {
    const simd::KernelSet& k = f.kernels();
    pool->parallel_for(0, cp / 2, [&](int c0, int c1) {
      std::vector<float> local, col(rp), lo(rp / 2), hi(rp / 2);
      for (int c = c0; c < c1; ++c) {
        for (int r = 0; r < rp; ++r) col[r] = rowlo(r, c);
        const float* ext = extend_analysis(col_bank, col.data(), rp, local);
        k.analyze(ext, rp / 2, col_bank.lp.data(), col_bank.hp.data(),
                  col_bank.taps(), lo.data(), hi.data());
        for (int r = 0; r < rp / 2; ++r) {
          out.ll(r, c) = lo[r];
          out.lh(r, c) = hi[r];
        }
        for (int r = 0; r < rp; ++r) col[r] = rowhi(r, c);
        ext = extend_analysis(col_bank, col.data(), rp, local);
        k.analyze(ext, rp / 2, col_bank.lp.data(), col_bank.hp.data(),
                  col_bank.taps(), lo.data(), hi.data());
        for (int r = 0; r < rp / 2; ++r) {
          out.hl(r, c) = lo[r];
          out.hh(r, c) = hi[r];
        }
      }
    });
    for (int c = 0; c < cp / 2; ++c) {
      f.account_analyze(rp / 2, col_bank.taps());
      f.account_analyze(rp / 2, col_bank.taps());
    }
  } else {
    std::vector<float> col(rp), lo(rp / 2), hi(rp / 2);
    for (int c = 0; c < cp / 2; ++c) {
      for (int r = 0; r < rp; ++r) col[r] = rowlo(r, c);
      analyze_line(f, col_bank, col.data(), rp, lo.data(), hi.data(), scratch);
      for (int r = 0; r < rp / 2; ++r) {
        out.ll(r, c) = lo[r];
        out.lh(r, c) = hi[r];
      }
      for (int r = 0; r < rp; ++r) col[r] = rowhi(r, c);
      analyze_line(f, col_bank, col.data(), rp, lo.data(), hi.data(), scratch);
      for (int r = 0; r < rp / 2; ++r) {
        out.hl(r, c) = lo[r];
        out.hh(r, c) = hi[r];
      }
    }
  }
  f.barrier();  // the next level (or consumer) reads this level's outputs
  return out;
}

// Cache-aware synthesis level (HostLayout::kTiled): mirror of
// analyze_level_tiled. The four subband planes are transposed once so the
// column-pass lo/hi inputs are contiguous rows, blocks of columns run
// through synthesize_ml into a transposed intermediate, and one transpose
// back feeds the row pass. Same per-line samples, kernel flavour, and
// account/barrier sequence as the naive path.
ImageF synthesize_level_tiled(const ImageF& ll, const LevelBands& bands,
                              const FilterBank& row_bank, const FilterBank& col_bank,
                              LineFilter& f) {
  ThreadPool* pool = f.pool();
  const simd::KernelSet& k = f.kernels();
  const int rp2 = ll.rows();
  const int cp2 = ll.cols();
  const int rp = rp2 * 2;
  const int cp = cp2 * 2;
  const std::size_t sub_plane = static_cast<std::size_t>(rp2) * cp2;
  const std::size_t half_plane = static_cast<std::size_t>(rp) * cp2;

  ArenaScope planes;
  float* tll = planes.alloc(sub_plane);
  float* tlh = planes.alloc(sub_plane);
  float* thl = planes.alloc(sub_plane);
  float* thh = planes.alloc(sub_plane);
  simd::transpose_f32(ll.data(), rp2, cp2, cp2, tll, rp2);
  simd::transpose_f32(bands.lh.data(), rp2, cp2, cp2, tlh, rp2);
  simd::transpose_f32(bands.hl.data(), rp2, cp2, cp2, thl, rp2);
  simd::transpose_f32(bands.hh.data(), rp2, cp2, cp2, thh, rp2);
  float* trowlo = planes.alloc(half_plane);  // cp2 x rp, columns as rows
  float* trowhi = planes.alloc(half_plane);
  const int col_ext_stride = align16(rp + col_bank.synth_taps());
  auto col_block = [&](int c0, int c1) {
    ArenaScope scratch;
    float* ext = scratch.alloc(static_cast<std::size_t>(kLineBlock) * col_ext_stride);
    for (int c = c0; c < c1; c += kLineBlock) {
      const int nb = std::min(kLineBlock, c1 - c);
      for (int l = 0; l < nb; ++l) {
        fill_synthesis_ext(col_bank, tll + static_cast<std::size_t>(c + l) * rp2,
                           tlh + static_cast<std::size_t>(c + l) * rp2, rp,
                           ext + l * col_ext_stride);
      }
      k.synthesize_ml(ext, col_ext_stride, nb, rp / 2, col_bank.ca.data(),
                      col_bank.cb.data(), col_bank.synth_taps(),
                      trowlo + static_cast<std::size_t>(c) * rp, rp);
      for (int l = 0; l < nb; ++l) {
        fill_synthesis_ext(col_bank, thl + static_cast<std::size_t>(c + l) * rp2,
                           thh + static_cast<std::size_t>(c + l) * rp2, rp,
                           ext + l * col_ext_stride);
      }
      k.synthesize_ml(ext, col_ext_stride, nb, rp / 2, col_bank.ca.data(),
                      col_bank.cb.data(), col_bank.synth_taps(),
                      trowhi + static_cast<std::size_t>(c) * rp, rp);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, cp2, col_block);
  } else {
    col_block(0, cp2);
  }
  for (int c = 0; c < cp2; ++c) {
    f.account_synthesize(rp / 2, col_bank.synth_taps());
    f.account_synthesize(rp / 2, col_bank.synth_taps());
  }
  f.barrier();  // the row pass reads the column pass's outputs

  float* rowlo = planes.alloc(half_plane);  // rp x cp2
  float* rowhi = planes.alloc(half_plane);
  simd::transpose_f32(trowlo, cp2, rp, rp, rowlo, cp2);
  simd::transpose_f32(trowhi, cp2, rp, rp, rowhi, cp2);
  ImageF padded(rp, cp);
  const int row_ext_stride = align16(cp + row_bank.synth_taps());
  auto row_block = [&](int r0, int r1) {
    ArenaScope scratch;
    float* ext = scratch.alloc(static_cast<std::size_t>(kLineBlock) * row_ext_stride);
    for (int r = r0; r < r1; r += kLineBlock) {
      const int nb = std::min(kLineBlock, r1 - r);
      for (int l = 0; l < nb; ++l) {
        fill_synthesis_ext(row_bank, rowlo + static_cast<std::size_t>(r + l) * cp2,
                           rowhi + static_cast<std::size_t>(r + l) * cp2, cp,
                           ext + l * row_ext_stride);
      }
      k.synthesize_ml(ext, row_ext_stride, nb, cp / 2, row_bank.ca.data(),
                      row_bank.cb.data(), row_bank.synth_taps(), padded.row(r), cp);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, rp, row_block);
  } else {
    row_block(0, rp);
  }
  for (int r = 0; r < rp; ++r) {
    f.account_synthesize(cp / 2, row_bank.synth_taps());
  }
  f.barrier();  // the next (shallower) level reads this reconstruction
  if (bands.in_rows == rp && bands.in_cols == cp) return padded;
  ImageF out(bands.in_rows, bands.in_cols);
  for (int r = 0; r < bands.in_rows; ++r) {
    std::memcpy(out.row(r), padded.row(r),
                static_cast<std::size_t>(bands.in_cols) * sizeof(float));
  }
  return out;
}

// Inverse of analyze_level; returns the padded-size image.
ImageF synthesize_level(const ImageF& ll, const LevelBands& bands,
                        const FilterBank& row_bank, const FilterBank& col_bank,
                        LineFilter& f, std::vector<float>& scratch) {
  // kFused steers the frame-pair entry points (fuse_frames, the timed
  // runners) into the band-streaming plan before they reach these standalone
  // per-tree passes; a transform invoked outside a fusion pair under kFused
  // still deserves the cache-aware layout, so only kNaive opts out here.
  if (f.splittable() && g_host_layout != HostLayout::kNaive) {
    return synthesize_level_tiled(ll, bands, row_bank, col_bank, f);
  }
  ThreadPool* pool = f.splittable() ? f.pool() : nullptr;
  const int rp2 = ll.rows();
  const int cp2 = ll.cols();
  const int rp = rp2 * 2;
  ImageF rowlo(rp, cp2), rowhi(rp, cp2);
  if (pool != nullptr) {
    const simd::KernelSet& k = f.kernels();
    pool->parallel_for(0, cp2, [&](int c0, int c1) {
      std::vector<float> local, lo(rp2), hi(rp2), col(rp);
      for (int c = c0; c < c1; ++c) {
        for (int r = 0; r < rp2; ++r) {
          lo[r] = ll(r, c);
          hi[r] = bands.lh(r, c);
        }
        const float* ext = extend_synthesis(col_bank, lo.data(), hi.data(), rp, local);
        k.synthesize(ext, rp / 2, col_bank.ca.data(), col_bank.cb.data(),
                     col_bank.synth_taps(), col.data());
        for (int r = 0; r < rp; ++r) rowlo(r, c) = col[r];
        for (int r = 0; r < rp2; ++r) {
          lo[r] = bands.hl(r, c);
          hi[r] = bands.hh(r, c);
        }
        ext = extend_synthesis(col_bank, lo.data(), hi.data(), rp, local);
        k.synthesize(ext, rp / 2, col_bank.ca.data(), col_bank.cb.data(),
                     col_bank.synth_taps(), col.data());
        for (int r = 0; r < rp; ++r) rowhi(r, c) = col[r];
      }
    });
    for (int c = 0; c < cp2; ++c) {
      f.account_synthesize(rp / 2, col_bank.synth_taps());
      f.account_synthesize(rp / 2, col_bank.synth_taps());
    }
  } else {
    std::vector<float> lo(rp2), hi(rp2), col(rp);
    for (int c = 0; c < cp2; ++c) {
      for (int r = 0; r < rp2; ++r) {
        lo[r] = ll(r, c);
        hi[r] = bands.lh(r, c);
      }
      synthesize_line(f, col_bank, lo.data(), hi.data(), rp, col.data(), scratch);
      for (int r = 0; r < rp; ++r) rowlo(r, c) = col[r];
      for (int r = 0; r < rp2; ++r) {
        lo[r] = bands.hl(r, c);
        hi[r] = bands.hh(r, c);
      }
      synthesize_line(f, col_bank, lo.data(), hi.data(), rp, col.data(), scratch);
      for (int r = 0; r < rp; ++r) rowhi(r, c) = col[r];
    }
  }
  f.barrier();  // the row pass reads the column pass's outputs
  const int cp = cp2 * 2;
  ImageF padded(rp, cp);
  if (pool != nullptr) {
    const simd::KernelSet& k = f.kernels();
    pool->parallel_for(0, rp, [&](int r0, int r1) {
      std::vector<float> local;
      for (int r = r0; r < r1; ++r) {
        const float* ext =
            extend_synthesis(row_bank, rowlo.row(r), rowhi.row(r), cp, local);
        k.synthesize(ext, cp / 2, row_bank.ca.data(), row_bank.cb.data(),
                     row_bank.synth_taps(), padded.row(r));
      }
    });
    for (int r = 0; r < rp; ++r) {
      f.account_synthesize(cp / 2, row_bank.synth_taps());
    }
  } else {
    for (int r = 0; r < rp; ++r) {
      synthesize_line(f, row_bank, rowlo.row(r), rowhi.row(r), cp, padded.row(r),
                      scratch);
    }
  }
  f.barrier();  // the next (shallower) level reads this reconstruction
  // Crop back to the pre-padding size of this level.
  if (bands.in_rows == rp && bands.in_cols == cp) return padded;
  ImageF out(bands.in_rows, bands.in_cols);
  for (int r = 0; r < bands.in_rows; ++r) {
    for (int c = 0; c < bands.in_cols; ++c) out(r, c) = padded(r, c);
  }
  return out;
}

}  // namespace

namespace detail {

FilterBank bank_for_level(const TransformConfig& config, int level, int tree) {
  const Wavelet base = level == 0 ? config.level1 : config.higher;
  switch (base) {
    // Q-shift pairs: tree B is the time-reversed mate (half-sample delay).
    case Wavelet::kQshift14A:
      return make_filter_bank(tree ? Wavelet::kQshift14B : base);
    case Wavelet::kQshift14B:
      return make_filter_bank(tree ? Wavelet::kQshift14A : base);
    // Biorthogonal banks have no q-shift mate; tree B is the one-sample
    // delayed bank (Kingsbury's level-1 construction) at any level, so a
    // non-q-shift `higher` still yields a consistent dual tree.
    case Wavelet::kLeGall53:
    case Wavelet::kCdf97:
      return make_filter_bank(base, tree ? 1 : 0);
  }
  return make_filter_bank(base, tree ? 1 : 0);
}

// Serial replay of one tree's forward accounting: re-derives the per-level
// line dimensions (they depend only on the input size, never on the data)
// and issues the exact account/barrier sequence the serial combined path
// would have interleaved with the numerics.
void account_forward_tree(int rows, int cols, const TransformConfig& config,
                          int row_tree, int col_tree, LineFilter& f) {
  std::vector<FilterBank> row_banks, col_banks;
  row_banks.reserve(config.levels);
  col_banks.reserve(config.levels);
  for (int level = 0; level < config.levels; ++level) {
    row_banks.push_back(bank_for_level(config, level, row_tree));
    col_banks.push_back(bank_for_level(config, level, col_tree));
  }
  account_forward_tree(rows, cols, config, row_banks.data(), col_banks.data(),
                       f);
}

void account_forward_tree(int rows, int cols, const TransformConfig& config,
                          const FilterBank* row_banks,
                          const FilterBank* col_banks, LineFilter& f) {
  int r = rows, c = cols;
  for (int level = 0; level < config.levels; ++level) {
    const int row_taps = row_banks[level].taps();
    const int col_taps = col_banks[level].taps();
    const int rp = r + (r & 1);
    const int cp = c + (c & 1);
    for (int i = 0; i < rp; ++i) f.account_analyze(cp / 2, row_taps);
    f.barrier();
    for (int i = 0; i < cp / 2; ++i) {
      f.account_analyze(rp / 2, col_taps);
      f.account_analyze(rp / 2, col_taps);
    }
    f.barrier();
    r = rp / 2;
    c = cp / 2;
  }
}

// Dims-based inverse replay for the fused plan, which never materializes a
// TreePyramid: the per-level pre-padding dims are re-derived from the input
// size exactly as forward_tree records them in bands.in_rows/in_cols.
void account_inverse_tree(int rows, int cols, const TransformConfig& config,
                          int row_tree, int col_tree, LineFilter& f) {
  std::vector<FilterBank> row_banks, col_banks;
  row_banks.reserve(config.levels);
  col_banks.reserve(config.levels);
  for (int level = 0; level < config.levels; ++level) {
    row_banks.push_back(bank_for_level(config, level, row_tree));
    col_banks.push_back(bank_for_level(config, level, col_tree));
  }
  account_inverse_tree(rows, cols, config, row_banks.data(), col_banks.data(),
                       f);
}

void account_inverse_tree(int rows, int cols, const TransformConfig& config,
                          const FilterBank* row_banks,
                          const FilterBank* col_banks, LineFilter& f) {
  std::vector<int> lr(config.levels + 1), lc(config.levels + 1);
  lr[0] = rows;
  lc[0] = cols;
  for (int level = 0; level < config.levels; ++level) {
    lr[level + 1] = (lr[level] + (lr[level] & 1)) / 2;
    lc[level + 1] = (lc[level] + (lc[level] & 1)) / 2;
  }
  int rp2 = lr[config.levels], cp2 = lc[config.levels];
  for (int level = config.levels - 1; level >= 0; --level) {
    const int col_staps = col_banks[level].synth_taps();
    const int row_staps = row_banks[level].synth_taps();
    for (int i = 0; i < cp2; ++i) {
      f.account_synthesize(rp2, col_staps);
      f.account_synthesize(rp2, col_staps);
    }
    f.barrier();
    for (int i = 0; i < 2 * rp2; ++i) {
      f.account_synthesize(cp2, row_staps);
    }
    f.barrier();
    rp2 = lr[level];
    cp2 = lc[level];
  }
}

}  // namespace detail

namespace {

// Serial replay of one tree's inverse accounting from the pyramid's actual
// level dims (see detail::account_forward_tree); inverse_tree can be handed
// a pyramid whose bands were built elsewhere, so it trusts the pyramid over
// the dims chain.
void account_inverse_tree(const TreePyramid& pyr, const TransformConfig& config,
                          int row_tree, int col_tree, LineFilter& f) {
  int rp2 = pyr.ll.rows(), cp2 = pyr.ll.cols();
  for (int level = static_cast<int>(pyr.levels.size()) - 1; level >= 0; --level) {
    const FilterBank row_bank = detail::bank_for_level(config, level, row_tree);
    const FilterBank col_bank = detail::bank_for_level(config, level, col_tree);
    for (int i = 0; i < cp2; ++i) {
      f.account_synthesize(rp2, col_bank.synth_taps());
      f.account_synthesize(rp2, col_bank.synth_taps());
    }
    f.barrier();
    for (int i = 0; i < 2 * rp2; ++i) {
      f.account_synthesize(cp2, row_bank.synth_taps());
    }
    f.barrier();
    // The next (shallower) level's ll is this level's cropped reconstruction.
    rp2 = pyr.levels[level].in_rows;
    cp2 = pyr.levels[level].in_cols;
  }
}

}  // namespace

TreePyramid forward_tree(const ImageF& img, const TransformConfig& config,
                         int row_tree, int col_tree, LineFilter& filter) {
  TreePyramid pyr;
  std::vector<float> scratch;
  // Level 0 reads `img` in place; deeper levels read the previous level's ll
  // (owned). The old path copied the whole input per tree — 4 copies per
  // transform — for no numeric reason.
  const ImageF* current = &img;
  ImageF own;
  for (int level = 0; level < config.levels; ++level) {
    const FilterBank row_bank = detail::bank_for_level(config, level, row_tree);
    const FilterBank col_bank = detail::bank_for_level(config, level, col_tree);
    LevelBands bands;
    bands.in_rows = current->rows();
    bands.in_cols = current->cols();
    const bool pad = needs_padding(*current);
    const ImageF padded_storage = pad ? pad_even(*current) : ImageF();
    const ImageF& padded = pad ? padded_storage : *current;
    LevelOut out = analyze_level(padded, row_bank, col_bank, filter, scratch);
    bands.lh = std::move(out.lh);
    bands.hl = std::move(out.hl);
    bands.hh = std::move(out.hh);
    pyr.levels.push_back(std::move(bands));
    own = std::move(out.ll);
    current = &own;
  }
  pyr.ll = config.levels > 0 ? std::move(own) : img;
  return pyr;
}

ImageF inverse_tree(const TreePyramid& pyr, const TransformConfig& config,
                    int row_tree, int col_tree, LineFilter& filter) {
  std::vector<float> scratch;
  ImageF current = pyr.ll;
  for (int level = static_cast<int>(pyr.levels.size()) - 1; level >= 0; --level) {
    const FilterBank row_bank = detail::bank_for_level(config, level, row_tree);
    const FilterBank col_bank = detail::bank_for_level(config, level, col_tree);
    current = synthesize_level(current, pyr.levels[level], row_bank, col_bank, filter,
                               scratch);
  }
  return current;
}

DtcwtPyramid forward_dtcwt(const ImageF& img, const TransformConfig& config,
                           LineFilter& filter) {
  DtcwtPyramid pyr;
  ThreadPool* pool = filter.splittable() ? filter.pool() : nullptr;
  if (pool == nullptr) {
    for (int t = 0; t < 4; ++t) {
      pyr.tree[t] = forward_tree(img, config, t >> 1, t & 1, filter);
    }
    return pyr;
  }
  // Tree-parallel path: the four trees are fully independent numerically, so
  // each runs through a pure KernelLineFilter on the pool (no per-tree
  // accounting, no nested parallelism). The real filter's accounting —
  // including any accelerator-model state — is then replayed serially in the
  // same tree order the serial path uses.
  const simd::KernelSet& kernels = filter.kernels();
  pool->parallel_for(0, 4, [&](int t0, int t1) {
    KernelLineFilter pure(kernels);
    for (int t = t0; t < t1; ++t) {
      pyr.tree[t] = forward_tree(img, config, t >> 1, t & 1, pure);
    }
  });
  for (int t = 0; t < 4; ++t) {
    detail::account_forward_tree(img.rows(), img.cols(), config, t >> 1, t & 1,
                                 filter);
  }
  return pyr;
}

ImageF inverse_dtcwt(const DtcwtPyramid& pyr, const TransformConfig& config,
                     LineFilter& filter) {
  ThreadPool* pool = filter.splittable() ? filter.pool() : nullptr;
  if (pool == nullptr) {
    ImageF acc;
    for (int t = 0; t < 4; ++t) {
      ImageF rec = inverse_tree(pyr.tree[t], config, t >> 1, t & 1, filter);
      if (t == 0) {
        acc = std::move(rec);
      } else {
        for (std::size_t i = 0; i < acc.size(); ++i) acc.data()[i] += rec.data()[i];
      }
    }
    for (std::size_t i = 0; i < acc.size(); ++i) acc.data()[i] *= 0.25f;
    return acc;
  }
  ImageF recs[4];
  const simd::KernelSet& kernels = filter.kernels();
  pool->parallel_for(0, 4, [&](int t0, int t1) {
    KernelLineFilter pure(kernels);
    for (int t = t0; t < t1; ++t) {
      recs[t] = inverse_tree(pyr.tree[t], config, t >> 1, t & 1, pure);
    }
  });
  for (int t = 0; t < 4; ++t) {
    account_inverse_tree(pyr.tree[t], config, t >> 1, t & 1, filter);
  }
  // Combine in the serial path's exact order (float summation order matters
  // for bit-identity).
  ImageF acc = std::move(recs[0]);
  for (int t = 1; t < 4; ++t) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc.data()[i] += recs[t].data()[i];
    }
  }
  for (std::size_t i = 0; i < acc.size(); ++i) acc.data()[i] *= 0.25f;
  return acc;
}

}  // namespace vf::dwt

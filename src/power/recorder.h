// System power model and the sampled power recorder (paper §VI).
//
// The paper measures energy by integrating "power values, measured by
// power-recording software running simultaneously" with the fusion run. The
// PowerModel holds the two steady-state operating points the paper reports
// (ARM-only vs ARM+FPGA, +19.2 mW / +3.6% net for the PL engine); the
// PowerRecorder replays a run through a fixed-period sampler and exposes both
// the sampled integral and the exact one so the benches can quantify the
// methodology's error.
#pragma once

#include <vector>

#include "src/common/sim_time.h"
#include "src/common/timeline.h"

namespace vf::power {

enum class ComputeMode { kArmOnly, kArmNeon, kArmFpga };

struct PowerConfig {
  // Total system draw while fusing on the PS only. 19.2 mW is +3.6% of this,
  // matching the paper's reported net cost of the PL engine.
  double system_mw = 533.3;
  double pl_engine_net_mw = 19.2;
};

class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(const PowerConfig& config) : config_(config) {}

  const PowerConfig& config() const { return config_; }

  double system_power_mw(ComputeMode mode) const {
    switch (mode) {
      case ComputeMode::kArmOnly:
      case ComputeMode::kArmNeon:  // NEON adds no measurable system draw
        return config_.system_mw;
      case ComputeMode::kArmFpga:
        return config_.system_mw + config_.pl_engine_net_mw;
    }
    return config_.system_mw;
  }

  double energy_mj(ComputeMode mode, SimDuration t) const {
    return system_power_mw(mode) * t.sec();  // mW * s = mJ
  }

 private:
  PowerConfig config_;
};

// Sample-and-hold integrator with a fixed sampling period (the paper's
// power-recording software). Segments are replayed in order; each completed
// period contributes sample_power * period, so the tail of a run shorter
// than one period is the sampling error.
class PowerRecorder {
 public:
  PowerRecorder(const PowerModel& model, SimDuration period)
      : model_(model), period_(period) {}

  void run_segment(bool pl_engine_active, SimDuration duration) {
    run_segment(pl_engine_active ? ComputeMode::kArmFpga : ComputeMode::kArmOnly,
                duration);
  }

  void run_segment(ComputeMode mode, SimDuration duration) {
    const double mw = model_.system_power_mw(mode);
    exact_mj_ += mw * duration.sec();
    double remaining = duration.sec();
    while (remaining > 0.0) {
      const double to_boundary = period_.sec() - into_period_;
      const double step = remaining < to_boundary ? remaining : to_boundary;
      into_period_ += step;
      remaining -= step;
      if (into_period_ >= period_.sec()) {
        sampled_mj_ += mw * period_.sec();  // sample taken at the boundary
        into_period_ = 0.0;
      }
    }
  }

  // Integrates mode power against a timeline instead of summed durations:
  // the run is replayed in timestamp order, charging `active` power during
  // the merged busy intervals of `pl_resources` and `idle` power in the
  // gaps. Because intervals are merged before integration, PS and PL being
  // concurrently active charges the engine's +3.6% system draw once —
  // the additive ledger would have charged it per overlapping segment.
  void run_timeline(const Timeline& timeline,
                    const std::vector<ResourceId>& pl_resources,
                    ComputeMode idle = ComputeMode::kArmOnly,
                    ComputeMode active = ComputeMode::kArmFpga) {
    SimDuration cursor;
    for (const auto& [start, end] : timeline.busy_intervals(pl_resources)) {
      if (start > cursor) run_segment(idle, start - cursor);
      run_segment(active, end - start);
      cursor = end;
    }
    const SimDuration makespan = timeline.makespan();
    if (makespan > cursor) run_segment(idle, makespan - cursor);
  }

  double sampled_energy_mj() const { return sampled_mj_; }
  double exact_energy_mj() const { return exact_mj_; }

 private:
  PowerModel model_;
  SimDuration period_;
  double into_period_ = 0.0;
  double sampled_mj_ = 0.0;
  double exact_mj_ = 0.0;
};

}  // namespace vf::power

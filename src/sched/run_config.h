// The unified run-configuration API for the sched layer (PR 7 redesign).
//
// Every backend used to grow its own ad-hoc constructor signature
// (ArmBackend(HostConfig), FpgaBackend(engine, costs, host),
// AdaptiveBackend(Options), ...), which made "place this stream on that
// engine with this host config" inexpressible the moment the fleet scheduler
// needed it. RunConfig is the one bag of knobs every backend understands,
// and make_backend() is the only construction path the rest of the tree
// uses (the pre-PR-7 per-backend signatures are gone).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/fusion/fuse.h"
#include "src/hw/cost_constants.h"
#include "src/hw/driver.h"
#include "src/hw/resources.h"

namespace vf::sched {

// --- frame sweep geometry ---------------------------------------------------

struct FrameSize {
  int width = 0;
  int height = 0;
  std::string label() const;
  int pixels() const { return width * height; }
};

// The five sizes of the paper's figures: 32x24, 35x35, 40x40, 64x48, 88x72.
std::vector<FrameSize> paper_frame_sizes();

// --- run configuration ------------------------------------------------------

// One description of "how to run a fusion stream": what to fuse, how the
// host executes the numerics, which modeled hardware the stream runs on, and
// how deep the frame pipeline may fill. Backends read the subset they care
// about and ignore the rest, so a single RunConfig can parameterize an
// entire sweep (bench_util builds one from the CLI flags).
struct RunConfig {
  // What to fuse.
  FrameSize frame_size{88, 72};
  int frames = 10;  // the paper's "10 input frames"
  fusion::FuseConfig fuse;

  // Host execution. Affects only how fast the host computes the numerics;
  // modeled time/energy is bit-identical at any width, flavour, or layout
  // (DESIGN.md §3, §7). An empty `kernels` keeps the current dispatch set;
  // an empty `host_layout` keeps the current layout ("fused" | "tiled" |
  // "naive", see dwt::HostLayout).
  HostConfig host;
  std::string kernels;
  std::string host_layout;

  // Modeled hardware the stream runs on.
  hw::WaveletEngineConfig engine;
  driver::DriverCosts driver_costs;
  driver::PipelinedWaveletAccelerator::Batching batching;
  // Which PL engine slot a fleet places this stream on; -1 = auto
  // (stream index modulo engine count). Ignored outside run_fleet.
  int engine_id = -1;

  // Scheduling: frames in flight for the event-queue pipeline (1 = serial
  // schedule), and the adaptive router's NEON/FPGA crossover.
  int pipeline_depth = 4;
  int adaptive_threshold_samples = hw::cost::kAdaptiveThresholdSamples;

  // Cross-frame line streaming (ISSUE 9): when true and the stream runs on
  // the batched FPGA path with pipeline_depth > 1, run_pipelined/run_fleet
  // replay the captured batch stream at line granularity across frame and
  // level boundaries (ping-pong buffers refill from the next frame's rows
  // while the current frame's last batch is on the engine) instead of the
  // stage-granular overlap. Off (default) keeps every legacy schedule
  // bit-identical. Pair with batching.sg_chain_len to amortize the driver
  // entry over a descriptor chain.
  bool cross_frame = false;
};

// --- backend factory --------------------------------------------------------

enum class BackendKind { kArm, kNeon, kFpga, kFpgaBatched, kAdaptive };

// Display name, identical to the backend's name() ("ARM", "NEON", "FPGA",
// "FPGA+batch", "Adaptive").
const char* backend_name(BackendKind kind);

class TransformBackend;

// The one construction path for backends. Applies config.kernels to the
// dispatch table when non-empty (aborts on an unknown flavour — a silent
// fallback would misreport what ran), then builds the requested backend
// from the RunConfig fields it understands.
std::unique_ptr<TransformBackend> make_backend(BackendKind kind,
                                               const RunConfig& config);

}  // namespace vf::sched

// Fleet scheduler: N concurrent fusion streams over M modeled PL engines
// and K PS cores (PR 7 tentpole; ROADMAP "multi-stream fleet scheduler").
//
// The production north star is judged on per-stream latency percentiles and
// dropped frames, not aggregate fps. Streams arrive at camera rate
// (configurable fps + deterministic jitter) instead of all-at-t=0, carry a
// bounded frame queue with drop-on-overflow, and an admission/placement
// layer dispatches their pipeline stages onto shared timeline resources:
// K PS cores (one home core per stream) and M PL engine slots, bounded by
// the Table-I resource model (hw::max_engine_instances — the paper's float
// engine fits the xc7z020 once; the Q2.16 fixed-point datapath about seven
// times). Idle engines may be stolen across streams, and a stream whose
// engine wait exceeds a fraction of its frame period spills the frame to
// the NEON cost model instead of queueing on the PL.
//
// The same event-driven core schedules sched::run_pipelined's overlapped
// path, so a 1-stream fleet at camera-rate-0 reproduces run_pipelined
// bit-for-bit (tests/test_fleet.cpp locks makespan and energy equality).
//
// Everything is modeled and deterministic: stage costs come from the same
// per-frame PS/PL-split ledgers as run_pipelined, the dispatch order is a
// pure function of those costs, and energy integrates over the merged
// engine-busy intervals via PowerRecorder::run_timeline (DESIGN.md §4).
#pragma once

#include <array>
#include <vector>

#include "src/common/timeline.h"
#include "src/sched/adaptive.h"

namespace vf::sched {

// --- public fleet API -------------------------------------------------------

// Arrival process of one camera stream. fps == 0 means the whole stream is
// ready at t=0 (the batch mode run_pipelined uses); otherwise frame f
// arrives at offset + f/fps + jitter, with jitter drawn deterministically
// (per stream, per frame) uniform in [0, jitter_frac/fps).
struct ArrivalModel {
  double fps = 0.0;
  double jitter_frac = 0.0;  // in [0, 1)
  SimDuration offset;
};

struct StreamConfig {
  BackendKind backend = BackendKind::kFpgaBatched;
  RunConfig run;  // frame size, frame count, host, engine/driver config, ...
  ArrivalModel arrival;
  // Admission bound: a frame arriving while this many admitted frames still
  // wait for their first dispatch is dropped. <= 0 = unbounded.
  int queue_depth = 4;
};

struct FleetConfig {
  int engines = 1;  // M modeled PL engine slots
  int cores = 2;    // K PS cores (the ZC702 has two Cortex-A9s)
  // Frames of one stream in flight at once (run_pipelined's 4-stage window).
  int pipeline_depth = 4;
  // Placement policy: steal any idle engine vs stay on the home engine
  // (stream's RunConfig::engine_id, or stream index modulo M).
  bool steal_engines = true;
  // > 0: when the shortest engine wait at admission exceeds this fraction of
  // the stream's frame period, the frame falls back to the NEON cost model
  // instead of queueing on the saturated PL. 0 disables the spill.
  double spill_wait_frac = 0.0;
  // Resource model used to validate `engines` against the part: the paper's
  // float32 datapath (one instance fits) or the Q2.16 fixed-point datapath
  // (about seven fit). run_fleet aborts loudly on an impossible count.
  bool fixed_point_engines = false;
  hw::WaveletEngineConfig engine_config;  // per-instance resource footprint
  // Cross-frame line streaming (ISSUE 9): replay every stream through
  // schedule_streaming — batched-FPGA streams at captured batch granularity
  // (an engine slot switching streams keeps its ping-pong buffer state
  // instead of draining, and descriptor chains of the streams' RunConfig
  // sg_chain_len amortize the driver entry), other backends as sliced
  // stage-granular ops on the same replay. Off (default) keeps the legacy
  // stage-granular schedule bit-identical.
  bool cross_frame = false;
};

struct StreamStats {
  int arrived = 0;
  int admitted = 0;
  int dropped = 0;
  int completed = 0;
  int spilled = 0;  // frames that fell back to the NEON cost model
  // Per-frame latency (completion - arrival) percentiles, nearest-rank over
  // the stream's completed frames.
  SimDuration p50_latency, p99_latency, max_latency;
  SimDuration last_completion;
  SimDuration ps_busy, pl_busy;  // this stream's resource occupancy
  // Fleet energy attributed by busy-time share (the modeled board draws one
  // system power; per-stream energy is an accounting split, not a meter).
  double energy_mj = 0.0;
  double energy_per_frame_mj() const {
    return completed > 0 ? energy_mj / completed : 0.0;
  }
};

struct FleetResult {
  SimDuration makespan;
  std::vector<StreamStats> streams;
  int arrived = 0, admitted = 0, dropped = 0, completed = 0;
  SimDuration ps_busy, pl_busy;  // summed over cores / engines
  // PowerRecorder::run_timeline over the merged engine-busy intervals:
  // loaded keeps the +3.6% PL draw for the whole run (paper methodology),
  // gated charges it only while some engine is actually busy.
  double energy_mj = 0.0;
  double energy_gated_mj = 0.0;

  double energy_per_frame_mj() const {
    return completed > 0 ? energy_mj / completed : 0.0;
  }
};

// Runs the fleet: per-stream pass 1 (serial numerics through the stream's
// factory-built backend, per-frame PS/PL-split stage costs), then the
// event-driven dispatch of every stage onto the shared cores/engines, then
// stats + energy integration. Deterministic at any --threads.
FleetResult run_fleet(const std::vector<StreamConfig>& streams,
                      const FleetConfig& fleet = {});

// --- shared event-driven core (used by run_fleet and run_pipelined) ---------

namespace detail {

struct FleetStageCost {
  SimDuration ps, pl;
};

struct FleetStreamInput {
  // Per frame: arrival time and the 4-stage (prep/fwd/fus/inv) cost split.
  std::vector<SimDuration> arrivals;
  std::vector<std::array<FleetStageCost, 4>> cost;
  // Non-empty to enable the NEON spill: per-frame stage costs of the same
  // frames on the NEON cost model (all-PS).
  std::vector<std::array<FleetStageCost, 4>> spill_cost;
  SimDuration period;   // frame period; zero = batch mode (no spill, no jitter)
  int queue_depth = 0;  // <= 0 = unbounded
  int home_engine = 0;
};

struct FleetFrameOutcome {
  bool dropped = false;
  bool spilled = false;
  SimDuration completion;
  SimDuration latency;  // completion - arrival (dropped frames: zero)
};

struct FleetSchedule {
  Timeline timeline;
  std::vector<ResourceId> cores, engines;
  // Per-engine ACP DMA channels — only populated by the streaming replay
  // (schedule_streaming, src/sched/streaming.h); empty on the stage-granular
  // path, so legacy accounting is unchanged.
  std::vector<ResourceId> dmas;
  std::vector<std::vector<FleetFrameOutcome>> frames;  // per stream, per frame
  std::vector<SimDuration> stream_ps_busy, stream_pl_busy;
};

// Event-driven non-delay list scheduling: among all eligible stage dispatches
// (stage-chain and pipeline-depth gated, per-stream FIFO), the one with the
// earliest feasible start commits first; ties break by stage (older frames
// first), frame, then stream. Arrivals interleave in simulated-time order,
// and a frame is dropped at its arrival instant when the stream's admitted-
// but-unstarted backlog has reached queue_depth.
FleetSchedule schedule_fleet(const std::vector<FleetStreamInput>& streams,
                             int cores, int engines, int pipeline_depth,
                             bool steal_engines, double spill_wait_frac);

struct FleetEnergy {
  double loaded_mj = 0.0;
  double gated_mj = 0.0;
};

// Shared energy integration (bit-identical between run_fleet and
// run_pipelined): `mode` power over the whole makespan (loaded), and with
// the engine draw gated to the merged busy intervals of `engines`.
FleetEnergy integrate_fleet_energy(const Timeline& timeline,
                                   const std::vector<ResourceId>& engines,
                                   power::ComputeMode mode);

}  // namespace detail

}  // namespace vf::sched

// Event-queue execution on top of the Timeline (ROADMAP items 1–2).
//
// Two layers of computed (not assumed) concurrency:
//
//   BatchedFpgaBackend     the FPGA engine driven through the
//                          PipelinedWaveletAccelerator: consecutive lines
//                          are packed into the 2048-word kernel buffers,
//                          one driver call per batch, and the two buffers
//                          ping-pong at transfer granularity (the paper's
//                          Fig. 5 schedule across *consecutive* lines).
//                          Amortizing the ~12k-cycle driver entry moves the
//                          FPGA time break point left of 35x35
//                          (tests/test_timeline.cpp locks this).
//
//   run_pipelined          frame-level software pipelining: while the PL
//                          transforms frame N, the PS runs frame N-1's
//                          fusion rule and frame N+1's prep. Stage costs
//                          come from the per-frame ledger (split into
//                          PS-resident and PL-resident parts) and are
//                          re-scheduled on a Timeline; with overlap
//                          disabled the schedule degenerates to the serial
//                          ledger sum (DESIGN.md §2 invariant).
//
// Numerics are untouched in both layers: the same kernels run in the same
// order, so fused outputs stay bit-identical with every other backend.
#pragma once

#include <memory>
#include <vector>

#include "src/common/timeline.h"
#include "src/sched/adaptive.h"
#include "src/sched/streaming.h"

namespace vf::sched {

// FPGA backend with batched line submission and transfer-granularity double
// buffering. Modeled time is computed by an internal Timeline over three
// resources (PS core, ACP DMA, PL engine); the additive per-phase ledger is
// reconciled from makespan deltas at phase boundaries, so
// frame_times().total() is the PS-visible end-to-end time, overlap included.
class BatchedFpgaBackend : public TransformBackend {
 public:
  BatchedFpgaBackend() : BatchedFpgaBackend(RunConfig{}) {}
  explicit BatchedFpgaBackend(const RunConfig& config);
  ~BatchedFpgaBackend() override;

  const char* name() const override { return "FPGA+batch"; }
  power::ComputeMode compute_mode() const override {
    return power::ComputeMode::kArmFpga;
  }
  dwt::LineFilter& line_filter() override;

  void charge(SimDuration d) override;
  void finish_frame() override;

  const Timeline& timeline() const { return timeline_; }
  const driver::PipelinedWaveletAccelerator& accelerator() const { return accel_; }
  ResourceId ps_resource() const { return ps_; }
  ResourceId dma_resource() const { return dma_; }
  ResourceId pl_resource() const { return pl_; }

  // Cross-frame streaming trace (ISSUE 9): record every frame's op stream
  // (PS slices, accelerator batches, stage boundaries) during the serial
  // measurement pass. Recording is pure observation — the serial schedule,
  // ledgers, and numerics are unchanged. take_stream_trace() returns one op
  // list per completed frame and stops recording.
  void enable_stream_trace();
  std::vector<std::vector<detail::StreamOp>> take_stream_trace();

 protected:
  void on_phase_exit(Phase old_phase) override;

 private:
  class Filter;

  // Closes in-flight batches and charges the makespan growth since the last
  // sync to `charge_to` (PL/DMA busy growth goes to the PL split ledger).
  void sync(Phase charge_to);

  // Converts accelerator batches closed since the last drain into kBatch
  // ops, then (optionally) appends a stage boundary; no-ops unless tracing.
  void drain_trace(Phase stage);
  void push_stage_boundary(Phase stage);

  Timeline timeline_;
  ResourceId ps_, dma_, pl_;
  driver::PipelinedWaveletAccelerator accel_;
  SimDuration mark_;          // makespan at last sync
  SimDuration mark_pl_busy_;  // PL+DMA busy time at last sync
  SimDuration ps_ready_;      // PS events wait for drained outputs
  std::unique_ptr<Filter> filter_;

  // Streaming trace capture (enable_stream_trace).
  bool tracing_ = false;
  std::vector<driver::PipelinedWaveletAccelerator::BatchTrace> batch_trace_;
  std::size_t batch_drained_ = 0;
  std::vector<detail::StreamOp> cur_ops_;
  std::vector<std::vector<detail::StreamOp>> trace_frames_;
};

// --- frame-level pipelining -------------------------------------------------

struct PipelineOptions {
  // Frame-level overlap. Off reproduces the serial schedule: makespan ==
  // the additive ledger total (up to float summation order).
  bool overlap = true;
  // Frames in flight at once on the overlapped schedule (the 4-stage
  // software-pipeline window).
  int depth = 4;
  // Cross-frame line streaming (ISSUE 9): with overlap on and a
  // BatchedFpgaBackend, replay the captured batch stream at line granularity
  // via detail::schedule_streaming — ping-pong buffers persist across frame
  // boundaries and descriptor chains amortize the driver entry
  // (RunConfig::batching.sg_chain_len). Ignored (silently legacy) for other
  // backends. Off keeps the stage-granular schedule bit-identical.
  bool cross_frame = false;
  fusion::FuseConfig fuse;
};

struct PipelineRunResult {
  int frames = 0;
  // Additive ledger sum over frames — what the serial TimedFusionRunner
  // reports for the same backend and input.
  SimDuration serial_total;
  // Completion time of the last frame on the event-queue schedule.
  SimDuration makespan;
  SimDuration ps_busy, pl_busy;
  double sustained_fps = 0.0;
  // Timeline-integrated energy with the bitstream-loaded draw for the whole
  // run (the paper's methodology), and with the engine draw gated to PL-busy
  // intervals (what clock-gating the idle engine would save).
  double energy_mj = 0.0;
  double energy_gated_mj = 0.0;

  double energy_per_frame_mj() const {
    return frames > 0 ? energy_mj / frames : 0.0;
  }
  double speedup_vs_serial() const {
    return makespan.sec() > 0.0 ? serial_total / makespan : 0.0;
  }
};

// Runs every frame pair through `backend` (serial numerics, per-frame
// PS/PL-split stage costs), then re-schedules the stages on a Timeline with
// the 4-stage software pipeline prep -> forward -> fusion -> inverse.
PipelineRunResult run_pipelined(TransformBackend& backend,
                                const std::vector<FramePair>& frames,
                                const PipelineOptions& options = {});

// RunConfig spelling: pipeline_depth <= 1 disables the overlap.
PipelineRunResult run_pipelined(TransformBackend& backend,
                                const std::vector<FramePair>& frames,
                                const RunConfig& config);

// Convenience: run_pipelined over the deterministic sweep scene.
PipelineRunResult probe_pipelined(TransformBackend& backend, const FrameSize& size,
                                  int frames, const PipelineOptions& options = {});

// RunConfig spelling: frame size and count come from the config.
PipelineRunResult probe_pipelined(TransformBackend& backend,
                                  const RunConfig& config);

}  // namespace vf::sched

// Engine scheduling on the modeled ZC702: the ARM / NEON / FPGA transform
// backends, per-phase time accounting, and the adaptive per-line router the
// paper's future-work section asks for ("an adaptive system that
// intelligently selects between the NEON engine and the FPGA").
//
// A backend executes the *same* numerics as every other backend (fused
// output is bit-identical across engines); what differs is the modeled time
// charged per line request. Cost-model constants are calibrated against the
// paper's measured curves — see DESIGN.md §2 and tests/test_sched.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/fusion/dwt_fusion.h"
#include "src/fusion/fuse.h"
#include "src/hw/driver.h"
#include "src/hw/resources.h"
#include "src/image/metrics.h"
#include "src/power/recorder.h"
#include "src/sched/run_config.h"

namespace vf::sched {

// --- frame sweep ------------------------------------------------------------
// (FrameSize / paper_frame_sizes live in run_config.h since the PR 7 API
// redesign; this header re-exports them via the include above.)

struct FramePair {
  image::ImageF visible;
  image::ImageF thermal;
};

// Deterministic synthetic surveillance scene: a textured visible frame and a
// thermal frame whose hot target drifts with the frame index.
std::vector<FramePair> make_sweep_frames(const FrameSize& size, int count);

// --- time accounting --------------------------------------------------------

enum class Phase { kPrep, kForward, kFusion, kInverse };

struct StageTimes {
  SimDuration prep, forward, fusion, inverse;
  SimDuration total() const { return prep + forward + fusion + inverse; }
};

// CPU-side cost model (PS cycles). The named constants (hw/cost_constants.h)
// reproduce the paper's absolute times — which imply roughly 70 cycles per
// float MAC on the A9 — and its NEON deltas (-10% forward, -16% inverse).
struct CpuCostModel {
  double line_overhead_cycles = hw::cost::kCpuLineOverheadCycles;
  double per_sample_base_cycles = hw::cost::kCpuPerSampleBaseCycles;
  double per_sample_tap_cycles = hw::cost::kCpuPerSampleTapCycles;
  double magnitude_cycles_per_sample = hw::cost::kCpuMagnitudeCyclesPerSample;
  double select_cycles_per_sample = hw::cost::kCpuSelectCyclesPerSample;
  double prep_cycles_per_pixel = hw::cost::kCpuPrepCyclesPerPixel;
  double analysis_factor = 1.0;   // NEON: kNeonAnalysisFactor
  double synthesis_factor = 1.0;  // NEON: kNeonSynthesisFactor

  double analysis_line_cycles(int samples, int taps) const {
    return line_overhead_cycles +
           analysis_factor * samples * (per_sample_base_cycles + per_sample_tap_cycles * taps);
  }
  double synthesis_line_cycles(int samples, int taps) const {
    return line_overhead_cycles +
           synthesis_factor * samples * (per_sample_base_cycles + per_sample_tap_cycles * taps);
  }
};

CpuCostModel arm_cost_model();
CpuCostModel neon_cost_model();

// --- backends ---------------------------------------------------------------

class TransformBackend {
 public:
  virtual ~TransformBackend() = default;

  virtual const char* name() const = 0;
  virtual power::ComputeMode compute_mode() const = 0;
  virtual dwt::LineFilter& line_filter() = 0;

  // Host pool for the numeric half of transform execution. Affects only how
  // fast the host computes; every modeled time above is charged through the
  // serial account_* path and is bit-identical at any pool width.
  ThreadPool* host_pool() const { return host_pool_; }

  void begin_frame() {
    times_ = {};
    pl_times_ = {};
    on_begin_frame();
  }
  void set_phase(Phase p) {
    if (p != phase_) on_phase_exit(phase_);
    phase_ = p;
  }
  Phase phase() const { return phase_; }
  const StageTimes& frame_times() const { return times_; }

  // Per-phase PL-resident portion of frame_times(): DMA transfers, engine
  // busy time, PS-waits-for-PL stalls. A frame-level pipeline may overlap
  // this with another frame's PS work; frame_times() minus this is the
  // work the PS core itself must execute.
  const StageTimes& frame_pl_times() const { return pl_times_; }

  // Adds modeled time to the current phase's ledger. Virtual so event-queue
  // backends can route generic PS charges onto a timeline instead.
  virtual void charge(SimDuration d);

  // Tags the PL-resident sub-portion of time already charged (never adds
  // to frame_times(), only to the split).
  void note_pl(SimDuration d);

  // Called by the runner once the frame's last phase is complete; backends
  // with in-flight work (batched submission) drain and reconcile here.
  virtual void finish_frame() {}

  // Frame prep/conversion runs on the ARM regardless of engine.
  SimDuration prep_time(int pixels) const;

 protected:
  explicit TransformBackend(const HostConfig& host = {})
      : host_pool_(host::pool(host)) {}
  void ledger_add(Phase p, SimDuration d);
  void ledger_add_pl(Phase p, SimDuration d);
  virtual void on_begin_frame() {}
  virtual void on_phase_exit(Phase old_phase) { (void)old_phase; }

 private:
  StageTimes times_;
  StageTimes pl_times_;
  Phase phase_ = Phase::kPrep;
  ThreadPool* host_pool_ = nullptr;
};

namespace detail {

// Aborts if a filter bank cannot fit the modeled engine's coefficient
// shift-register chain (`slots` for analysis, `slots + 2` for synthesis).
void check_engine_fit(const hw::WaveletEngineConfig& engine, int taps,
                      bool synthesis);

// Charges CPU-model time per line; numerics come from the dispatch set
// (LineFilter::kernels() default), which is bit-identical across flavours —
// the *model* constants, not the host instruction set, decide what the
// backend represents (ARM vs NEON).
class CpuTimedFilter : public dwt::LineFilter {
 public:
  CpuTimedFilter(TransformBackend* owner, CpuCostModel model)
      : owner_(owner), model_(model) {}

  ThreadPool* pool() const override;
  void account_analyze(int out_len, int taps) override;
  void account_synthesize(int pairs, int taps) override;
  void account_magnitude(int n) override;
  void account_select(int n) override;

 private:
  TransformBackend* owner_;
  CpuCostModel model_;
};
}  // namespace detail

class ArmBackend : public TransformBackend {
 public:
  ArmBackend() : ArmBackend(RunConfig{}) {}
  explicit ArmBackend(const RunConfig& config)
      : TransformBackend(config.host), filter_(this, arm_cost_model()) {}
  const char* name() const override { return "ARM"; }
  power::ComputeMode compute_mode() const override {
    return power::ComputeMode::kArmOnly;
  }
  dwt::LineFilter& line_filter() override { return filter_; }

 private:
  detail::CpuTimedFilter filter_;
};

class NeonBackend : public TransformBackend {
 public:
  NeonBackend() : NeonBackend(RunConfig{}) {}
  explicit NeonBackend(const RunConfig& config)
      : TransformBackend(config.host), filter_(this, neon_cost_model()) {}
  const char* name() const override { return "NEON"; }
  power::ComputeMode compute_mode() const override {
    return power::ComputeMode::kArmNeon;
  }
  dwt::LineFilter& line_filter() override { return filter_; }

 private:
  detail::CpuTimedFilter filter_;
};

class FpgaBackend : public TransformBackend {
 public:
  FpgaBackend() : FpgaBackend(RunConfig{}) {}
  explicit FpgaBackend(const RunConfig& config);
  ~FpgaBackend() override;
  const char* name() const override { return "FPGA"; }
  power::ComputeMode compute_mode() const override {
    return power::ComputeMode::kArmFpga;
  }
  dwt::LineFilter& line_filter() override;

  const driver::WaveletAccelerator& accelerator() const { return accel_; }

 private:
  class Filter;
  driver::WaveletAccelerator accel_;
  std::unique_ptr<Filter> filter_;
};

// Per-line NEON/FPGA routing decision + statistics.
class LineRouter {
 public:
  explicit LineRouter(int threshold_samples) : threshold_(threshold_samples) {}

  // `line_samples` is the full line request size (payload + filter window),
  // i.e. the number of words the driver would ship to the engine.
  bool use_fpga(int line_samples) {
    const bool fpga = line_samples >= threshold_;
    (fpga ? fpga_lines_ : simd_lines_) += 1;
    return fpga;
  }

  int threshold_samples() const { return threshold_; }
  long long lines_on_fpga() const { return fpga_lines_; }
  long long lines_on_simd() const { return simd_lines_; }

 private:
  int threshold_;
  long long fpga_lines_ = 0;
  long long simd_lines_ = 0;
};

class AdaptiveBackend : public TransformBackend {
 public:
  AdaptiveBackend() : AdaptiveBackend(RunConfig{}) {}
  explicit AdaptiveBackend(const RunConfig& config);
  ~AdaptiveBackend() override;

  const char* name() const override { return "Adaptive"; }
  power::ComputeMode compute_mode() const override {
    return power::ComputeMode::kArmFpga;  // bitstream stays loaded
  }
  dwt::LineFilter& line_filter() override;

  const LineRouter& router() const { return router_; }
  const driver::WaveletAccelerator& accelerator() const { return accel_; }

 private:
  class Filter;
  driver::WaveletAccelerator accel_;
  LineRouter router_;
  std::unique_ptr<Filter> filter_;
};

// --- probing / timed runs ---------------------------------------------------

struct FrameRunResult {
  StageTimes times;
  StageTimes pl_times;  // PL-resident portion of `times` (see frame_pl_times)
  image::ImageF fused;
};

// Runs the full fusion pipeline on one backend, clocking each phase.
class TimedFusionRunner {
 public:
  explicit TimedFusionRunner(TransformBackend& backend,
                             fusion::FuseConfig config = {})
      : backend_(backend), config_(config) {}

  FrameRunResult run_frame_pair(const image::ImageF& visible,
                                const image::ImageF& thermal);

 private:
  TransformBackend& backend_;
  fusion::FuseConfig config_;
};

struct ProbeResult {
  SimDuration prep, forward, fusion, inverse, total;
  double energy_mj = 0.0;
  int frames = 0;
};

// Fuses `frames` consecutive frame pairs at `size` on `backend` and returns
// accumulated modeled times and energy.
ProbeResult probe_backend(TransformBackend& backend, const FrameSize& size,
                          int frames, const fusion::FuseConfig& config = {});

}  // namespace vf::sched

#include "src/sched/pipeline.h"

#include <algorithm>
#include <array>

#include "src/hw/clock.h"
#include "src/hw/cost_constants.h"
#include "src/power/recorder.h"
#include "src/sched/fleet.h"
#include "src/simd/kernels.h"

namespace vf::sched {

// --- BatchedFpgaBackend -----------------------------------------------------

// Batch submission and buffer ping-pong depend only on the request sequence
// (sizes + barriers), never on sample values, so the whole Timeline
// interaction lives in accounting: the serial account_*/barrier() replay
// reproduces the exact event schedule at any host thread count. The fusion
// rule routes through kernels() (the dispatch set) instead of hard-coding
// the scalar magnitude/select kernels as the old combined overrides did.
class BatchedFpgaBackend::Filter : public dwt::LineFilter {
 public:
  Filter(BatchedFpgaBackend* owner, driver::PipelinedWaveletAccelerator* accel)
      : owner_(owner), accel_(accel), cpu_(arm_cost_model()) {}

  void barrier() override { accel_->barrier(); }

  ThreadPool* pool() const override { return owner_->host_pool(); }

  void account_analyze(int out_len, int taps) override {
    detail::check_engine_fit(accel_->engine(), taps, /*synthesis=*/false);
    accel_->submit_line(2 * out_len + taps, 2 * out_len,
                        hw::cost::engine_compute_cycles(out_len,
                                                        accel_->engine().slots));
  }

  void account_synthesize(int pairs, int taps) override {
    detail::check_engine_fit(accel_->engine(), taps, /*synthesis=*/true);
    accel_->submit_line(2 * pairs + taps, 2 * pairs,
                        hw::cost::engine_compute_cycles(pairs,
                                                        accel_->engine().slots));
  }

  void account_magnitude(int n) override {
    owner_->charge(hw::ps_clock().cycles(cpu_.magnitude_cycles_per_sample * n));
  }

  void account_select(int n) override {
    owner_->charge(hw::ps_clock().cycles(cpu_.select_cycles_per_sample * n));
  }

 private:
  BatchedFpgaBackend* owner_;
  driver::PipelinedWaveletAccelerator* accel_;
  CpuCostModel cpu_;
};

BatchedFpgaBackend::BatchedFpgaBackend(const RunConfig& config)
    : TransformBackend(config.host),
      ps_(timeline_.add_resource("PS core")),
      dma_(timeline_.add_resource("ACP DMA")),
      pl_(timeline_.add_resource("PL engine")),
      accel_(config.engine, config.driver_costs, config.batching, &timeline_,
             ps_, dma_, pl_),
      filter_(std::make_unique<Filter>(this, &accel_)) {}

BatchedFpgaBackend::~BatchedFpgaBackend() = default;

dwt::LineFilter& BatchedFpgaBackend::line_filter() { return *filter_; }

void BatchedFpgaBackend::charge(SimDuration d) {
  // Generic PS work (prep, fusion-rule kernels) becomes a PS event; the
  // ledger is reconciled from the makespan at the next sync, so no direct
  // ledger_add here — adding both would double-charge.
  timeline_.schedule(ps_, "ps", ps_ready_, d);
  if (tracing_) {
    drain_trace(phase());
    detail::append_sliced_ps(&cur_ops_, static_cast<int>(phase()), d);
  }
}

void BatchedFpgaBackend::on_phase_exit(Phase old_phase) {
  sync(old_phase);
  if (tracing_) {
    drain_trace(old_phase);
    push_stage_boundary(old_phase);
  }
}

void BatchedFpgaBackend::finish_frame() {
  sync(phase());
  if (tracing_) {
    drain_trace(phase());
    trace_frames_.push_back(std::move(cur_ops_));
    cur_ops_.clear();
    batch_trace_.clear();
    batch_drained_ = 0;
  }
}

void BatchedFpgaBackend::enable_stream_trace() {
  tracing_ = true;
  batch_trace_.clear();
  batch_drained_ = 0;
  cur_ops_.clear();
  trace_frames_.clear();
  accel_.set_trace(&batch_trace_);
}

std::vector<std::vector<detail::StreamOp>> BatchedFpgaBackend::take_stream_trace() {
  tracing_ = false;
  accel_.set_trace(nullptr);
  return std::move(trace_frames_);
}

void BatchedFpgaBackend::drain_trace(Phase stage) {
  for (; batch_drained_ < batch_trace_.size(); ++batch_drained_) {
    const auto& b = batch_trace_[batch_drained_];
    detail::StreamOp op;
    op.kind = detail::StreamOp::Kind::kBatch;
    op.stage = static_cast<int>(stage);
    op.words_in = b.words_in;
    op.words_out = b.words_out;
    op.compute_cycles = b.compute_cycles;
    op.after_barrier = b.after_barrier;
    cur_ops_.push_back(op);
  }
}

void BatchedFpgaBackend::push_stage_boundary(Phase stage) {
  // A leading or doubled boundary carries no information (the next frame's
  // set_phase(kPrep) re-exits the previous frame's kInverse after
  // finish_frame already drained it) — skip those.
  if (cur_ops_.empty() ||
      cur_ops_.back().kind == detail::StreamOp::Kind::kStageBoundary) {
    return;
  }
  detail::StreamOp op;
  op.kind = detail::StreamOp::Kind::kStageBoundary;
  op.stage = static_cast<int>(stage);
  cur_ops_.push_back(op);
}

void BatchedFpgaBackend::sync(Phase charge_to) {
  accel_.flush();
  const SimDuration now = timeline_.makespan();
  ledger_add(charge_to, now - mark_);
  const SimDuration pl_busy = timeline_.busy_time(pl_) + timeline_.busy_time(dma_);
  ledger_add_pl(charge_to, pl_busy - mark_pl_busy_);
  mark_ = now;
  mark_pl_busy_ = pl_busy;
  // A phase consumes the previous phase's outputs: later PS work must wait
  // for the drain point.
  ps_ready_ = now;
}

// --- frame-level pipelining -------------------------------------------------

namespace {

struct StageCost {
  SimDuration ps, pl;
  const char* label;
};

SimDuration clamp_nonneg(SimDuration d) {
  return d > SimDuration::zero() ? d : SimDuration::zero();
}

}  // namespace

PipelineRunResult run_pipelined(TransformBackend& backend,
                                const std::vector<FramePair>& frames,
                                const PipelineOptions& options) {
  PipelineRunResult result;
  result.frames = static_cast<int>(frames.size());

  // Pass 1: serial numerics + per-frame stage costs split into the work the
  // PS core must execute and the PL-resident remainder it may overlap.
  //
  // Cross-frame streaming (ISSUE 9) records each frame's op stream during
  // this same pass; backends without a batch trace fall back to the legacy
  // stage-granular overlap silently.
  constexpr int kStages = 4;
  BatchedFpgaBackend* streaming_backend = nullptr;
  if (options.overlap && options.cross_frame) {
    streaming_backend = dynamic_cast<BatchedFpgaBackend*>(&backend);
    if (streaming_backend) streaming_backend->enable_stream_trace();
  }
  TimedFusionRunner runner(backend, options.fuse);
  std::vector<std::array<StageCost, kStages>> cost;
  cost.reserve(frames.size());
  for (const FramePair& pair : frames) {
    const FrameRunResult r = runner.run_frame_pair(pair.visible, pair.thermal);
    result.serial_total += r.times.total();
    cost.push_back({{
        {clamp_nonneg(r.times.prep - r.pl_times.prep), r.pl_times.prep, "prep"},
        {clamp_nonneg(r.times.forward - r.pl_times.forward), r.pl_times.forward,
         "fwd"},
        {clamp_nonneg(r.times.fusion - r.pl_times.fusion), r.pl_times.fusion,
         "fus"},
        {clamp_nonneg(r.times.inverse - r.pl_times.inverse), r.pl_times.inverse,
         "inv"},
    }});
  }

  // Pass 2: re-schedule the stages on a fresh timeline. The PS part of a
  // stage (driver calls, fusion rule, prep) runs on the PS core; the PL part
  // follows it on the engine+DMA resource. Stages of one frame chain by data
  // dependency; stages of *different* frames share only the resources, which
  // is where the overlap comes from.
  //
  // Energy in both branches: `energy_mj` keeps the paper's methodology (the
  // loaded bitstream's +3.6% draw for the whole run when the backend uses
  // the PL at all); `energy_gated_mj` charges the engine draw only while the
  // PL/DMA resource is actually busy — and because intervals are merged,
  // concurrent PS+PL activity is charged once.
  const power::ComputeMode mode = backend.compute_mode();
  if (streaming_backend) {
    // Streaming replay: the captured batch stream re-schedules at line
    // granularity on one core + one engine slot (with its own DMA channel).
    // Ping-pong buffer state persists across frames, so the next frame's
    // rows fill buffer B while the current frame's last batch computes out
    // of buffer A, and descriptor chains amortize the driver entry.
    detail::StreamingStreamInput in;
    in.arrivals.assign(frames.size(), SimDuration::zero());
    in.frame_ops = streaming_backend->take_stream_trace();
    in.engine = streaming_backend->accelerator().engine();
    in.costs = streaming_backend->accelerator().costs();
    in.sg_chain_len = streaming_backend->accelerator().batching().sg_chain_len;
    const detail::FleetSchedule sched = detail::schedule_streaming(
        {in}, /*cores=*/1, /*engines=*/1, options.depth < 1 ? 1 : options.depth,
        /*steal_engines=*/true, /*spill_wait_frac=*/0.0);
    result.makespan = sched.timeline.makespan();
    result.ps_busy = sched.timeline.busy_time(sched.cores[0]);
    result.pl_busy = sched.timeline.busy_time(sched.engines[0]) +
                     sched.timeline.busy_time(sched.dmas[0]);
    const detail::FleetEnergy energy = detail::integrate_fleet_energy(
        sched.timeline, {sched.engines[0], sched.dmas[0]}, mode);
    result.energy_mj = energy.loaded_mj;
    result.energy_gated_mj = energy.gated_mj;
  } else if (options.overlap) {
    // Overlapped schedule = a 1-stream fleet with every frame ready at t=0
    // and an unbounded queue. Sharing detail::schedule_fleet (rather than a
    // second scheduler) is what makes the fleet's 1-stream case reproduce
    // this path bit-for-bit (tests/test_fleet.cpp).
    detail::FleetStreamInput in;
    in.arrivals.assign(frames.size(), SimDuration::zero());
    in.cost.reserve(cost.size());
    for (const auto& c : cost) {
      in.cost.push_back({{{c[0].ps, c[0].pl},
                          {c[1].ps, c[1].pl},
                          {c[2].ps, c[2].pl},
                          {c[3].ps, c[3].pl}}});
    }
    const detail::FleetSchedule sched = detail::schedule_fleet(
        {in}, /*cores=*/1, /*engines=*/1,
        options.depth < 1 ? 1 : options.depth,
        /*steal_engines=*/true, /*spill_wait_frac=*/0.0);
    result.makespan = sched.timeline.makespan();
    result.ps_busy = sched.timeline.busy_time(sched.cores[0]);
    result.pl_busy = sched.timeline.busy_time(sched.engines[0]);
    const detail::FleetEnergy energy =
        detail::integrate_fleet_energy(sched.timeline, sched.engines, mode);
    result.energy_mj = energy.loaded_mj;
    result.energy_gated_mj = energy.gated_mj;
  } else {
    // Serial schedule: every stage waits for the previous one, frames do
    // not overlap — the event-queue equivalent of the additive ledger.
    Timeline tl;
    const ResourceId ps = tl.add_resource("PS core");
    const ResourceId pl = tl.add_resource("PL engine + DMA");
    const int n = result.frames;
    SimDuration prev;
    for (int f = 0; f < n; ++f) {
      for (int s = 0; s < kStages; ++s) {
        const StageCost& c = cost[static_cast<std::size_t>(f)][static_cast<std::size_t>(s)];
        SimDuration end = prev;
        if (c.ps > SimDuration::zero() || c.pl == SimDuration::zero()) {
          end = tl.schedule(ps, c.label, prev, c.ps).end;
        }
        if (c.pl > SimDuration::zero()) {
          end = tl.schedule(pl, c.label, end, c.pl).end;
        }
        prev = end;
      }
    }
    result.makespan = tl.makespan();
    result.ps_busy = tl.busy_time(ps);
    result.pl_busy = tl.busy_time(pl);
    const detail::FleetEnergy energy =
        detail::integrate_fleet_energy(tl, {pl}, mode);
    result.energy_mj = energy.loaded_mj;
    result.energy_gated_mj = energy.gated_mj;
  }
  result.sustained_fps =
      result.makespan.sec() > 0.0 ? result.frames / result.makespan.sec() : 0.0;
  return result;
}

PipelineRunResult run_pipelined(TransformBackend& backend,
                                const std::vector<FramePair>& frames,
                                const RunConfig& config) {
  PipelineOptions options;
  options.overlap = config.pipeline_depth > 1;
  options.depth = config.pipeline_depth;
  options.cross_frame = config.cross_frame;
  options.fuse = config.fuse;
  return run_pipelined(backend, frames, options);
}

PipelineRunResult probe_pipelined(TransformBackend& backend, const FrameSize& size,
                                  int frames, const PipelineOptions& options) {
  return run_pipelined(backend, make_sweep_frames(size, frames), options);
}

PipelineRunResult probe_pipelined(TransformBackend& backend,
                                  const RunConfig& config) {
  return run_pipelined(
      backend, make_sweep_frames(config.frame_size, config.frames), config);
}

}  // namespace vf::sched

#include "src/sched/pipeline.h"

#include <algorithm>
#include <array>

#include "src/hw/clock.h"
#include "src/hw/cost_constants.h"
#include "src/power/recorder.h"
#include "src/simd/kernels.h"

namespace vf::sched {

// --- BatchedFpgaBackend -----------------------------------------------------

// Batch submission and buffer ping-pong depend only on the request sequence
// (sizes + barriers), never on sample values, so the whole Timeline
// interaction lives in accounting: the serial account_*/barrier() replay
// reproduces the exact event schedule at any host thread count. The fusion
// rule routes through kernels() (the dispatch set) instead of hard-coding
// the scalar magnitude/select kernels as the old combined overrides did.
class BatchedFpgaBackend::Filter : public dwt::LineFilter {
 public:
  Filter(BatchedFpgaBackend* owner, driver::PipelinedWaveletAccelerator* accel)
      : owner_(owner), accel_(accel), cpu_(arm_cost_model()) {}

  void barrier() override { accel_->barrier(); }

  ThreadPool* pool() const override { return owner_->host_pool(); }

  void account_analyze(int out_len, int taps) override {
    detail::check_engine_fit(accel_->engine(), taps, /*synthesis=*/false);
    accel_->submit_line(2 * out_len + taps, 2 * out_len,
                        hw::cost::engine_compute_cycles(out_len,
                                                        accel_->engine().slots));
  }

  void account_synthesize(int pairs, int taps) override {
    detail::check_engine_fit(accel_->engine(), taps, /*synthesis=*/true);
    accel_->submit_line(2 * pairs + taps, 2 * pairs,
                        hw::cost::engine_compute_cycles(pairs,
                                                        accel_->engine().slots));
  }

  void account_magnitude(int n) override {
    owner_->charge(hw::ps_clock().cycles(cpu_.magnitude_cycles_per_sample * n));
  }

  void account_select(int n) override {
    owner_->charge(hw::ps_clock().cycles(cpu_.select_cycles_per_sample * n));
  }

 private:
  BatchedFpgaBackend* owner_;
  driver::PipelinedWaveletAccelerator* accel_;
  CpuCostModel cpu_;
};

BatchedFpgaBackend::BatchedFpgaBackend(const Options& options)
    : TransformBackend(options.host),
      ps_(timeline_.add_resource("PS core")),
      dma_(timeline_.add_resource("ACP DMA")),
      pl_(timeline_.add_resource("PL engine")),
      accel_(options.engine, options.driver_costs, options.batching, &timeline_,
             ps_, dma_, pl_),
      filter_(std::make_unique<Filter>(this, &accel_)) {}

BatchedFpgaBackend::~BatchedFpgaBackend() = default;

dwt::LineFilter& BatchedFpgaBackend::line_filter() { return *filter_; }

void BatchedFpgaBackend::charge(SimDuration d) {
  // Generic PS work (prep, fusion-rule kernels) becomes a PS event; the
  // ledger is reconciled from the makespan at the next sync, so no direct
  // ledger_add here — adding both would double-charge.
  timeline_.schedule(ps_, "ps", ps_ready_, d);
}

void BatchedFpgaBackend::on_phase_exit(Phase old_phase) { sync(old_phase); }

void BatchedFpgaBackend::finish_frame() { sync(phase()); }

void BatchedFpgaBackend::sync(Phase charge_to) {
  accel_.flush();
  const SimDuration now = timeline_.makespan();
  ledger_add(charge_to, now - mark_);
  const SimDuration pl_busy = timeline_.busy_time(pl_) + timeline_.busy_time(dma_);
  ledger_add_pl(charge_to, pl_busy - mark_pl_busy_);
  mark_ = now;
  mark_pl_busy_ = pl_busy;
  // A phase consumes the previous phase's outputs: later PS work must wait
  // for the drain point.
  ps_ready_ = now;
}

// --- frame-level pipelining -------------------------------------------------

namespace {

struct StageCost {
  SimDuration ps, pl;
  const char* label;
};

SimDuration clamp_nonneg(SimDuration d) {
  return d > SimDuration::zero() ? d : SimDuration::zero();
}

}  // namespace

PipelineRunResult run_pipelined(TransformBackend& backend,
                                const std::vector<FramePair>& frames,
                                const PipelineOptions& options) {
  PipelineRunResult result;
  result.frames = static_cast<int>(frames.size());

  // Pass 1: serial numerics + per-frame stage costs split into the work the
  // PS core must execute and the PL-resident remainder it may overlap.
  constexpr int kStages = 4;
  TimedFusionRunner runner(backend, options.fuse);
  std::vector<std::array<StageCost, kStages>> cost;
  cost.reserve(frames.size());
  for (const FramePair& pair : frames) {
    const FrameRunResult r = runner.run_frame_pair(pair.visible, pair.thermal);
    result.serial_total += r.times.total();
    cost.push_back({{
        {clamp_nonneg(r.times.prep - r.pl_times.prep), r.pl_times.prep, "prep"},
        {clamp_nonneg(r.times.forward - r.pl_times.forward), r.pl_times.forward,
         "fwd"},
        {clamp_nonneg(r.times.fusion - r.pl_times.fusion), r.pl_times.fusion,
         "fus"},
        {clamp_nonneg(r.times.inverse - r.pl_times.inverse), r.pl_times.inverse,
         "inv"},
    }});
  }

  // Pass 2: re-schedule the stages on a fresh two-resource timeline. The PS
  // part of a stage (driver calls, fusion rule, prep) runs on the PS core;
  // the PL part follows it on the engine+DMA resource. Stages of one frame
  // chain by data dependency; stages of *different* frames share only the
  // resources, which is where the overlap comes from.
  Timeline tl;
  const ResourceId ps = tl.add_resource("PS core");
  const ResourceId pl = tl.add_resource("PL engine + DMA");
  const int n = result.frames;
  std::vector<SimDuration> stage_done(static_cast<std::size_t>(n) * kStages);
  auto done = [&](int f, int s) -> SimDuration& {
    return stage_done[static_cast<std::size_t>(f) * kStages + s];
  };

  auto schedule_stage = [&](int f, int s, SimDuration ready) {
    const StageCost& c = cost[f][s];
    SimDuration end = ready;
    if (c.ps > SimDuration::zero() || c.pl == SimDuration::zero()) {
      end = tl.schedule(ps, c.label, ready, c.ps).end;
    }
    if (c.pl > SimDuration::zero()) {
      end = tl.schedule(pl, c.label, end, c.pl).end;
    }
    done(f, s) = end;
  };

  if (options.overlap) {
    // Software-pipeline order: in each slot, the oldest in-flight frame's
    // stage is placed first so the greedy per-resource schedule fills the
    // PS with frame N-1's fusion and frame N+1's prep while the PL engine
    // transforms frame N.
    for (int slot = 0; slot < n + kStages - 1; ++slot) {
      for (int s = kStages - 1; s >= 0; --s) {
        const int f = slot - s;
        if (f < 0 || f >= n) continue;
        schedule_stage(f, s, s == 0 ? SimDuration::zero() : done(f, s - 1));
      }
    }
  } else {
    // Serial schedule: every stage waits for the previous one, frames do
    // not overlap — the event-queue equivalent of the additive ledger.
    SimDuration prev;
    for (int f = 0; f < n; ++f) {
      for (int s = 0; s < kStages; ++s) {
        schedule_stage(f, s, prev);
        prev = done(f, s);
      }
    }
  }

  result.makespan = tl.makespan();
  result.ps_busy = tl.busy_time(ps);
  result.pl_busy = tl.busy_time(pl);
  result.sustained_fps =
      result.makespan.sec() > 0.0 ? result.frames / result.makespan.sec() : 0.0;

  // Energy: integrate mode power against the timeline. `energy_mj` keeps the
  // paper's methodology (the loaded bitstream's +3.6% draw for the whole
  // run when the backend uses the PL at all); `energy_gated_mj` charges the
  // engine draw only while the PL/DMA resource is actually busy — and
  // because intervals are merged, concurrent PS+PL activity is charged once.
  const power::PowerModel pm;
  const power::ComputeMode mode = backend.compute_mode();
  power::PowerRecorder loaded(pm, SimDuration::milliseconds(1));
  loaded.run_timeline(tl, {pl}, /*idle=*/mode, /*active=*/mode);
  result.energy_mj = loaded.exact_energy_mj();
  power::PowerRecorder gated(pm, SimDuration::milliseconds(1));
  gated.run_timeline(tl, {pl}, power::ComputeMode::kArmOnly, mode);
  result.energy_gated_mj = gated.exact_energy_mj();
  return result;
}

PipelineRunResult probe_pipelined(TransformBackend& backend, const FrameSize& size,
                                  int frames, const PipelineOptions& options) {
  return run_pipelined(backend, make_sweep_frames(size, frames), options);
}

}  // namespace vf::sched

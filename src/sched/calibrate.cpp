#include "src/sched/calibrate.h"

#include "src/hw/cost_constants.h"

namespace vf::sched {

ThresholdCalibration calibrate_adaptive_threshold(CrossoverMetric metric,
                                                  const fusion::FuseConfig& config,
                                                  int frames) {
  ThresholdCalibration cal;
  // Candidate grid brackets the shipped default threshold
  // (hw::cost::kAdaptiveThresholdSamples): the extremes pin all-FPGA (0) and
  // all-NEON (1 << 20) routing so the sweep always contains both static
  // engines as degenerate cases.
  cal.candidates = {0,  16, 24, 32,
                   36, 40, hw::cost::kAdaptiveThresholdSamples, 48,
                   56, 64, 80, 96,
                   128, 1 << 20};
  const std::vector<FrameSize> sizes = paper_frame_sizes();
  for (const int threshold : cal.candidates) {
    double cost = 0.0;
    for (const FrameSize& size : sizes) {
      RunConfig run;
      run.adaptive_threshold_samples = threshold;
      AdaptiveBackend backend(run);
      const ProbeResult r = probe_backend(backend, size, frames, config);
      cost += metric == CrossoverMetric::kTotalTime ? r.total.sec() : r.energy_mj;
    }
    cal.costs.push_back(cost);
    if (cal.costs.size() == 1 || cost < cal.best_cost) {
      cal.best_cost = cost;
      cal.best_threshold = threshold;
    }
  }
  return cal;
}

}  // namespace vf::sched

// make_backend(): the one construction path for transform backends (PR 7
// API redesign). Everything — benches, tests, calibrate, the fleet
// scheduler — builds backends through here.
#include <cstdio>
#include <cstdlib>

#include "src/fusion/dwt_fusion.h"
#include "src/sched/pipeline.h"
#include "src/sched/run_config.h"
#include "src/simd/dispatch.h"

namespace vf::sched {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kArm:
      return "ARM";
    case BackendKind::kNeon:
      return "NEON";
    case BackendKind::kFpga:
      return "FPGA";
    case BackendKind::kFpgaBatched:
      return "FPGA+batch";
    case BackendKind::kAdaptive:
      return "Adaptive";
  }
  return "?";
}

std::unique_ptr<TransformBackend> make_backend(BackendKind kind,
                                               const RunConfig& config) {
  if (!config.kernels.empty() &&
      !simd::set_active_kernels(config.kernels.c_str())) {
    // A silent fallback would misreport which numerics produced the run.
    std::fprintf(stderr, "fatal: unknown kernel flavour '%s' in RunConfig\n",
                 config.kernels.c_str());
    std::abort();
  }
  if (!config.host_layout.empty()) {
    if (config.host_layout == "fused") {
      dwt::set_host_layout(dwt::HostLayout::kFused);
    } else if (config.host_layout == "tiled") {
      dwt::set_host_layout(dwt::HostLayout::kTiled);
    } else if (config.host_layout == "naive") {
      dwt::set_host_layout(dwt::HostLayout::kNaive);
    } else {
      std::fprintf(stderr, "fatal: unknown host layout '%s' in RunConfig\n",
                   config.host_layout.c_str());
      std::abort();
    }
  }
  switch (kind) {
    case BackendKind::kArm:
      return std::make_unique<ArmBackend>(config);
    case BackendKind::kNeon:
      return std::make_unique<NeonBackend>(config);
    case BackendKind::kFpga:
      return std::make_unique<FpgaBackend>(config);
    case BackendKind::kFpgaBatched:
      return std::make_unique<BatchedFpgaBackend>(config);
    case BackendKind::kAdaptive:
      return std::make_unique<AdaptiveBackend>(config);
  }
  return nullptr;
}

}  // namespace vf::sched

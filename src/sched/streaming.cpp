#include "src/sched/streaming.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/hw/clock.h"
#include "src/hw/cost_constants.h"

namespace vf::sched::detail {

namespace {

constexpr const char* kStageLabels[4] = {"prep", "fwd", "fus", "inv"};

SimDuration max_of(SimDuration a, SimDuration b) { return a > b ? a : b; }

}  // namespace

void append_sliced_ps(std::vector<StreamOp>* ops, int stage, SimDuration d) {
  if (!(d > SimDuration::zero())) return;
  const SimDuration quantum =
      hw::ps_clock().cycles(hw::cost::kStreamPsSliceCycles);
  int n = 1;
  if (d > quantum) n = static_cast<int>(std::ceil(d / quantum));
  if (n < 1) n = 1;
  const SimDuration slice = d * (1.0 / n);
  for (int i = 0; i < n; ++i) {
    StreamOp op;
    op.kind = StreamOp::Kind::kPs;
    op.stage = stage;
    op.ps = slice;
    ops->push_back(op);
  }
}

std::vector<StreamOp> stage_cost_ops(const std::array<FleetStageCost, 4>& cost) {
  std::vector<StreamOp> ops;
  for (int g = 0; g < 4; ++g) {
    append_sliced_ps(&ops, g, cost[static_cast<std::size_t>(g)].ps);
    if (cost[static_cast<std::size_t>(g)].pl > SimDuration::zero()) {
      StreamOp pl;
      pl.kind = StreamOp::Kind::kPlBlock;
      pl.stage = g;
      pl.ps = cost[static_cast<std::size_t>(g)].pl;
      ops.push_back(pl);
    }
    if (g < 3) {
      StreamOp boundary;
      boundary.kind = StreamOp::Kind::kStageBoundary;
      boundary.stage = g;
      ops.push_back(boundary);
    }
  }
  return ops;
}

FleetSchedule schedule_streaming(const std::vector<StreamingStreamInput>& streams,
                                 int cores, int engines, int pipeline_depth,
                                 bool steal_engines, double spill_wait_frac) {
  FleetSchedule out;
  const int ns = static_cast<int>(streams.size());
  if (cores < 1) cores = 1;
  if (engines < 1) engines = 1;
  if (pipeline_depth < 1) pipeline_depth = 1;
  for (int c = 0; c < cores; ++c) {
    out.cores.push_back(out.timeline.add_resource("PS core " + std::to_string(c)));
  }
  for (int e = 0; e < engines; ++e) {
    out.engines.push_back(
        out.timeline.add_resource("PL engine " + std::to_string(e)));
    out.dmas.push_back(out.timeline.add_resource("ACP DMA " + std::to_string(e)));
  }

  // Per-engine streaming state. The ping-pong buffers and the armed
  // descriptor chain live with the engine slot, not with a frame or a
  // stream: that is what lets the next frame's rows start filling buffer B
  // while the current frame's last batch still computes out of buffer A.
  struct EngineState {
    SimDuration buffer_free[2];
    long long batches = 0;  // flips the ping-pong buffer
    int chain_pos = 0;
    int chain_owner = -1;  // stream id; a switch re-arms the chain
  };
  std::vector<EngineState> eng(static_cast<std::size_t>(engines));

  struct FrameState {
    int op_ptr = 0;
    bool started = false;
    bool use_spill = false;
    SimDuration ps_end;        // this frame's serial PS chain (floor: arrival)
    SimDuration dep_ready;     // barrier fence for batch inputs
    SimDuration last_out_end;  // drain point of this frame's outputs so far
  };
  struct StreamState {
    int arrival_ptr = 0;
    int queue_len = 0;   // admitted frames whose first op has not dispatched
    int in_flight = 0;   // started, last op not yet committed
    int next_start = 0;  // index into `admitted` of the first unstarted frame
    std::vector<int> admitted;
    std::vector<FrameState> fs;
  };
  std::vector<StreamState> state(static_cast<std::size_t>(ns));
  out.frames.resize(static_cast<std::size_t>(ns));
  out.stream_ps_busy.assign(static_cast<std::size_t>(ns), SimDuration::zero());
  out.stream_pl_busy.assign(static_cast<std::size_t>(ns), SimDuration::zero());
  for (int s = 0; s < ns; ++s) {
    const std::size_t n = streams[static_cast<std::size_t>(s)].arrivals.size();
    state[static_cast<std::size_t>(s)].fs.resize(n);
    out.frames[static_cast<std::size_t>(s)].resize(n);
  }

  auto stream_at = [&](int s) -> const StreamingStreamInput& {
    return streams[static_cast<std::size_t>(s)];
  };
  auto core_of = [&](int s) { return out.cores[static_cast<std::size_t>(s % cores)]; };
  auto frame_ops = [&](int s, int f) -> const std::vector<StreamOp>& {
    const StreamingStreamInput& in = stream_at(s);
    const FrameState& fs =
        state[static_cast<std::size_t>(s)].fs[static_cast<std::size_t>(f)];
    return fs.use_spill && !in.spill_ops.empty()
               ? in.spill_ops[static_cast<std::size_t>(f)]
               : in.frame_ops[static_cast<std::size_t>(f)];
  };
  // Earliest-free engine this stream may use (same policy as schedule_fleet:
  // any engine when stealing, the home slot otherwise; ties prefer home,
  // then the lowest id).
  auto pick_engine = [&](int s) {
    const int home = ((stream_at(s).home_engine % engines) + engines) % engines;
    if (!steal_engines) return home;
    int best = home;
    SimDuration best_free =
        out.timeline.free_at(out.engines[static_cast<std::size_t>(home)]);
    for (int e = 0; e < engines; ++e) {
      const SimDuration free =
          out.timeline.free_at(out.engines[static_cast<std::size_t>(e)]);
      if (free < best_free) {
        best = e;
        best_free = free;
      }
    }
    return best;
  };
  // Stage-boundary ops are pure bookkeeping (no resource time): a phase
  // consumes the previous phase's outputs, so the frame's PS chain may not
  // continue before its drain point, and later batches see the new fence.
  auto apply_boundaries = [&](int s, int f) {
    FrameState& fs =
        state[static_cast<std::size_t>(s)].fs[static_cast<std::size_t>(f)];
    const std::vector<StreamOp>& ops = frame_ops(s, f);
    while (fs.op_ptr < static_cast<int>(ops.size()) &&
           ops[static_cast<std::size_t>(fs.op_ptr)].kind ==
               StreamOp::Kind::kStageBoundary) {
      fs.ps_end = max_of(fs.ps_end, fs.last_out_end);
      fs.dep_ready = fs.last_out_end;
      ++fs.op_ptr;
    }
  };
  // Feasible (ready, start) of frame (s, f)'s next op, without mutating.
  auto op_times = [&](int s, int f, SimDuration* ready_out) {
    const FrameState& fs =
        state[static_cast<std::size_t>(s)].fs[static_cast<std::size_t>(f)];
    const StreamOp& op = frame_ops(s, f)[static_cast<std::size_t>(fs.op_ptr)];
    SimDuration ready = fs.ps_end;
    SimDuration start;
    switch (op.kind) {
      case StreamOp::Kind::kBatch: {
        const int e = pick_engine(s);
        const EngineState& es = eng[static_cast<std::size_t>(e)];
        const int buf =
            stream_at(s).costs.double_buffering ? (es.batches & 1) : 0;
        ready = max_of(ready, op.after_barrier ? fs.last_out_end : fs.dep_ready);
        ready = max_of(ready, es.buffer_free[buf]);
        start = max_of(ready, out.timeline.free_at(core_of(s)));
        break;
      }
      case StreamOp::Kind::kPlBlock: {
        const int e = pick_engine(s);
        start = max_of(ready, out.timeline.free_at(
                                  out.engines[static_cast<std::size_t>(e)]));
        break;
      }
      default:
        start = max_of(ready, out.timeline.free_at(core_of(s)));
        break;
    }
    *ready_out = ready;
    return start;
  };

  // Event-driven dispatch, one op per iteration: commit the eligible op
  // with the earliest feasible start (ties: lower stream, then older
  // frame), unless the next arrival comes strictly earlier — the
  // admission/drop decision is made at the arrival instant, after earlier
  // work has left the queue (same contract as schedule_fleet).
  for (;;) {
    int bs = -1, bframe = -1;
    SimDuration bready, bstart;
    for (int s = 0; s < ns; ++s) {
      StreamState& st = state[static_cast<std::size_t>(s)];
      const int candidates = st.next_start < static_cast<int>(st.admitted.size()) &&
                                     st.in_flight < pipeline_depth
                                 ? st.next_start + 1
                                 : st.next_start;
      for (int i = 0; i < candidates; ++i) {
        const int f = st.admitted[static_cast<std::size_t>(i)];
        const FrameState& fs = st.fs[static_cast<std::size_t>(f)];
        if (fs.op_ptr >= static_cast<int>(frame_ops(s, f).size())) continue;
        SimDuration ready;
        const SimDuration start = op_times(s, f, &ready);
        const bool better =
            bs < 0 || start < bstart ||
            (start == bstart && (s < bs || (s == bs && f < bframe)));
        if (better) {
          bs = s;
          bframe = f;
          bready = ready;
          bstart = start;
        }
      }
    }

    int as = -1;
    SimDuration at;
    for (int s = 0; s < ns; ++s) {
      const StreamState& st = state[static_cast<std::size_t>(s)];
      if (st.arrival_ptr >= static_cast<int>(stream_at(s).arrivals.size())) continue;
      const SimDuration a =
          stream_at(s).arrivals[static_cast<std::size_t>(st.arrival_ptr)];
      if (as < 0 || a < at) {
        as = s;
        at = a;
      }
    }

    if (bs < 0 && as < 0) break;

    if (as >= 0 && (bs < 0 || at < bstart)) {
      StreamState& st = state[static_cast<std::size_t>(as)];
      const int f = st.arrival_ptr++;
      const StreamingStreamInput& in = stream_at(as);
      if (in.queue_depth > 0 && st.queue_len >= in.queue_depth) {
        out.frames[static_cast<std::size_t>(as)][static_cast<std::size_t>(f)]
            .dropped = true;
      } else {
        st.admitted.push_back(f);
        ++st.queue_len;
        st.fs[static_cast<std::size_t>(f)].ps_end = in.arrivals[static_cast<std::size_t>(f)];
        apply_boundaries(as, f);
      }
      continue;
    }

    StreamState& st = state[static_cast<std::size_t>(bs)];
    const StreamingStreamInput& in = stream_at(bs);
    FrameState& fs = st.fs[static_cast<std::size_t>(bframe)];
    FleetFrameOutcome& outcome =
        out.frames[static_cast<std::size_t>(bs)][static_cast<std::size_t>(bframe)];
    if (!fs.started) {
      fs.started = true;
      --st.queue_len;
      ++st.in_flight;
      ++st.next_start;
      // Spill decision at first dispatch (schedule_fleet's policy): when
      // the shortest engine wait measured from the arrival already exceeds
      // the configured fraction of the frame period, this frame runs on
      // the NEON cost model instead of queueing on the saturated PL.
      if (spill_wait_frac > 0.0 && !in.spill_ops.empty() &&
          in.period > SimDuration::zero()) {
        const SimDuration engine_free = out.timeline.free_at(
            out.engines[static_cast<std::size_t>(pick_engine(bs))]);
        const SimDuration arrival =
            in.arrivals[static_cast<std::size_t>(bframe)];
        const SimDuration wait =
            engine_free > arrival ? engine_free - arrival : SimDuration::zero();
        if (wait > in.period * spill_wait_frac) {
          fs.use_spill = true;
          outcome.spilled = true;
          apply_boundaries(bs, bframe);
          // The op list changed: re-evaluate the whole candidate set.
          continue;
        }
      }
    }

    const StreamOp& op =
        frame_ops(bs, bframe)[static_cast<std::size_t>(fs.op_ptr)];
    const char* label = kStageLabels[op.stage & 3];
    switch (op.kind) {
      case StreamOp::Kind::kPs: {
        const Timeline::Event ev =
            out.timeline.schedule(core_of(bs), label, bready, op.ps);
        fs.ps_end = ev.end;
        out.stream_ps_busy[static_cast<std::size_t>(bs)] += ev.duration();
        break;
      }
      case StreamOp::Kind::kBatch: {
        const int e = pick_engine(bs);
        EngineState& es = eng[static_cast<std::size_t>(e)];
        if (es.chain_owner != bs) {
          es.chain_owner = bs;
          es.chain_pos = 0;
        }
        const int chain_len = in.sg_chain_len < 1 ? 1 : in.sg_chain_len;
        const bool head = es.chain_pos == 0;
        const int buf = in.costs.double_buffering ? (es.batches & 1) : 0;
        if (op.after_barrier) fs.dep_ready = fs.last_out_end;
        const SimDuration ready =
            max_of(max_of(fs.ps_end, fs.dep_ready), es.buffer_free[buf]);
        const Timeline::Event drv = out.timeline.schedule(
            core_of(bs), head ? "drv" : "desc", ready,
            head ? driver::driver_call_time(in.costs)
                 : driver::sg_desc_build_time(in.costs));
        SimDuration in_time =
            driver::transfer_time(in.engine, in.costs, op.words_in);
        if (!head) in_time += driver::sg_desc_fetch_time(in.costs);
        const Timeline::Event ine = out.timeline.schedule(
            out.dmas[static_cast<std::size_t>(e)], "in", drv.end, in_time);
        const Timeline::Event comp = out.timeline.schedule(
            out.engines[static_cast<std::size_t>(e)], "comp", ine.end,
            hw::pl_clock().cycles(op.compute_cycles));
        const Timeline::Event oute = out.timeline.schedule(
            out.dmas[static_cast<std::size_t>(e)], "out", comp.end,
            driver::transfer_time(in.engine, in.costs, op.words_out));
        es.buffer_free[buf] = comp.end;
        ++es.batches;
        es.chain_pos = (es.chain_pos + 1) % chain_len;
        fs.ps_end = drv.end;
        fs.last_out_end = max_of(fs.last_out_end, oute.end);
        out.stream_ps_busy[static_cast<std::size_t>(bs)] += drv.duration();
        out.stream_pl_busy[static_cast<std::size_t>(bs)] +=
            ine.duration() + comp.duration() + oute.duration();
        break;
      }
      case StreamOp::Kind::kPlBlock: {
        const int e = pick_engine(bs);
        const Timeline::Event ev = out.timeline.schedule(
            out.engines[static_cast<std::size_t>(e)], label, bready, op.ps);
        fs.ps_end = ev.end;
        fs.last_out_end = max_of(fs.last_out_end, ev.end);
        out.stream_pl_busy[static_cast<std::size_t>(bs)] += ev.duration();
        break;
      }
      case StreamOp::Kind::kStageBoundary:
        // Consumed by apply_boundaries; never a committed candidate.
        break;
    }
    ++fs.op_ptr;
    apply_boundaries(bs, bframe);
    if (fs.op_ptr >= static_cast<int>(frame_ops(bs, bframe).size())) {
      --st.in_flight;
      outcome.completion = max_of(fs.ps_end, fs.last_out_end);
      outcome.latency =
          outcome.completion - in.arrivals[static_cast<std::size_t>(bframe)];
    }
  }
  return out;
}

}  // namespace vf::sched::detail

// Self-calibration of the adaptive router's crossover threshold.
//
// Sweeps candidate thresholds over the paper's frame-size sweep and picks
// the one minimizing total modeled time or energy — the run-time
// intelligence the paper's future-work section calls for.
#pragma once

#include <vector>

#include "src/sched/adaptive.h"

namespace vf::sched {

enum class CrossoverMetric { kTotalTime, kEnergy };

struct ThresholdCalibration {
  int best_threshold = 0;
  double best_cost = 0.0;  // seconds (kTotalTime) or mJ (kEnergy), sweep total
  std::vector<int> candidates;
  std::vector<double> costs;  // one per candidate, same units as best_cost
};

ThresholdCalibration calibrate_adaptive_threshold(
    CrossoverMetric metric, const fusion::FuseConfig& config = {}, int frames = 4);

}  // namespace vf::sched

// Cross-frame line streaming replay (ISSUE 9 tentpole).
//
// The legacy overlapped schedule (run_pipelined pass 2 / schedule_fleet)
// works at *stage* granularity: each frame's forward/inverse transform is
// one opaque PL block, so the engine drains at every frame and stage
// boundary and the PS pays one full driver entry per batch. This module
// replays the pass-1 measurement at *batch* granularity instead:
//
//   - the op stream of every frame (PS slices, line batches, barriers,
//     stage boundaries) is captured during the serial measurement pass
//     (BatchedFpgaBackend::enable_stream_trace) and re-scheduled on a
//     shared Timeline with per-engine ping-pong buffer state that
//     persists across frame, level, and stream boundaries — buffer B
//     refills from the next frame's rows while buffer A's last batch is
//     still on the engine;
//   - one ioctl arms a scatter-gather descriptor chain of up to
//     sg_chain_len batches; continuation batches pay only the descriptor
//     build/fetch charges (DriverCosts::sg_*), so the ~12k-cycle driver
//     entry amortizes across the chain. A chain closes when the engine
//     switches streams (new ioctl context) or the chain fills;
//   - long PS charges are sliced at kStreamPsSliceCycles so the modeled
//     interrupt-driven driver can interleave descriptor appends (keeping
//     the PL fed) with application work like the next frame's prep.
//
// Dispatch is the same deterministic non-delay policy as schedule_fleet,
// one op at a time: among all eligible next-ops (admitted, in the
// pipeline-depth window), the earliest feasible start commits first; ties
// break by stream, then frame. Numerics are untouched — pass 1 runs the
// exact serial schedule, so fused outputs and serial totals stay
// bit-identical with streaming on or off (tests/test_streaming.cpp).
#pragma once

#include <array>
#include <vector>

#include "src/hw/driver.h"
#include "src/sched/fleet.h"

namespace vf::sched::detail {

// One schedulable unit of a frame's replayed execution.
struct StreamOp {
  enum class Kind {
    kPs,             // PS-core work slice (prep, fusion rule, spill)
    kBatch,          // one accelerator batch: drv/desc + in + comp + out
    kPlBlock,        // opaque PL block (stage-granular streams, e.g. kFpga)
    kStageBoundary,  // phase-exit sync: later PS work waits for the drain
  };
  Kind kind = Kind::kPs;
  int stage = 0;  // 0..3 (prep/fwd/fus/inv), for event labels
  SimDuration ps;              // kPs / kPlBlock duration
  int words_in = 0;            // kBatch
  int words_out = 0;           // kBatch
  double compute_cycles = 0.0; // kBatch, PL cycles
  bool after_barrier = false;  // kBatch: input depends on earlier outputs
};

// Appends `d` of PS work as one or more kPs slices of at most
// kStreamPsSliceCycles each (equal slices, deterministic count).
void append_sliced_ps(std::vector<StreamOp>* ops, int stage, SimDuration d);

// Op list of one frame from its stage-granular cost split (streams that do
// not run the batched accelerator: CPU backends, serial FPGA, NEON spill).
std::vector<StreamOp> stage_cost_ops(const std::array<FleetStageCost, 4>& cost);

// One stream's input to the streaming replay. frame_ops[f] is frame f's
// captured op list; spill_ops (when non-empty) is the all-PS NEON
// alternative the admission layer may switch a frame to.
struct StreamingStreamInput {
  std::vector<SimDuration> arrivals;
  std::vector<std::vector<StreamOp>> frame_ops;
  std::vector<std::vector<StreamOp>> spill_ops;
  SimDuration period;   // frame period; zero = batch mode (no spill)
  int queue_depth = 0;  // <= 0 = unbounded
  int home_engine = 0;
  // Modeled hardware driving this stream's kBatch ops.
  hw::WaveletEngineConfig engine;
  driver::DriverCosts costs;
  int sg_chain_len = 1;
};

// Replays the op streams on `cores` PS cores and `engines` PL engine slots
// (each with its own ACP DMA channel, listed in FleetSchedule::dmas).
// Admission, drops, the pipeline-depth window, engine stealing, and the
// NEON spill follow schedule_fleet's policies; ping-pong buffers and
// descriptor chains are per engine slot and persist across frames and
// streams (a slot switching streams re-arms its chain but keeps its
// buffer state — no drain).
FleetSchedule schedule_streaming(const std::vector<StreamingStreamInput>& streams,
                                 int cores, int engines, int pipeline_depth,
                                 bool steal_engines, double spill_wait_frac);

}  // namespace vf::sched::detail

#include "src/common/timeline.h"

#include <algorithm>
#include <cassert>

namespace vf {

ResourceId Timeline::add_resource(std::string name) {
  resources_.push_back(Resource{std::move(name), SimDuration::zero(),
                                SimDuration::zero()});
  return static_cast<ResourceId>(resources_.size()) - 1;
}

Timeline::Event Timeline::schedule(ResourceId r, std::string label,
                                   SimDuration ready, SimDuration duration) {
  assert(r >= 0 && r < resource_count());
  assert(duration >= SimDuration::zero());
  Resource& res = resources_[r];
  Event ev;
  ev.resource = r;
  ev.label = std::move(label);
  ev.start = std::max(ready, res.free_at);
  ev.end = ev.start + duration;
  res.free_at = ev.end;
  res.busy += duration;
  if (ev.end > makespan_) makespan_ = ev.end;
  events_.push_back(ev);
  return ev;
}

std::vector<std::pair<SimDuration, SimDuration>> Timeline::busy_intervals(
    const std::vector<ResourceId>& resources) const {
  std::vector<std::pair<SimDuration, SimDuration>> spans;
  for (const Event& ev : events_) {
    if (ev.end == ev.start) continue;  // zero-length events occupy no time
    for (ResourceId r : resources) {
      if (ev.resource == r) {
        spans.emplace_back(ev.start, ev.end);
        break;
      }
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<SimDuration, SimDuration>> merged;
  for (const auto& span : spans) {
    if (!merged.empty() && span.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, span.second);
    } else {
      merged.push_back(span);
    }
  }
  return merged;
}

void Timeline::clear() {
  for (Resource& res : resources_) {
    res.free_at = SimDuration::zero();
    res.busy = SimDuration::zero();
  }
  events_.clear();
  makespan_ = SimDuration::zero();
}

}  // namespace vf

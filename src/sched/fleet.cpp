#include "src/sched/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "src/common/rng.h"
#include "src/hw/fixed_point.h"
#include "src/sched/pipeline.h"
#include "src/sched/streaming.h"

namespace vf::sched {

namespace detail {

namespace {

constexpr const char* kStageLabels[4] = {"prep", "fwd", "fus", "inv"};

SimDuration max_of(SimDuration a, SimDuration b) { return a > b ? a : b; }

}  // namespace

FleetSchedule schedule_fleet(const std::vector<FleetStreamInput>& streams,
                             int cores, int engines, int pipeline_depth,
                             bool steal_engines, double spill_wait_frac) {
  FleetSchedule out;
  const int ns = static_cast<int>(streams.size());
  if (cores < 1) cores = 1;
  if (engines < 1) engines = 1;
  if (pipeline_depth < 1) pipeline_depth = 1;
  for (int c = 0; c < cores; ++c) {
    out.cores.push_back(out.timeline.add_resource("PS core " + std::to_string(c)));
  }
  for (int e = 0; e < engines; ++e) {
    out.engines.push_back(
        out.timeline.add_resource("PL engine " + std::to_string(e)));
  }

  struct StreamState {
    int arrival_ptr = 0;  // next frame whose arrival is unprocessed
    int queue_len = 0;    // admitted frames whose prep has not dispatched
    int in_flight = 0;    // prep dispatched, inverse not yet dispatched
    std::vector<int> admitted;       // admitted frame indices, arrival order
    std::array<int, 4> stage_ptr{};  // per stage: next position in `admitted`
    std::vector<std::array<SimDuration, 4>> done;  // per frame, stage end
    std::vector<char> spilled;
  };
  std::vector<StreamState> state(static_cast<std::size_t>(ns));
  out.frames.resize(static_cast<std::size_t>(ns));
  out.stream_ps_busy.assign(static_cast<std::size_t>(ns), SimDuration::zero());
  out.stream_pl_busy.assign(static_cast<std::size_t>(ns), SimDuration::zero());
  for (int s = 0; s < ns; ++s) {
    const std::size_t n = streams[static_cast<std::size_t>(s)].arrivals.size();
    state[static_cast<std::size_t>(s)].done.resize(n);
    state[static_cast<std::size_t>(s)].spilled.assign(n, 0);
    out.frames[static_cast<std::size_t>(s)].resize(n);
  }

  auto stream_at = [&](int s) -> const FleetStreamInput& {
    return streams[static_cast<std::size_t>(s)];
  };
  auto core_of = [&](int s) { return out.cores[static_cast<std::size_t>(s % cores)]; };
  auto stage_cost = [&](int s, int f, int g) -> const FleetStageCost& {
    const FleetStreamInput& in = stream_at(s);
    const bool spilled = state[static_cast<std::size_t>(s)]
                             .spilled[static_cast<std::size_t>(f)] != 0 &&
                         !in.spill_cost.empty();
    const auto& set = spilled ? in.spill_cost : in.cost;
    return set[static_cast<std::size_t>(f)][static_cast<std::size_t>(g)];
  };
  // Earliest-free engine this stream may use: any engine when stealing is
  // on, only the home engine otherwise. Ties prefer the home engine, then
  // the lowest id, so placement is deterministic.
  auto pick_engine = [&](int s) {
    const int home = ((stream_at(s).home_engine % engines) + engines) % engines;
    if (!steal_engines) return home;
    int best = home;
    SimDuration best_free = out.timeline.free_at(out.engines[static_cast<std::size_t>(home)]);
    for (int e = 0; e < engines; ++e) {
      const SimDuration free = out.timeline.free_at(out.engines[static_cast<std::size_t>(e)]);
      if (free < best_free) {
        best = e;
        best_free = free;
      }
    }
    return best;
  };

  // Event-driven dispatch: each iteration commits either the eligible stage
  // with the earliest feasible start (ties: later stage = older frame, then
  // frame, then stream) or, when one comes strictly earlier, the next
  // arrival (admission/drop decision). A dispatch whose start equals an
  // arrival time goes first — the queue is measured *at* the arrival
  // instant, after earlier work has left it.
  for (;;) {
    int bs = -1, bstage = -1, bframe = -1;
    SimDuration bready, bstart;
    for (int s = 0; s < ns; ++s) {
      StreamState& st = state[static_cast<std::size_t>(s)];
      for (int g = 3; g >= 0; --g) {
        if (st.stage_ptr[static_cast<std::size_t>(g)] >=
            static_cast<int>(st.admitted.size())) {
          continue;
        }
        const int pos = st.stage_ptr[static_cast<std::size_t>(g)];
        const int f = st.admitted[static_cast<std::size_t>(pos)];
        SimDuration ready;
        if (g == 0) {
          if (st.in_flight >= pipeline_depth) continue;
          ready = stream_at(s).arrivals[static_cast<std::size_t>(f)];
        } else {
          // Stages drain the admitted list in the same order, so stage g-1
          // of this frame has dispatched iff its pointer moved past ours.
          if (st.stage_ptr[static_cast<std::size_t>(g - 1)] <= pos) continue;
          ready = st.done[static_cast<std::size_t>(f)][static_cast<std::size_t>(g - 1)];
        }
        const FleetStageCost& c = stage_cost(s, f, g);
        SimDuration start;
        if (c.ps > SimDuration::zero() || c.pl == SimDuration::zero()) {
          start = max_of(ready, out.timeline.free_at(core_of(s)));
        } else {
          start = max_of(ready, out.timeline.free_at(
                                    out.engines[static_cast<std::size_t>(pick_engine(s))]));
        }
        const bool better =
            bs < 0 || start < bstart ||
            (start == bstart &&
             (g > bstage || (g == bstage && (f < bframe || (f == bframe && s < bs)))));
        if (better) {
          bs = s;
          bstage = g;
          bframe = f;
          bready = ready;
          bstart = start;
        }
      }
    }

    int as = -1;
    SimDuration at;
    for (int s = 0; s < ns; ++s) {
      const StreamState& st = state[static_cast<std::size_t>(s)];
      if (st.arrival_ptr >= static_cast<int>(stream_at(s).arrivals.size())) continue;
      const SimDuration a =
          stream_at(s).arrivals[static_cast<std::size_t>(st.arrival_ptr)];
      if (as < 0 || a < at) {
        as = s;
        at = a;
      }
    }

    if (bs < 0 && as < 0) break;

    if (as >= 0 && (bs < 0 || at < bstart)) {
      // Admission: drop on overflow of the admitted-but-unstarted backlog.
      StreamState& st = state[static_cast<std::size_t>(as)];
      const int f = st.arrival_ptr++;
      const FleetStreamInput& in = stream_at(as);
      if (in.queue_depth > 0 && st.queue_len >= in.queue_depth) {
        out.frames[static_cast<std::size_t>(as)][static_cast<std::size_t>(f)]
            .dropped = true;
      } else {
        st.admitted.push_back(f);
        ++st.queue_len;
      }
      continue;
    }

    StreamState& st = state[static_cast<std::size_t>(bs)];
    const FleetStreamInput& in = stream_at(bs);
    FleetFrameOutcome& outcome =
        out.frames[static_cast<std::size_t>(bs)][static_cast<std::size_t>(bframe)];
    if (bstage == 0) {
      --st.queue_len;
      ++st.in_flight;
      // Spill decision at first dispatch: when the shortest engine wait
      // (measured from the frame's arrival) already exceeds the configured
      // fraction of the frame period, the PL is saturated for this frame —
      // run it on the NEON cost model instead of queueing.
      if (spill_wait_frac > 0.0 && !in.spill_cost.empty() &&
          in.period > SimDuration::zero()) {
        const SimDuration engine_free = out.timeline.free_at(
            out.engines[static_cast<std::size_t>(pick_engine(bs))]);
        const SimDuration arrival =
            in.arrivals[static_cast<std::size_t>(bframe)];
        const SimDuration wait = engine_free > arrival
                                     ? engine_free - arrival
                                     : SimDuration::zero();
        if (wait > in.period * spill_wait_frac) {
          st.spilled[static_cast<std::size_t>(bframe)] = 1;
          outcome.spilled = true;
        }
      }
    }
    const FleetStageCost& c = stage_cost(bs, bframe, bstage);
    SimDuration end = bready;
    if (c.ps > SimDuration::zero() || c.pl == SimDuration::zero()) {
      end = out.timeline
                .schedule(core_of(bs), kStageLabels[bstage], bready, c.ps)
                .end;
      out.stream_ps_busy[static_cast<std::size_t>(bs)] += c.ps;
    }
    if (c.pl > SimDuration::zero()) {
      const int e = pick_engine(bs);
      end = out.timeline
                .schedule(out.engines[static_cast<std::size_t>(e)],
                          kStageLabels[bstage], end, c.pl)
                .end;
      out.stream_pl_busy[static_cast<std::size_t>(bs)] += c.pl;
    }
    st.done[static_cast<std::size_t>(bframe)][static_cast<std::size_t>(bstage)] = end;
    ++st.stage_ptr[static_cast<std::size_t>(bstage)];
    if (bstage == 3) {
      --st.in_flight;
      outcome.completion = end;
      outcome.latency = end - in.arrivals[static_cast<std::size_t>(bframe)];
    }
  }
  return out;
}

FleetEnergy integrate_fleet_energy(const Timeline& timeline,
                                   const std::vector<ResourceId>& engines,
                                   power::ComputeMode mode) {
  const power::PowerModel pm;
  FleetEnergy energy;
  power::PowerRecorder loaded(pm, SimDuration::milliseconds(1));
  loaded.run_timeline(timeline, engines, /*idle=*/mode, /*active=*/mode);
  energy.loaded_mj = loaded.exact_energy_mj();
  power::PowerRecorder gated(pm, SimDuration::milliseconds(1));
  gated.run_timeline(timeline, engines, power::ComputeMode::kArmOnly, mode);
  energy.gated_mj = gated.exact_energy_mj();
  return energy;
}

}  // namespace detail

namespace {

SimDuration clamp_nonneg(SimDuration d) {
  return d > SimDuration::zero() ? d : SimDuration::zero();
}

std::array<detail::FleetStageCost, 4> split_stage_costs(const FrameRunResult& r) {
  return {{
      {clamp_nonneg(r.times.prep - r.pl_times.prep), r.pl_times.prep},
      {clamp_nonneg(r.times.forward - r.pl_times.forward), r.pl_times.forward},
      {clamp_nonneg(r.times.fusion - r.pl_times.fusion), r.pl_times.fusion},
      {clamp_nonneg(r.times.inverse - r.pl_times.inverse), r.pl_times.inverse},
  }};
}

// Nearest-rank percentile over an ascending-sorted latency list.
SimDuration percentile(const std::vector<SimDuration>& sorted, double q) {
  if (sorted.empty()) return SimDuration::zero();
  const int n = static_cast<int>(sorted.size());
  int idx = static_cast<int>(std::ceil(q * n)) - 1;
  if (idx < 0) idx = 0;
  if (idx >= n) idx = n - 1;
  return sorted[static_cast<std::size_t>(idx)];
}

power::ComputeMode max_mode(power::ComputeMode a, power::ComputeMode b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

FleetResult run_fleet(const std::vector<StreamConfig>& streams,
                      const FleetConfig& fleet) {
  // The engine count must fit the part: the Table-I model says how many
  // instances of this datapath the xc7z020 holds. Modeling engines the
  // fabric cannot carry would produce plausible-looking nonsense, so refuse
  // loudly (same policy as detail::check_engine_fit).
  const hw::ResourceUsage per_engine =
      fleet.fixed_point_engines
          ? hw::estimate_engine_resources_fixed(fleet.engine_config,
                                                hw::FixedPointFormat{})
          : hw::estimate_engine_resources(fleet.engine_config);
  const int fit = hw::max_engine_instances(hw::DevicePart{}, per_engine);
  if (fleet.engines < 1 || fleet.engines > fit) {
    std::fprintf(stderr,
                 "fatal: %d PL engine(s) requested but the %s datapath fits "
                 "the xc7z020 at most %d time(s) (Table-I model)\n",
                 fleet.engines, fleet.fixed_point_engines ? "fixed-point" : "float32",
                 fit);
    std::abort();
  }

  // Pass 1, per stream: serial numerics through the stream's factory-built
  // backend; per-frame stage costs split into the PS-resident part and the
  // PL remainder (exactly run_pipelined's measurement pass). The NEON spill
  // costs are shape-only, so one probed frame covers the whole stream.
  std::vector<detail::FleetStreamInput> inputs;
  inputs.reserve(streams.size());
  // Cross-frame streaming: per-stream op lists for the batch-granular
  // replay. Batched-FPGA streams record their op stream during pass 1;
  // everything else (CPU backends, serial FPGA, adaptive) replays its
  // stage-granular costs as sliced ops on the same scheduler.
  std::vector<detail::StreamingStreamInput> sinputs;
  if (fleet.cross_frame) sinputs.reserve(streams.size());
  power::ComputeMode mode = power::ComputeMode::kArmOnly;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    const StreamConfig& sc = streams[s];
    detail::FleetStreamInput in;
    in.queue_depth = sc.queue_depth;
    in.home_engine = sc.run.engine_id >= 0 ? sc.run.engine_id
                                           : static_cast<int>(s);
    const int frames = sc.run.frames;
    if (sc.arrival.fps > 0.0) {
      if (sc.arrival.jitter_frac < 0.0 || sc.arrival.jitter_frac >= 1.0) {
        std::fprintf(stderr, "fatal: arrival jitter_frac %.3f outside [0, 1)\n",
                     sc.arrival.jitter_frac);
        std::abort();
      }
      in.period = SimDuration::seconds(1.0 / sc.arrival.fps);
      Rng jitter(0xf1ee7ull * (s + 1) + 0x9e3779b9ull);
      for (int f = 0; f < frames; ++f) {
        in.arrivals.push_back(sc.arrival.offset + in.period * static_cast<double>(f) +
                              in.period * (sc.arrival.jitter_frac * jitter.next_double()));
      }
    } else {
      in.arrivals.assign(static_cast<std::size_t>(frames), sc.arrival.offset);
    }

    const std::unique_ptr<TransformBackend> backend =
        make_backend(sc.backend, sc.run);
    mode = max_mode(mode, backend->compute_mode());
    BatchedFpgaBackend* traced = nullptr;
    if (fleet.cross_frame) {
      traced = dynamic_cast<BatchedFpgaBackend*>(backend.get());
      if (traced) traced->enable_stream_trace();
    }
    TimedFusionRunner runner(*backend, sc.run.fuse);
    const std::vector<FramePair> pairs =
        make_sweep_frames(sc.run.frame_size, frames);
    in.cost.reserve(pairs.size());
    for (const FramePair& pair : pairs) {
      in.cost.push_back(
          split_stage_costs(runner.run_frame_pair(pair.visible, pair.thermal)));
    }

    const bool cpu_stream = sc.backend == BackendKind::kArm ||
                            sc.backend == BackendKind::kNeon;
    if (fleet.spill_wait_frac > 0.0 && !cpu_stream && frames > 0) {
      const std::unique_ptr<TransformBackend> neon =
          make_backend(BackendKind::kNeon, sc.run);
      TimedFusionRunner neon_runner(*neon, sc.run.fuse);
      const auto probe = split_stage_costs(
          neon_runner.run_frame_pair(pairs[0].visible, pairs[0].thermal));
      in.spill_cost.assign(static_cast<std::size_t>(frames), probe);
    }

    if (fleet.cross_frame) {
      detail::StreamingStreamInput sin;
      sin.arrivals = in.arrivals;
      sin.period = in.period;
      sin.queue_depth = in.queue_depth;
      sin.home_engine = in.home_engine;
      sin.engine = sc.run.engine;
      sin.costs = sc.run.driver_costs;
      sin.sg_chain_len = sc.run.batching.sg_chain_len;
      if (traced) {
        sin.frame_ops = traced->take_stream_trace();
      } else {
        sin.frame_ops.reserve(in.cost.size());
        for (const auto& c : in.cost) {
          sin.frame_ops.push_back(detail::stage_cost_ops(c));
        }
      }
      sin.spill_ops.reserve(in.spill_cost.size());
      for (const auto& c : in.spill_cost) {
        sin.spill_ops.push_back(detail::stage_cost_ops(c));
      }
      sinputs.push_back(std::move(sin));
    }
    inputs.push_back(std::move(in));
  }

  detail::FleetSchedule sched =
      fleet.cross_frame
          ? detail::schedule_streaming(sinputs, fleet.cores, fleet.engines,
                                       fleet.pipeline_depth, fleet.steal_engines,
                                       fleet.spill_wait_frac)
          : detail::schedule_fleet(inputs, fleet.cores, fleet.engines,
                                   fleet.pipeline_depth, fleet.steal_engines,
                                   fleet.spill_wait_frac);

  FleetResult result;
  result.makespan = sched.timeline.makespan();
  for (const ResourceId core : sched.cores) {
    result.ps_busy += sched.timeline.busy_time(core);
  }
  for (const ResourceId engine : sched.engines) {
    result.pl_busy += sched.timeline.busy_time(engine);
  }
  for (const ResourceId dma : sched.dmas) {
    result.pl_busy += sched.timeline.busy_time(dma);
  }
  // The DMA channels gate the PL draw too (empty on the legacy path, so
  // its energy integral is unchanged).
  std::vector<ResourceId> pl_side = sched.engines;
  pl_side.insert(pl_side.end(), sched.dmas.begin(), sched.dmas.end());
  const detail::FleetEnergy energy =
      detail::integrate_fleet_energy(sched.timeline, pl_side, mode);
  result.energy_mj = energy.loaded_mj;
  result.energy_gated_mj = energy.gated_mj;

  const SimDuration total_busy = result.ps_busy + result.pl_busy;
  result.streams.reserve(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    StreamStats stats;
    std::vector<SimDuration> latencies;
    for (const detail::FleetFrameOutcome& frame : sched.frames[s]) {
      ++stats.arrived;
      if (frame.dropped) {
        ++stats.dropped;
        continue;
      }
      ++stats.admitted;
      ++stats.completed;
      if (frame.spilled) ++stats.spilled;
      latencies.push_back(frame.latency);
      if (frame.completion > stats.last_completion) {
        stats.last_completion = frame.completion;
      }
      if (frame.latency > stats.max_latency) stats.max_latency = frame.latency;
    }
    std::sort(latencies.begin(), latencies.end());
    stats.p50_latency = percentile(latencies, 0.50);
    stats.p99_latency = percentile(latencies, 0.99);
    stats.ps_busy = sched.stream_ps_busy[s];
    stats.pl_busy = sched.stream_pl_busy[s];
    const SimDuration busy = stats.ps_busy + stats.pl_busy;
    stats.energy_mj = total_busy > SimDuration::zero()
                          ? result.energy_mj * (busy / total_busy)
                          : 0.0;
    result.arrived += stats.arrived;
    result.admitted += stats.admitted;
    result.dropped += stats.dropped;
    result.completed += stats.completed;
    result.streams.push_back(stats);
  }
  return result;
}

}  // namespace vf::sched

#include "src/sched/adaptive.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/fusion/fused_plan.h"
#include "src/hw/clock.h"
#include "src/simd/kernels.h"

namespace vf::sched {

// --- frame sweep ------------------------------------------------------------

std::string FrameSize::label() const {
  return std::to_string(width) + "x" + std::to_string(height);
}

std::vector<FrameSize> paper_frame_sizes() {
  return {{32, 24}, {35, 35}, {40, 40}, {64, 48}, {88, 72}};
}

std::vector<FramePair> make_sweep_frames(const FrameSize& size, int count) {
  std::vector<FramePair> pairs;
  pairs.reserve(count);
  const int rows = size.height;
  const int cols = size.width;
  for (int f = 0; f < count; ++f) {
    Rng rng(0x5eedull * (f + 1) + 13u * rows + 7u * cols);
    FramePair pair;
    pair.visible = image::ImageF(rows, cols);
    pair.thermal = image::ImageF(rows, cols);
    // Scene geometry: a building edge and a window block the visible camera
    // sees, and a warm target the thermal camera sees drifting across.
    const float edge_col = 0.35f * cols;
    const float win_r0 = 0.2f * rows, win_r1 = 0.45f * rows;
    const float win_c0 = 0.55f * cols, win_c1 = 0.8f * cols;
    const float tr = rows * (0.3f + 0.04f * f);
    const float tc = cols * (0.2f + 0.06f * f);
    const float sigma = 0.08f * (rows + cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        // Visible: illumination ramp + texture + structures + sensor noise.
        float vis = 0.35f + 0.25f * static_cast<float>(r) / rows;
        vis += 0.08f * std::sin(0.55f * c) * std::cos(0.35f * r);
        if (c < edge_col) vis += 0.18f;
        if (r > win_r0 && r < win_r1 && c > win_c0 && c < win_c1) vis -= 0.22f;
        vis += rng.next_float(-0.02f, 0.02f);
        // Thermal: cool scene, faint structure bleed-through, hot target.
        float th = 0.12f + 0.05f * static_cast<float>(c) / cols;
        if (c < edge_col) th += 0.04f;
        const float dr = r - tr, dc = c - tc;
        th += 0.75f * std::exp(-(dr * dr + dc * dc) / (2.0f * sigma * sigma));
        th += rng.next_float(-0.015f, 0.015f);
        pair.visible(r, c) = vis < 0.0f ? 0.0f : (vis > 1.0f ? 1.0f : vis);
        pair.thermal(r, c) = th < 0.0f ? 0.0f : (th > 1.0f ? 1.0f : th);
      }
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

// --- cost models ------------------------------------------------------------

CpuCostModel arm_cost_model() { return CpuCostModel{}; }

CpuCostModel neon_cost_model() {
  CpuCostModel model;
  // The paper's NEON port gains -10% on the forward transform and -16% on
  // the inverse (whose interleaved synthesis loop vectorizes better).
  model.analysis_factor = hw::cost::kNeonAnalysisFactor;
  model.synthesis_factor = hw::cost::kNeonSynthesisFactor;
  return model;
}

namespace {
void stage_add(StageTimes* times, Phase p, SimDuration d) {
  switch (p) {
    case Phase::kPrep:
      times->prep += d;
      break;
    case Phase::kForward:
      times->forward += d;
      break;
    case Phase::kFusion:
      times->fusion += d;
      break;
    case Phase::kInverse:
      times->inverse += d;
      break;
  }
}
}  // namespace

void TransformBackend::charge(SimDuration d) { ledger_add(phase_, d); }

void TransformBackend::note_pl(SimDuration d) { ledger_add_pl(phase_, d); }

void TransformBackend::ledger_add(Phase p, SimDuration d) {
  stage_add(&times_, p, d);
}

void TransformBackend::ledger_add_pl(Phase p, SimDuration d) {
  stage_add(&pl_times_, p, d);
}

SimDuration TransformBackend::prep_time(int pixels) const {
  return hw::ps_clock().cycles(arm_cost_model().prep_cycles_per_pixel * pixels);
}

// --- CPU backends -----------------------------------------------------------

namespace detail {

ThreadPool* CpuTimedFilter::pool() const { return owner_->host_pool(); }

void CpuTimedFilter::account_analyze(int out_len, int taps) {
  owner_->charge(
      hw::ps_clock().cycles(model_.analysis_line_cycles(2 * out_len, taps)));
}

void CpuTimedFilter::account_synthesize(int pairs, int taps) {
  owner_->charge(
      hw::ps_clock().cycles(model_.synthesis_line_cycles(2 * pairs, taps)));
}

void CpuTimedFilter::account_magnitude(int n) {
  // The fusion rule always runs on the PS at scalar rates — the paper only
  // accelerates the transforms.
  owner_->charge(hw::ps_clock().cycles(model_.magnitude_cycles_per_sample * n));
}

void CpuTimedFilter::account_select(int n) {
  owner_->charge(hw::ps_clock().cycles(model_.select_cycles_per_sample * n));
}

}  // namespace detail

// --- FPGA backend -----------------------------------------------------------

namespace {

using hw::cost::engine_compute_cycles;

void check_engine_fit(const driver::WaveletAccelerator& accel, int taps,
                      bool synthesis) {
  detail::check_engine_fit(accel.engine(), taps, synthesis);
}

}  // namespace

namespace detail {

// A bank only runs on the engine if its coefficients fit the shift-register
// chain: `slots` for analysis, `slots + 2` for the interleaved synthesis
// window (the polyphase pair skews the chain by two stages). Modeling a line
// the hardware cannot hold would produce plausible-looking nonsense, so
// refuse loudly (e.g. the paper's 12-slot engine cannot run the 14-tap
// q-shift banks — see bench_ablation_taps).
void check_engine_fit(const hw::WaveletEngineConfig& engine, int taps,
                      bool synthesis) {
  const int limit = engine.slots + (synthesis ? 2 : 0);
  if (taps > limit) {
    std::fprintf(stderr,
                 "fatal: %d-tap %s filter does not fit the modeled wavelet "
                 "engine (%d coefficient slots)\n",
                 taps, synthesis ? "synthesis" : "analysis", engine.slots);
    std::abort();
  }
}

}  // namespace detail

class FpgaBackend::Filter : public dwt::LineFilter {
 public:
  Filter(FpgaBackend* owner, driver::WaveletAccelerator* accel)
      : owner_(owner), accel_(accel), cpu_(arm_cost_model()) {}

  ThreadPool* pool() const override { return owner_->host_pool(); }

  // The engine-fit check lives in accounting: it depends only on the request
  // shape, and accounting sees every request exactly once, in order — so the
  // refusal still fires (after the numeric fan-out) for unfittable banks.
  void account_analyze(int out_len, int taps) override {
    check_engine_fit(*accel_, taps, /*synthesis=*/false);
    owner_->charge(accel_->line_time(
        2 * out_len + taps, 2 * out_len,
        engine_compute_cycles(out_len, accel_->engine().slots)));
    owner_->note_pl(accel_->last_line_pl_time());
  }

  void account_synthesize(int pairs, int taps) override {
    check_engine_fit(*accel_, taps, /*synthesis=*/true);
    owner_->charge(accel_->line_time(
        2 * pairs + taps, 2 * pairs,
        engine_compute_cycles(pairs, accel_->engine().slots)));
    owner_->note_pl(accel_->last_line_pl_time());
  }

  void account_magnitude(int n) override {
    owner_->charge(hw::ps_clock().cycles(cpu_.magnitude_cycles_per_sample * n));
  }

  void account_select(int n) override {
    owner_->charge(hw::ps_clock().cycles(cpu_.select_cycles_per_sample * n));
  }

 private:
  FpgaBackend* owner_;
  driver::WaveletAccelerator* accel_;
  CpuCostModel cpu_;
};

FpgaBackend::FpgaBackend(const RunConfig& config)
    : TransformBackend(config.host),
      accel_(config.engine, config.driver_costs),
      filter_(std::make_unique<Filter>(this, &accel_)) {}

FpgaBackend::~FpgaBackend() = default;

dwt::LineFilter& FpgaBackend::line_filter() { return *filter_; }

// --- adaptive backend -------------------------------------------------------

// The router's per-line decision affects only modeled time (the NEON and FPGA
// paths execute bit-identical numerics), so routing — including the router's
// own line counters — lives entirely in accounting, where it runs serially in
// canonical line order at any thread count.
class AdaptiveBackend::Filter : public dwt::LineFilter {
 public:
  Filter(AdaptiveBackend* owner, driver::WaveletAccelerator* accel,
         LineRouter* router)
      : owner_(owner), accel_(accel), router_(router), neon_(neon_cost_model()) {}

  ThreadPool* pool() const override { return owner_->host_pool(); }

  void account_analyze(int out_len, int taps) override {
    if (router_->use_fpga(2 * out_len + taps)) {
      check_engine_fit(*accel_, taps, /*synthesis=*/false);
      owner_->charge(accel_->line_time(
          2 * out_len + taps, 2 * out_len,
          engine_compute_cycles(out_len, accel_->engine().slots)));
      owner_->note_pl(accel_->last_line_pl_time());
    } else {
      owner_->charge(
          hw::ps_clock().cycles(neon_.analysis_line_cycles(2 * out_len, taps)));
    }
  }

  void account_synthesize(int pairs, int taps) override {
    if (router_->use_fpga(2 * pairs + taps)) {
      check_engine_fit(*accel_, taps, /*synthesis=*/true);
      owner_->charge(accel_->line_time(
          2 * pairs + taps, 2 * pairs,
          engine_compute_cycles(pairs, accel_->engine().slots)));
      owner_->note_pl(accel_->last_line_pl_time());
    } else {
      owner_->charge(
          hw::ps_clock().cycles(neon_.synthesis_line_cycles(2 * pairs, taps)));
    }
  }

  void account_magnitude(int n) override {
    owner_->charge(hw::ps_clock().cycles(neon_.magnitude_cycles_per_sample * n));
  }

  void account_select(int n) override {
    owner_->charge(hw::ps_clock().cycles(neon_.select_cycles_per_sample * n));
  }

 private:
  AdaptiveBackend* owner_;
  driver::WaveletAccelerator* accel_;
  LineRouter* router_;
  CpuCostModel neon_;
};

AdaptiveBackend::AdaptiveBackend(const RunConfig& config)
    : TransformBackend(config.host),
      accel_(config.engine, config.driver_costs),
      router_(config.adaptive_threshold_samples),
      filter_(std::make_unique<Filter>(this, &accel_, &router_)) {}

AdaptiveBackend::~AdaptiveBackend() = default;

dwt::LineFilter& AdaptiveBackend::line_filter() { return *filter_; }

// --- probing ----------------------------------------------------------------

FrameRunResult TimedFusionRunner::run_frame_pair(const image::ImageF& visible,
                                                 const image::ImageF& thermal) {
  backend_.begin_frame();
  backend_.set_phase(Phase::kPrep);
  backend_.charge(backend_.prep_time(
      static_cast<int>(visible.size() + thermal.size())));

  FrameRunResult result;
  if (dwt::host_layout() == dwt::HostLayout::kFused &&
      dwt::FusionPlan::applicable(config_.transform, backend_.line_filter())) {
    // Band-streaming plan: numerics run during kPrep (they make no backend
    // calls), then the accounting replay fires the same phase transitions at
    // the same points in the modeled call sequence as the staged path below.
    const dwt::FusionPlan plan(visible.rows(), visible.cols(), config_.transform);
    dwt::FusionPlan::StageHooks hooks;
    hooks.before_forward = [this] { backend_.set_phase(Phase::kForward); };
    hooks.before_fusion = [this] { backend_.set_phase(Phase::kFusion); };
    hooks.before_inverse = [this] { backend_.set_phase(Phase::kInverse); };
    result.fused = plan.run(visible, thermal, backend_.line_filter(), hooks);
  } else {
    backend_.set_phase(Phase::kForward);
    const dwt::DtcwtPyramid pa =
        dwt::forward_dtcwt(visible, config_.transform, backend_.line_filter());
    const dwt::DtcwtPyramid pb =
        dwt::forward_dtcwt(thermal, config_.transform, backend_.line_filter());

    backend_.set_phase(Phase::kFusion);
    dwt::DtcwtPyramid fused;
    fusion::fuse_pyramids(pa, pb, &fused, backend_.line_filter());

    backend_.set_phase(Phase::kInverse);
    result.fused =
        dwt::inverse_dtcwt(fused, config_.transform, backend_.line_filter());
  }
  backend_.finish_frame();
  result.times = backend_.frame_times();
  result.pl_times = backend_.frame_pl_times();
  return result;
}

ProbeResult probe_backend(TransformBackend& backend, const FrameSize& size,
                          int frames, const fusion::FuseConfig& config) {
  TimedFusionRunner runner(backend, config);
  const std::vector<FramePair> pairs = make_sweep_frames(size, frames);
  ProbeResult probe;
  probe.frames = frames;
  for (const FramePair& pair : pairs) {
    const FrameRunResult r = runner.run_frame_pair(pair.visible, pair.thermal);
    probe.prep += r.times.prep;
    probe.forward += r.times.forward;
    probe.fusion += r.times.fusion;
    probe.inverse += r.times.inverse;
  }
  probe.total = probe.prep + probe.forward + probe.fusion + probe.inverse;
  const power::PowerModel pm;
  probe.energy_mj = pm.energy_mj(backend.compute_mode(), probe.total);
  return probe;
}

}  // namespace vf::sched
